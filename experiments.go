package bloomlang

import (
	"fmt"
	"math/rand"

	"bloomlang/internal/bloom"
	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/ctrank"
	"bloomlang/internal/fpga"
	"bloomlang/internal/hail"
	"bloomlang/internal/ht"
	"bloomlang/internal/report"
	"bloomlang/internal/xd1000"
)

// This file implements the experiment harness: one Run function per
// table and figure in the paper's evaluation (§5), each returning
// structured results plus a Format function rendering them alongside
// the paper's published numbers. cmd/experiments and the root
// benchmarks are thin wrappers over these.

// Scale controls the synthetic corpus size an experiment runs on. The
// paper's corpus is 52,581 test documents (484 MB); the default scale
// keeps experiments in seconds while preserving every qualitative
// result. Hardware throughput numbers come from the cycle model and are
// scale-independent.
type Scale struct {
	// DocsPerLanguage is the generated document count per language.
	DocsPerLanguage int
	// WordsPerDoc is the mean document length (the paper's corpus
	// averages 1,300 words ≈ 10 KB files).
	WordsPerDoc int
	// TrainFraction is the training split (the paper used 10%).
	TrainFraction float64
	// Seed fixes the corpus and hash matrices.
	Seed int64
	// Workers bounds parallelism in software runs; 0 = GOMAXPROCS.
	Workers int
}

// DefaultScale returns a scale that runs every experiment in seconds.
func DefaultScale() Scale {
	return Scale{DocsPerLanguage: 150, WordsPerDoc: 400, TrainFraction: 0.10, Seed: 1}
}

// PaperScale returns the full §5 corpus shape (slow: ~450 MB of text).
func PaperScale() Scale {
	return Scale{DocsPerLanguage: 5700, WordsPerDoc: 1300, TrainFraction: 0.10, Seed: 1}
}

func (s Scale) corpusConfig() corpus.Config {
	return corpus.Config{
		DocsPerLanguage: s.DocsPerLanguage,
		WordsPerDoc:     s.WordsPerDoc,
		TrainFraction:   s.TrainFraction,
		Seed:            s.Seed,
		Workers:         s.Workers,
	}
}

// ---------------------------------------------------------------------------
// Table 1: classification accuracy vs Bloom filter parameters.

// Table1Configs lists the (m, k) points of Table 1 in paper order.
var Table1Configs = []struct {
	MKbits int
	K      int
}{
	{16, 4}, {16, 3}, {16, 2},
	{8, 4}, {8, 3}, {8, 2},
	{4, 6}, {4, 5},
}

// table1Paper holds the published FP/1000 and average accuracy.
var table1Paper = map[[2]int]struct {
	fpPerMille int
	accuracy   float64
}{
	{16, 4}: {5, 0.9945},
	{16, 3}: {18, 0.9742},
	{16, 2}: {69, 0.9731},
	{8, 4}:  {44, 0.9942},
	{8, 3}:  {95, 0.9722},
	{8, 2}:  {209, 0.9557},
	{4, 6}:  {123, 0.9941},
	{4, 5}:  {174, 0.9644},
}

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	MKbits int
	K      int
	// ModelFPPerMille is the §3.1 closed-form expectation at the actual
	// profile load.
	ModelFPPerMille int
	// MeasuredFPPerMille is the empirical false positive rate of the
	// programmed filters on random non-member n-grams.
	MeasuredFPPerMille float64
	// Accuracy is the measured average classification accuracy.
	Accuracy float64
	// MinAccuracy/MaxAccuracy are per-language extremes (§5.1 reports
	// 99.05%–99.76% for the conservative configuration).
	MinAccuracy, MaxAccuracy float64
	// PaperFPPerMille and PaperAccuracy are the published values.
	PaperFPPerMille int
	PaperAccuracy   float64
}

// RunTable1 trains once and sweeps the eight (m,k) points of Table 1,
// measuring accuracy on the synthetic corpus and the empirical false
// positive rate of the programmed filters.
func RunTable1(scale Scale) ([]Table1Row, error) {
	corp, err := corpus.Generate(scale.corpusConfig())
	if err != nil {
		return nil, err
	}
	base := core.DefaultConfig()
	base.Seed = scale.Seed
	ps, err := core.Train(base, corp)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, c := range Table1Configs {
		cfg := base
		cfg.K = c.K
		cfg.MBits = uint32(c.MKbits) * 1024
		psC := &core.ProfileSet{Config: cfg, Profiles: ps.Profiles}
		clf, err := core.New(psC, core.BackendBloom)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(clf, scale.Workers)
		ev := eng.Evaluate(corp)
		row := Table1Row{
			MKbits:             c.MKbits,
			K:                  c.K,
			MeasuredFPPerMille: measureFalsePositives(clf, psC),
			Accuracy:           ev.Average,
			MinAccuracy:        ev.Min,
			MaxAccuracy:        ev.Max,
			PaperFPPerMille:    table1Paper[[2]int{c.MKbits, c.K}].fpPerMille,
			PaperAccuracy:      table1Paper[[2]int{c.MKbits, c.K}].accuracy,
		}
		// The closed form uses the real profile load (TopT at full
		// scale; smaller when the training split is tiny).
		load := 0
		for _, p := range ps.Profiles {
			load += p.Size()
		}
		load /= len(ps.Profiles)
		row.ModelFPPerMille = bloom.PerThousand(bloom.FalsePositiveRate(load, cfg.MBits, cfg.K))
		rows = append(rows, row)
	}
	return rows, nil
}

// measureFalsePositives probes each language's filter with random
// non-member n-grams and returns the hit rate per thousand.
func measureFalsePositives(clf *core.Classifier, ps *core.ProfileSet) float64 {
	const probesPerLanguage = 20000
	rng := rand.New(rand.NewSource(ps.Config.Seed + 99))
	totalProbes, hits := 0, 0
	for i, p := range ps.Profiles {
		members := p.Set()
		f := clf.Filter(i)
		for n := 0; n < probesPerLanguage; {
			g := rng.Uint32() & 0xFFFFF
			if members[g] {
				continue
			}
			n++
			totalProbes++
			if f.Test(g) {
				hits++
			}
		}
	}
	return float64(hits) / float64(totalProbes) * 1000
}

// FormatTable1 renders the rows against the paper's columns.
func FormatTable1(rows []Table1Row) string {
	t := report.NewTable(
		"Table 1: Variation of classification accuracy with Bloom Filter parameters",
		"m (Kbits)", "k", "FP/1000 (paper)", "FP/1000 (model)", "FP/1000 (measured)",
		"Accuracy (paper)", "Accuracy (measured)", "Min..Max",
	)
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.MKbits), fmt.Sprint(r.K),
			fmt.Sprint(r.PaperFPPerMille), fmt.Sprint(r.ModelFPPerMille),
			fmt.Sprintf("%.1f", r.MeasuredFPPerMille),
			report.Percent(r.PaperAccuracy), report.Percent(r.Accuracy),
			fmt.Sprintf("%s..%s", report.Percent(r.MinAccuracy), report.Percent(r.MaxAccuracy)),
		)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table 2: module resource utilization.

// Table2Row pairs the model's estimate with the published synthesis.
type Table2Row struct {
	MKbits int
	K      int
	Report fpga.ModuleReport
}

// RunTable2 evaluates the resource model at every Table 2 point.
func RunTable2() ([]Table2Row, error) {
	dev := fpga.EP2S180()
	var rows []Table2Row
	for _, c := range Table1Configs {
		rep, err := fpga.EstimateModule(fpga.Table2Config(c.K, uint32(c.MKbits)*1024), dev)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{MKbits: c.MKbits, K: c.K, Report: rep})
	}
	return rows, nil
}

// FormatTable2 renders the module resource table.
func FormatTable2(rows []Table2Row) string {
	t := report.NewTable(
		"Table 2: Resource utilization of the n-gram classifier module (2 languages, 8 n-grams/clock)",
		"m (Kbits)", "k", "Logic", "Registers", "M4Ks", "Frequency", "Source",
	)
	for _, r := range rows {
		src := "model"
		if r.Report.Calibrated {
			src = "paper (calibrated)"
		}
		t.AddRow(
			fmt.Sprint(r.MKbits), fmt.Sprint(r.K),
			fmt.Sprint(r.Report.Logic), fmt.Sprint(r.Report.Registers),
			fmt.Sprint(r.Report.M4Ks), fpga.FormatMHz(r.Report.FreqMHz), src,
		)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table 3: device utilization of the final builds.

// Table3Row is one device build.
type Table3Row struct {
	MKbits    int
	K         int
	Languages int
	Report    fpga.SystemReport
}

// RunTable3 evaluates the device model for the paper's two builds.
func RunTable3() ([]Table3Row, error) {
	dev := fpga.EP2S180()
	builds := []struct{ mKbits, k, langs int }{
		{16, 4, 10},
		{4, 6, 30},
	}
	var rows []Table3Row
	for _, b := range builds {
		rep, err := fpga.EstimateSystem(fpga.ModuleConfig{
			K: b.k, MBits: uint32(b.mKbits) * 1024, Languages: b.langs, Copies: 4,
		}, dev)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{MKbits: b.mKbits, K: b.k, Languages: b.langs, Report: rep})
	}
	return rows, nil
}

// FormatTable3 renders the device utilization table.
func FormatTable3(rows []Table3Row) string {
	t := report.NewTable(
		"Table 3: Resource utilization of the n-gram classifier hardware (final implementation)",
		"k, m", "Languages", "Logic", "Registers", "M512s", "M4Ks", "M-RAMs", "Frequency", "Fits",
	)
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d, %d Kbits", r.K, r.MKbits),
			fmt.Sprint(r.Languages),
			fmt.Sprint(r.Report.Logic), fmt.Sprint(r.Report.Registers),
			fmt.Sprint(r.Report.M512s), fmt.Sprint(r.Report.M4Ks), fmt.Sprint(r.Report.MRAMs),
			fpga.FormatMHz(r.Report.FreqMHz),
			fmt.Sprint(r.Report.Fits),
		)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 4: system throughput, synchronous vs asynchronous.

// Figure4Point is one bar pair of Figure 4.
type Figure4Point struct {
	// Label is the language code, or "All" for the combined corpus.
	Label string
	// SyncMBps and AsyncMBps are decimal MB/sec, the paper's unit.
	SyncMBps  float64
	AsyncMBps float64
}

// Figure4Result is the full figure plus the §5.4 side numbers.
type Figure4Result struct {
	Points []Figure4Point
	// AsyncWithProgrammingMBps is the "All" async throughput including
	// Bloom filter programming time at the streamed volume. Programming
	// is a fixed cost, so this number depends on how much data is
	// streamed; see PaperVolumeWithProgrammingMBps for the §5.4
	// comparison point.
	AsyncWithProgrammingMBps float64
	// PaperVolumeWithProgrammingMBps projects the amortization at the
	// paper's 484 MB corpus with full 5,000-n-gram profiles — the
	// number to compare against the published 378 MB/s.
	PaperVolumeWithProgrammingMBps float64
	// ProgramSeconds is the simulated preprocessing cost at this scale.
	ProgramSeconds float64
	// Accuracy is the classification accuracy over the combined run.
	Accuracy float64
}

// Figure4Scale returns the scale used for throughput runs: paper-sized
// documents (≈10 KB) so per-document overheads weigh as they did in §5.4.
func Figure4Scale() Scale {
	return Scale{DocsPerLanguage: 60, WordsPerDoc: 1300, TrainFraction: 0.10, Seed: 1}
}

// RunFigure4 streams each language's test documents — and the combined
// interleaved set — through the simulated system in both driver modes.
func RunFigure4(scale Scale) (Figure4Result, error) {
	var out Figure4Result
	corp, err := corpus.Generate(scale.corpusConfig())
	if err != nil {
		return out, err
	}
	base := core.DefaultConfig()
	base.Seed = scale.Seed
	ps, err := core.Train(base, corp)
	if err != nil {
		return out, err
	}
	labels := append([]string{""}, corp.Languages...)
	for _, lang := range labels {
		docs := corp.TestDocuments(lang)
		sync, err := streamFresh(ps, docs, xd1000.ModeSync)
		if err != nil {
			return out, err
		}
		async, err := streamFresh(ps, docs, xd1000.ModeAsync)
		if err != nil {
			return out, err
		}
		label := lang
		if label == "" {
			label = "All"
		}
		out.Points = append(out.Points, Figure4Point{
			Label:     label,
			SyncMBps:  decimalMBps(sync.Bytes, sync.SimTime.Seconds()),
			AsyncMBps: decimalMBps(async.Bytes, async.SimTime.Seconds()),
		})
		if lang == "" {
			out.AsyncWithProgrammingMBps = decimalMBps(async.Bytes, (async.SimTime + async.ProgramTime).Seconds())
			out.ProgramSeconds = async.ProgramTime.Seconds()
			out.Accuracy = async.Accuracy()
			// Paper-volume projection: 484 MB streamed at the measured
			// async rate plus programming ten full 5,000-n-gram profiles
			// (3 PIO writes per n-gram).
			asyncRate := float64(async.Bytes) / async.SimTime.Seconds()
			const paperBytes = 484e6
			fullProgram := float64(10*5000*3) * ht.XD1000Config().PIOWriteLatency.Seconds()
			out.PaperVolumeWithProgrammingMBps = decimalMBps(int64(paperBytes), paperBytes/asyncRate+fullProgram)
		}
	}
	return out, nil
}

func streamFresh(ps *core.ProfileSet, docs []corpus.Document, mode xd1000.Mode) (xd1000.RunReport, error) {
	sys, err := xd1000.New(ps, xd1000.Options{})
	if err != nil {
		return xd1000.RunReport{}, err
	}
	sys.Program()
	return sys.Stream(docs, mode, false)
}

func decimalMBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e6
}

// FormatFigure4 renders the throughput chart.
func FormatFigure4(r Figure4Result) string {
	c := report.NewBarChart("Figure 4: Throughput of the n-gram classifier hardware (paper: async 470, sync 228 MB/sec)", "MB/sec", 50)
	for _, p := range r.Points {
		c.Add(p.Label+" sync", p.SyncMBps)
		c.Add(p.Label+" async", p.AsyncMBps)
	}
	s := c.String()
	s += fmt.Sprintf("Async including Bloom programming at streamed volume (%.2fs program): %.0f MB/sec\n",
		r.ProgramSeconds, r.AsyncWithProgrammingMBps)
	s += fmt.Sprintf("Async including programming at paper volume (484 MB, full profiles): %.0f MB/sec (paper: 378)\n",
		r.PaperVolumeWithProgrammingMBps)
	s += fmt.Sprintf("Hardware-path classification accuracy: %s\n", report.Percent(r.Accuracy))
	return s
}

// ---------------------------------------------------------------------------
// Table 4: comparison of n-gram based language classifiers.

// Table4Result compares the three systems of Table 4 plus the §5.5
// projections.
type Table4Result struct {
	// MguesserMBps is the measured wall-clock throughput of the
	// Cavnar-Trenkle software baseline on this host (decimal MB/s).
	MguesserMBps float64
	// HAILMBps is the modelled HAIL throughput.
	HAILMBps float64
	// BloomMBps is the simulated XD1000 asynchronous throughput.
	BloomMBps float64
	// PeakMBps is the datapath's theoretical rate (§5.4's 1.4 GB/s).
	PeakMBps float64
	// SpeedupVsSoftware is BloomMBps / MguesserMBps (paper: 85x).
	SpeedupVsSoftware float64
	// SpeedupVsHAIL is BloomMBps / HAILMBps (paper: 1.45x).
	SpeedupVsHAIL float64
	// PeakSpeedupVsSoftware and PeakSpeedupVsHAIL are the §5.5
	// projections at the theoretical peak (paper: 260x and 4.4x).
	PeakSpeedupVsSoftware, PeakSpeedupVsHAIL float64
	// Accuracies, for context.
	MguesserAccuracy, HAILAccuracy, BloomAccuracy float64
}

// RunTable4 measures the software baseline for real and runs both
// hardware models over the same corpus.
func RunTable4(scale Scale) (Table4Result, error) {
	var out Table4Result
	corp, err := corpus.Generate(scale.corpusConfig())
	if err != nil {
		return out, err
	}
	docs := corp.TestDocuments("")

	// Mguesser-style software baseline: measured, single-threaded, docs
	// cached in memory (§5.5's methodology).
	ct, err := ctrank.TrainCorpus(ctrank.DefaultConfig(), corp)
	if err != nil {
		return out, err
	}
	ctRep := ct.Measure(docs)
	out.MguesserMBps = decimalMBps(ctRep.Bytes, ctRep.Elapsed.Seconds())
	out.MguesserAccuracy = ctRep.Accuracy()

	// Bloom filter profiles shared by HAIL and the XD1000 sim.
	base := core.DefaultConfig()
	base.Seed = scale.Seed
	ps, err := core.Train(base, corp)
	if err != nil {
		return out, err
	}

	hc, err := hail.Build(hail.DefaultConfig(), ps.Profiles)
	if err != nil {
		return out, err
	}
	hRep := hc.Stream(docs)
	out.HAILMBps = decimalMBps(hRep.Bytes, hRep.SimTime.Seconds())
	out.HAILAccuracy = hRep.Accuracy()

	bRep, err := streamFresh(ps, docs, xd1000.ModeAsync)
	if err != nil {
		return out, err
	}
	out.BloomMBps = decimalMBps(bRep.Bytes, bRep.SimTime.Seconds())
	out.BloomAccuracy = bRep.Accuracy()

	sys, err := xd1000.New(ps, xd1000.Options{})
	if err != nil {
		return out, err
	}
	out.PeakMBps = sys.PeakMBPerSec() * (1 << 20) / 1e6

	if out.MguesserMBps > 0 {
		out.SpeedupVsSoftware = out.BloomMBps / out.MguesserMBps
		out.PeakSpeedupVsSoftware = out.PeakMBps / out.MguesserMBps
	}
	if out.HAILMBps > 0 {
		out.SpeedupVsHAIL = out.BloomMBps / out.HAILMBps
		out.PeakSpeedupVsHAIL = out.PeakMBps / out.HAILMBps
	}
	return out, nil
}

// FormatTable4 renders the system comparison.
func FormatTable4(r Table4Result) string {
	t := report.NewTable(
		"Table 4: Comparison of n-gram based language classifiers",
		"System", "Type", "Throughput (MB/sec)", "Paper", "Accuracy",
	)
	t.AddRow("Mguesser (Cavnar-Trenkle)", "AMD Opteron workstation (measured)",
		fmt.Sprintf("%.1f", r.MguesserMBps), "5.5", report.Percent(r.MguesserAccuracy))
	t.AddRow("HAIL", "Xilinx XCV2000E-8 FPGA (model)",
		fmt.Sprintf("%.0f", r.HAILMBps), "324", report.Percent(r.HAILAccuracy))
	t.AddRow("BloomFilter", "Altera EP2S180 FPGA (simulated)",
		fmt.Sprintf("%.0f", r.BloomMBps), "470", report.Percent(r.BloomAccuracy))
	s := t.String()
	s += fmt.Sprintf("Speedup vs software: %.0fx (paper: 85x)   vs HAIL: %.2fx (paper: 1.45x)\n",
		r.SpeedupVsSoftware, r.SpeedupVsHAIL)
	s += fmt.Sprintf("Theoretical peak %.0f MB/sec: %.0fx software (paper: 260x), %.1fx HAIL (paper: 4.4x)\n",
		r.PeakMBps, r.PeakSpeedupVsSoftware, r.PeakSpeedupVsHAIL)
	return s
}

// ---------------------------------------------------------------------------
// §5.2 ablation: input subsampling.

// SubsampleRow is one row of the subsampling ablation: §5.2 notes that
// testing only every other n-gram "doubles the number of supported
// languages while maintaining satisfactory accuracy".
type SubsampleRow struct {
	// Subsample is the 1-in-s sampling factor.
	Subsample int
	// Accuracy is the measured average accuracy.
	Accuracy float64
	// MaxLanguages is the EP2S180 language capacity at this input rate
	// (sampling 1-in-2 halves the classifier copies needed).
	MaxLanguages int
}

// RunSubsampleAblation measures accuracy at full rate and at 1-in-2 and
// 1-in-4 subsampling with the conservative filter configuration.
func RunSubsampleAblation(scale Scale) ([]SubsampleRow, error) {
	corp, err := corpus.Generate(scale.corpusConfig())
	if err != nil {
		return nil, err
	}
	base := core.DefaultConfig()
	base.Seed = scale.Seed
	ps, err := core.Train(base, corp)
	if err != nil {
		return nil, err
	}
	dev := fpga.EP2S180()
	var rows []SubsampleRow
	for _, sub := range []int{1, 2, 4} {
		cfg := base
		cfg.Subsample = sub
		psC := &core.ProfileSet{Config: cfg, Profiles: ps.Profiles}
		clf, err := core.New(psC, core.BackendBloom)
		if err != nil {
			return nil, err
		}
		ev := core.NewEngine(clf, scale.Workers).Evaluate(corp)
		copies := 4 / sub
		if copies < 1 {
			copies = 1
		}
		rows = append(rows, SubsampleRow{
			Subsample:    sub,
			Accuracy:     ev.Average,
			MaxLanguages: fpga.MaxLanguages(cfg.K, cfg.MBits, copies, dev),
		})
	}
	return rows, nil
}

// FormatSubsampleAblation renders the ablation.
func FormatSubsampleAblation(rows []SubsampleRow) string {
	t := report.NewTable(
		"Subsampling ablation (k=4, m=16 Kbits): languages supported vs accuracy (§5.2)",
		"Subsample", "Accuracy", "Max languages",
	)
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("1 in %d", r.Subsample), report.Percent(r.Accuracy), fmt.Sprint(r.MaxLanguages))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// §5.1/§5.2 narrative: confusion structure.

// ConfusionResult captures the §5.2 observation that related languages
// confuse: "consistently more Spanish documents were misclassified as
// Portuguese, and Estonian documents as Finnish".
type ConfusionResult struct {
	Evaluation core.Evaluation
	// TopPairs lists (truth, predicted, count) misclassifications in
	// descending count order.
	TopPairs []ConfusionPair
}

// ConfusionPair is one off-diagonal confusion cell.
type ConfusionPair struct {
	Truth, Predicted string
	Count            int
}

// RunConfusion evaluates the conservative configuration and extracts
// the confusion structure.
func RunConfusion(scale Scale) (ConfusionResult, error) {
	var out ConfusionResult
	corp, err := corpus.Generate(scale.corpusConfig())
	if err != nil {
		return out, err
	}
	base := core.DefaultConfig()
	base.Seed = scale.Seed
	ps, err := core.Train(base, corp)
	if err != nil {
		return out, err
	}
	clf, err := core.New(ps, core.BackendBloom)
	if err != nil {
		return out, err
	}
	eng := core.NewEngine(clf, scale.Workers)
	out.Evaluation = eng.Evaluate(corp)
	for truth, row := range out.Evaluation.Confusion {
		for pred, n := range row {
			if pred != truth && pred != "" && n > 0 {
				out.TopPairs = append(out.TopPairs, ConfusionPair{Truth: truth, Predicted: pred, Count: n})
			}
		}
	}
	// Descending count, deterministic tie-break.
	for i := range out.TopPairs {
		for j := i + 1; j < len(out.TopPairs); j++ {
			a, b := out.TopPairs[i], out.TopPairs[j]
			if b.Count > a.Count || (b.Count == a.Count && b.Truth+b.Predicted < a.Truth+a.Predicted) {
				out.TopPairs[i], out.TopPairs[j] = b, a
			}
		}
	}
	return out, nil
}

// FormatConfusion renders the confusion summary.
func FormatConfusion(r ConfusionResult) string {
	t := report.NewTable(
		"Confusion structure (conservative configuration, k=4, m=16 Kbits)",
		"Truth", "Predicted", "Count",
	)
	limit := len(r.TopPairs)
	if limit > 8 {
		limit = 8
	}
	for _, p := range r.TopPairs[:limit] {
		t.AddRow(corpus.Name(p.Truth), corpus.Name(p.Predicted), fmt.Sprint(p.Count))
	}
	s := t.String()
	s += fmt.Sprintf("Average accuracy %s (min %s, max %s) over %d documents\n",
		report.Percent(r.Evaluation.Average), report.Percent(r.Evaluation.Min),
		report.Percent(r.Evaluation.Max), r.Evaluation.Docs)
	return s
}
