package bloomlang

import (
	"sync"
	"testing"
)

// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus micro-benchmarks of the pipeline stages. Accuracy and
// modelled-throughput results are attached as custom metrics so
// `go test -bench` output carries the reproduction numbers:
//
//	go test -bench 'Table|Figure' -benchmem
//
// The per-op timings measure how fast this implementation regenerates
// each experiment; the custom metrics (accuracy_pct, sim_MB_per_s, ...)
// are the reproduced results themselves.

var (
	benchOnce     sync.Once
	benchCorpus   *Corpus
	benchProfiles *ProfileSet
	benchBigDocs  []Document // paper-sized documents for throughput runs
)

func benchFixtures(b *testing.B) (*Corpus, *ProfileSet) {
	b.Helper()
	benchOnce.Do(func() {
		corp, err := GenerateCorpus(CorpusConfig{
			DocsPerLanguage: 60,
			WordsPerDoc:     300,
			TrainFraction:   0.2,
			Seed:            17,
		})
		if err != nil {
			b.Fatal(err)
		}
		ps, err := Train(DefaultConfig(), corp)
		if err != nil {
			b.Fatal(err)
		}
		big, err := GenerateCorpus(CorpusConfig{
			DocsPerLanguage: 20,
			WordsPerDoc:     1300,
			TrainFraction:   0.2,
			Seed:            17,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchCorpus, benchProfiles = corp, ps
		benchBigDocs = big.TestDocuments("")
	})
	return benchCorpus, benchProfiles
}

// BenchmarkTable1AccuracyVsParams regenerates Table 1: classification
// accuracy at each (m, k) Bloom filter configuration. Each sub-benchmark
// measures software classification throughput at that configuration and
// reports the measured accuracy and false positive rate.
func BenchmarkTable1AccuracyVsParams(b *testing.B) {
	corp, ps := benchFixtures(b)
	for _, cfgPoint := range Table1Configs {
		name := benchName(cfgPoint.MKbits, cfgPoint.K)
		b.Run(name, func(b *testing.B) {
			cfg := ps.Config
			cfg.K = cfgPoint.K
			cfg.MBits = uint32(cfgPoint.MKbits) * 1024
			psC := &ProfileSet{Config: cfg, Profiles: ps.Profiles}
			clf, err := NewClassifier(psC, BackendBloom)
			if err != nil {
				b.Fatal(err)
			}
			eng := NewEngine(clf, 0)
			docs := corp.TestDocuments("")
			var bytes int64
			for _, d := range docs {
				bytes += int64(len(d.Text))
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			var ev Evaluation
			for i := 0; i < b.N; i++ {
				eng.ClassifyAll(docs)
			}
			b.StopTimer()
			ev = eng.Evaluate(corp)
			b.ReportMetric(100*ev.Average, "accuracy_pct")
			b.ReportMetric(1000*cfg.ExpectedFalsePositiveRate(), "expected_fp_per_1000")
		})
	}
}

func benchName(mKbits, k int) string {
	return "m" + itoa(mKbits) + "K_k" + itoa(k)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkTable2ResourceModel regenerates Table 2: the module resource
// model at all eight published points.
func BenchmarkTable2ResourceModel(b *testing.B) {
	var rows []Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = RunTable2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Report.Logic), "m16k4_logic_ALUTs")
	b.ReportMetric(float64(rows[0].Report.M4Ks), "m16k4_M4Ks")
	b.ReportMetric(rows[0].Report.FreqMHz, "m16k4_MHz")
}

// BenchmarkTable3DeviceModel regenerates Table 3: the two full-device
// builds.
func BenchmarkTable3DeviceModel(b *testing.B) {
	var rows []Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = RunTable3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Report.M4Ks), "langs10_M4Ks")
	b.ReportMetric(float64(rows[1].Report.M4Ks), "langs30_M4Ks")
	b.ReportMetric(rows[1].Report.FreqMHz, "langs30_MHz")
}

// BenchmarkFigure4Throughput regenerates Figure 4: streaming the
// combined corpus through the simulated XD1000 with each host driver.
// The reported sim_MB_per_s metric is the modelled system throughput
// (paper: 470 async, 228 sync); ns/op measures simulator speed.
func BenchmarkFigure4Throughput(b *testing.B) {
	_, ps := benchFixtures(b)
	for _, mode := range []DriverMode{ModeSync, ModeAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			var mbps float64
			var bytes int64
			for _, d := range benchBigDocs {
				bytes += int64(len(d.Text))
			}
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(ps, SystemOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sys.Program()
				rep, err := sys.Stream(benchBigDocs, mode, false)
				if err != nil {
					b.Fatal(err)
				}
				mbps = float64(rep.Bytes) / rep.SimTime.Seconds() / 1e6
			}
			b.ReportMetric(mbps, "sim_MB_per_s")
		})
	}
}

// BenchmarkTable4SystemComparison regenerates Table 4: the software
// baseline measured for real, and both hardware models. The metric
// MB_per_s carries each system's (measured or modelled) throughput.
func BenchmarkTable4SystemComparison(b *testing.B) {
	corp, ps := benchFixtures(b)

	b.Run("mguesser_software", func(b *testing.B) {
		ct, err := NewCavnarTrenkle(CavnarTrenkleConfig{}, corp)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int64
		for _, d := range benchBigDocs {
			bytes += int64(len(d.Text))
		}
		b.SetBytes(bytes)
		b.ResetTimer()
		var rep = ct.Measure(benchBigDocs)
		for i := 1; i < b.N; i++ {
			rep = ct.Measure(benchBigDocs)
		}
		b.ReportMetric(float64(rep.Bytes)/rep.Elapsed.Seconds()/1e6, "MB_per_s")
	})

	b.Run("hail_fpga_model", func(b *testing.B) {
		h, err := NewHAIL(DefaultHAILConfig(), ps)
		if err != nil {
			b.Fatal(err)
		}
		var mbps float64
		for i := 0; i < b.N; i++ {
			rep := h.Stream(benchBigDocs)
			mbps = float64(rep.Bytes) / rep.SimTime.Seconds() / 1e6
		}
		b.ReportMetric(mbps, "MB_per_s")
	})

	b.Run("bloom_fpga_sim", func(b *testing.B) {
		var mbps float64
		for i := 0; i < b.N; i++ {
			sys, err := NewSystem(ps, SystemOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sys.Program()
			rep, err := sys.Stream(benchBigDocs, ModeAsync, false)
			if err != nil {
				b.Fatal(err)
			}
			mbps = float64(rep.Bytes) / rep.SimTime.Seconds() / 1e6
		}
		b.ReportMetric(mbps, "MB_per_s")
	})
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §5).

// BenchmarkAblationBackends compares the four membership backends on
// identical work: the paper's parallel Bloom filter, exact direct
// lookup, a classic single-vector Bloom filter of the same total bit
// budget, and the fused cache-line-blocked filter sized for the same
// modelled false-positive rate.
func BenchmarkAblationBackends(b *testing.B) {
	corp, ps := benchFixtures(b)
	docs := corp.TestDocuments("")[:100]
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Text))
	}
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked} {
		b.Run(backend.String(), func(b *testing.B) {
			clf, err := NewClassifier(ps, backend)
			if err != nil {
				b.Fatal(err)
			}
			eng := NewEngine(clf, 0)
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ClassifyAll(docs)
			}
		})
	}
}

// BenchmarkAblationWorkers measures software engine scaling with worker
// count — the document-level parallelism knob.
func BenchmarkAblationWorkers(b *testing.B) {
	corp, ps := benchFixtures(b)
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		b.Fatal(err)
	}
	docs := corp.TestDocuments("")
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Text))
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run("workers_"+itoa(workers), func(b *testing.B) {
			eng := NewEngine(clf, workers)
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ClassifyAll(docs)
			}
		})
	}
}

// BenchmarkAblationSubsample compares full-rate extraction with the
// 1-in-2 subsampling HAIL uses (§3.3, §5.2): half the lookups for a
// modest accuracy cost.
func BenchmarkAblationSubsample(b *testing.B) {
	corp, ps := benchFixtures(b)
	for _, sub := range []int{1, 2} {
		b.Run("subsample_"+itoa(sub), func(b *testing.B) {
			cfg := ps.Config
			cfg.Subsample = sub
			psC := &ProfileSet{Config: cfg, Profiles: ps.Profiles}
			clf, err := NewClassifier(psC, BackendBloom)
			if err != nil {
				b.Fatal(err)
			}
			eng := NewEngine(clf, 0)
			docs := corp.TestDocuments("")
			var bytes int64
			for _, d := range docs {
				bytes += int64(len(d.Text))
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ClassifyAll(docs)
			}
			b.StopTimer()
			ev := eng.Evaluate(corp)
			b.ReportMetric(100*ev.Average, "accuracy_pct")
		})
	}
}

// BenchmarkAblationCopies sweeps the classifier replication factor in
// the simulated hardware: copies ∈ {1,2,4} give 2, 4, 8 n-grams/clock.
func BenchmarkAblationCopies(b *testing.B) {
	_, ps := benchFixtures(b)
	for _, copies := range []int{1, 2, 4} {
		b.Run("copies_"+itoa(copies), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(ps, SystemOptions{Copies: copies, Link: ImprovedLink()})
				if err != nil {
					b.Fatal(err)
				}
				sys.Program()
				rep, err := sys.Stream(benchBigDocs, ModeAsync, false)
				if err != nil {
					b.Fatal(err)
				}
				mbps = float64(rep.Bytes) / rep.SimTime.Seconds() / 1e6
			}
			b.ReportMetric(mbps, "sim_MB_per_s")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the pipeline stages.

func BenchmarkTrainProfiles(b *testing.B) {
	corp, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(DefaultConfig(), corp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifySingleDoc(b *testing.B) {
	_, ps := benchFixtures(b)
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchBigDocs[0].Text
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Classify(doc)
	}
}

func BenchmarkCavnarTrenkleSingleDoc(b *testing.B) {
	corp, _ := benchFixtures(b)
	ct, err := NewCavnarTrenkle(CavnarTrenkleConfig{}, corp)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchBigDocs[0].Text
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Classify(doc)
	}
}

func BenchmarkHAILSingleDoc(b *testing.B) {
	_, ps := benchFixtures(b)
	h, err := NewHAIL(DefaultHAILConfig(), ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchBigDocs[0].Text
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Classify(doc)
	}
}
