package bloomlang

import (
	"bloomlang/internal/registry"
)

// Registry is the versioned on-disk profile store of the profile
// lifecycle: every trained ProfileSet becomes an immutable checksummed
// version, exactly one version is active at a time, and serving
// processes hot-swap between versions without dropping a request.
type Registry = registry.Registry

// ProfileManifest describes one immutable registry version: id,
// creation time, training configuration, corpus stats, and the
// profile checksum Load verifies.
type ProfileManifest = registry.Manifest

// ProfileHandle is the lock-free hot-swap point between the profile
// lifecycle and a serving path: readers atomically load the current
// (detector, version) snapshot and never block on a swap.
type ProfileHandle = registry.Handle

// ProfileSnapshot is one immutable (detector, version) pairing served
// by a ProfileHandle.
type ProfileSnapshot = registry.Snapshot

// ErrNoActiveProfile reports a registry with no activated version.
var ErrNoActiveProfile = registry.ErrNoActive

// OpenRegistry opens (creating if necessary) the profile registry
// rooted at dir.
func OpenRegistry(dir string) (*Registry, error) { return registry.Open(dir) }

// NewProfileHandle returns a hot-swap handle serving det under the
// given version id.
func NewProfileHandle(det *Detector, version string) *ProfileHandle {
	return registry.NewHandle(det, version)
}
