module bloomlang

go 1.24
