package bloomlang

import (
	"testing"
)

// BenchmarkDetector measures the warm single-document hot path: one
// paper-sized document through alphabet translation, n-gram extraction,
// membership counting and winner selection. The allocation discipline
// bar is 0 allocs/op — all working memory comes from the detector's
// scratch pool.
func BenchmarkDetector(b *testing.B) {
	_, ps := benchFixtures(b)
	det, err := NewDetector(ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchBigDocs[0].Text
	det.Detect(doc) // warm the scratch pool
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(doc)
	}
}

// BenchmarkDetectorBackends runs the same hot path on every built-in
// membership backend. The blocked backend's filters are sized for a
// modelled false-positive rate no worse than the parallel variant's at
// the same Config, so its entry is an equal-FPR comparison, not an
// accuracy trade.
func BenchmarkDetectorBackends(b *testing.B) {
	_, ps := benchFixtures(b)
	doc := benchBigDocs[0].Text
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked} {
		b.Run(backend.String(), func(b *testing.B) {
			det, err := NewDetector(ps, WithBackend(backend))
			if err != nil {
				b.Fatal(err)
			}
			det.Detect(doc)
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Detect(doc)
			}
		})
	}
}

// BenchmarkDetectSpans measures the mixed-language segmentation hot
// path on every backend: one hashing pass over a paper-sized document
// feeding ring-buffered window accumulators. With pooled scratch warm
// and a reused destination slice the discipline bar is 0 allocs/op —
// on the blocked backend the fused kernel makes per-span labeling cost
// barely more than a single Detect.
func BenchmarkDetectSpans(b *testing.B) {
	_, ps := benchFixtures(b)
	doc := benchBigDocs[0].Text
	cfg := SegmentConfig{Window: 64, Stride: 16, Hysteresis: 2}
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked} {
		b.Run(backend.String(), func(b *testing.B) {
			det, err := NewDetector(ps, WithBackend(backend))
			if err != nil {
				b.Fatal(err)
			}
			dst, err := det.AppendSpans(nil, doc, cfg) // warm the segment pool
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _ = det.AppendSpans(dst[:0], doc, cfg)
			}
		})
	}
}

// BenchmarkDetectorRank measures the ranked-results path (allocates the
// returned slice by design).
func BenchmarkDetectorRank(b *testing.B) {
	_, ps := benchFixtures(b)
	det, err := NewDetector(ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchBigDocs[0].Text
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Rank(doc, 3)
	}
}

// BenchmarkDetectorBatch measures worker fan-out over the paper-sized
// document set.
func BenchmarkDetectorBatch(b *testing.B) {
	_, ps := benchFixtures(b)
	det, err := NewDetector(ps)
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for _, d := range benchBigDocs {
		bytes += int64(len(d.Text))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.DetectBatch(benchBigDocs)
	}
}
