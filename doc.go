// Package bloomlang is a pure-Go reproduction of "Language
// Classification using N-grams Accelerated by FPGA-based Bloom Filters"
// (Jacob & Gokhale, HPRCTA'07): n-gram language classification with
// Parallel Bloom Filter membership testing, together with a
// cycle-accounted simulation of the XtremeData XD1000 hardware platform
// the paper deployed on and the two baselines it compares against
// (the HAIL FPGA design and Mguesser-style Cavnar-Trenkle software).
//
// # Quick start
//
//	corp, _ := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
//		DocsPerLanguage: 100, WordsPerDoc: 400, TrainFraction: 0.1, Seed: 1,
//	})
//	profiles, _ := bloomlang.Train(bloomlang.DefaultConfig(), corp)
//	clf, _ := bloomlang.NewClassifier(profiles, bloomlang.BackendBloom)
//	r := clf.Classify([]byte("el reglamento del consejo sobre la política agrícola"))
//	fmt.Println(r.BestLanguage(clf.Languages())) // "es"
//
// # Architecture
//
// The library is organized as the paper's system is:
//
//   - alphabet conversion (8-bit extended ASCII to 5-bit codes),
//   - n-gram extraction and top-t profile training,
//   - H3-hashed Parallel Bloom Filters (one per language),
//   - a multi-language match-counting classifier with software
//     (goroutine-parallel) and simulated-hardware execution paths,
//   - the XD1000 system model: HyperTransport link, DMA, command
//     protocol, watchdog, and synchronous/asynchronous host drivers,
//   - baselines: HAIL (direct SRAM lookup) and Cavnar-Trenkle rank
//     ordering.
//
// Every table and figure of the paper's evaluation can be regenerated;
// see the Run* experiment functions and cmd/experiments.
//
// # Serving
//
// The serving subsystem (internal/serve, re-exported as NewServer)
// turns a trained classifier into the document-stream service the
// paper positions the hardware behind. The handler exposes:
//
//	POST /detect   one raw document        -> one JSON detection
//	POST /batch    JSON array of documents -> array of detections,
//	               fanned out over the engine worker pool, input order
//	               preserved
//	POST /stream   NDJSON documents        -> NDJSON detections,
//	               classified incrementally with bounded memory, one
//	               result line flushed per input line
//	GET  /healthz  liveness probe
//	GET  /statsz   request/byte/latency counters (atomic snapshot)
//
// Trained profiles persist with SaveProfiles and come back with
// LoadProfiles (configuration travels with the profiles), so a server
// restart costs a file read instead of a training run:
//
//	profiles, _ := bloomlang.LoadProfiles("profiles.bin")
//	srv, _ := bloomlang.NewServer(profiles, bloomlang.ServeConfig{})
//	http.ListenAndServe(":8080", srv.Handler())
//
// cmd/langidd is the production daemon around this handler: flags for
// address, backend, worker pool, and body/batch/line limits, profile
// loading (or training via -corpus / -synthetic, with -save), and
// graceful drain on SIGINT/SIGTERM. examples/server walks the full
// serving surface in one self-contained program.
package bloomlang
