// Package bloomlang is a pure-Go reproduction of "Language
// Classification using N-grams Accelerated by FPGA-based Bloom Filters"
// (Jacob & Gokhale, HPRCTA'07): n-gram language classification with
// Parallel Bloom Filter membership testing, together with a
// cycle-accounted simulation of the XtremeData XD1000 hardware platform
// the paper deployed on and the two baselines it compares against
// (the HAIL FPGA design and Mguesser-style Cavnar-Trenkle software).
//
// # Quick start
//
// Detector is the single entry point for classification: train (or
// load) profiles, build a detector, detect.
//
//	corp, _ := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
//		DocsPerLanguage: 100, WordsPerDoc: 400, TrainFraction: 0.1, Seed: 1,
//	})
//	profiles, _ := bloomlang.Train(bloomlang.DefaultConfig(), corp)
//	det, _ := bloomlang.NewDetector(profiles)
//	m := det.Detect([]byte("el reglamento del consejo sobre la política agrícola"))
//	fmt.Println(m.Lang, m.Score, m.Margin) // "es 0.87 0.45"
//
// Every Match carries the winning language, the raw match count, the
// normalized confidence score (Count/NGrams), and the §5.1 winner
// margin — the quantity whose size over the Bloom false-positive noise
// is why the paper's filters barely cost accuracy. Documents that
// cannot be called confidently come back with Unknown set instead of a
// silently tie-broken guess:
//
//	det, _ := bloomlang.NewDetector(profiles,
//		bloomlang.WithBackend(bloomlang.BackendBloom), // or direct / classic
//		bloomlang.WithWorkers(8),                      // DetectBatch fan-out
//		bloomlang.WithMinMargin(0.02),                 // ties and near-ties -> Unknown
//		bloomlang.WithMinNGrams(8),                    // short docs -> Unknown
//	)
//
// Beyond one-shot Detect, the detector ranks candidates, fans out over
// batches, and consumes streams:
//
//	ranked := det.Rank(doc, 3)                  // top-3 languages by match count
//	matches := det.DetectBatch(docs)            // worker-pool, input order kept
//	m, err := det.DetectReader(file)            // bounded memory
//	st := det.NewStream()                       // incremental: Write chunks, then
//	st.Write(chunk); m = st.Match()             // read the running decision
//
// The single-document hot path reuses per-call scratch from an internal
// pool, so a warm Detect performs zero heap allocations (see
// BenchmarkDetector).
//
// # Membership backends
//
// The membership structure is an open registry. Four ship built in:
// the paper's Parallel Bloom Filter ("parallel-bloom"/"bloom"), HAIL's
// exact direct lookup ("direct-lookup"/"direct"), a classic
// single-vector Bloom filter ("classic-bloom"/"classic"), and a fused
// cache-line-blocked Bloom filter ("blocked-bloom"/"blocked").
// ParseBackend resolves any registered name or alias (the CLIs' -backend
// flag is exactly this), Backend.String round-trips it back, and
// RegisterBackend plugs in new implementations (RegisterFusedBackend
// for backends that score all languages per n-gram in one pass):
//
//	fast := bloomlang.RegisterBackend("my-backend", myBuilder, "mine")
//	det, _ := bloomlang.NewDetector(profiles, bloomlang.WithBackend(fast))
//
// The blocked backend is the software analogue of the paper's
// one-clock membership test. The hardware answers all k hash probes in
// a single cycle because its bit-vectors are physically parallel RAMs
// (§3.1); the blocked filter gets the same effect from the cache
// hierarchy: the first H3 hash selects one 64-byte block — a single
// cache line — and the remaining k−1 hashes select bits inside it, so
// a membership test costs one line fill regardless of k. The filters
// of all L languages are fused into one structure, laid out
// block-major and language-minor with one shared hash stage:
//
//	                 lang 0     lang 1         lang L-1
//	block 0      [64 bytes] [64 bytes] ... [64 bytes]
//	block 1      [64 bytes] [64 bytes] ... [64 bytes]
//	...
//	block B-1    [64 bytes] [64 bytes] ... [64 bytes]
//
//	n-gram g:  h0(g) picks the block row — computed once —
//	           h1..h(k-1)(g) pick the probe bits — computed once —
//	           then the L adjacent blocks of that row are tested in
//	           sequence: one pass over L consecutive cache lines
//	           scores every language (AccumulateInto).
//
// Per-language filters are sized (power-of-two block count) so the
// modelled false-positive rate at full profile load is no worse than
// the parallel backend's §3.1 model under the same Config; the n-gram
// scoring loop runs several times faster than the parallel backend
// because hashing is shared across languages and probes never leave
// one cache line per language. Prefer "blocked" for software serving
// throughput; prefer "bloom" when simulated-hardware and software
// classifications must share filter state bit-for-bit (the XD1000
// simulator borrows the parallel filters); "direct" is exact
// membership at a much larger memory footprint; "classic" exists as
// an ablation. SaveProfilesBlocked embeds the programmed blocked
// layout in the profile file (NGPS v2), so a daemon serving "blocked"
// skips filter programming at startup; v1 files and legacy NGPF
// streams remain readable, and damaged files fail with errors tagged
// ErrCorruptProfiles.
//
// # Segmentation
//
// Real traffic is full of mixed-language documents — quoted replies,
// code-switched chat, bilingual pages — where one label is simply
// wrong. DetectSpans answers with a tiling of contiguous
// single-language spans instead:
//
//	spans, _ := det.DetectSpans(doc, bloomlang.SegmentConfig{})
//	for _, sp := range spans {
//		fmt.Printf("[%d,%d) %s score %.2f\n", sp.Start, sp.End, sp.Lang, sp.Score)
//	}
//
// The mechanism reuses the match-counting inner loop unchanged and
// runs it exactly once per document: the n-gram stream is cut into
// Stride-sized chunks, each chunk's per-language counts accumulate
// through the classifier's single counting pass (the fused blocked
// kernel scores all languages per n-gram; the other backends walk
// their Matcher loops), and a sliding window of Window n-grams is the
// rolling sum of a Window/Stride-row ring — add the newest chunk,
// subtract the oldest. No n-gram is ever re-extracted or re-hashed
// for a second window, so on the blocked backend segmenting costs
// barely more than one Detect, at 0 allocs/op warm (AppendSpans with
// a reused destination; see BenchmarkDetectSpans).
//
// Window arg-max decisions pass through hysteresis before a boundary
// is believed: a new language must win Hysteresis consecutive windows,
// and interrupted challenges fold back into the incumbent, so one
// noisy window never fragments a span. Boundaries are attributed to
// the center of the first window that voted for the new language and
// land within about one stride of the decision flip. Optional
// Smoothing (an EWMA over window counts) further steadies boundaries
// on choppy text. Windows that fail the detector's MinMargin /
// MinNGrams policy become explicit Unknown spans. The returned spans
// always tile [0, len(doc)) with no gaps or overlaps; a document
// shorter than one window is decided whole, exactly as Detect decides
// it.
//
// All four backends segment; geometry is per call:
//
//	SegmentConfig{Window: 96, Stride: 24}  // finer boundaries: smaller Stride
//	SegmentConfig{Hysteresis: 3}           // calmer boundaries: more persistence
//	SegmentConfig{Smoothing: 0.5}          // steadier arg-max on choppy text
//
// Streaming and reader variants mirror the detection paths —
// DetectSpansReader for bounded-memory files, NewSpanStream for
// incremental feeds (Write chunks in any splits; Spans returns the
// boundaries finalized so far, Finish closes the document; identical
// output to one-shot for identical bytes):
//
//	st, _ := det.NewSpanStream(bloomlang.SegmentConfig{})
//	st.Write(chunk)
//	done := st.Spans()     // finalized so far
//	all := st.Finish()     // the complete tiling
//
// The segmentation quality gate lives in testdata/golden_segments.json:
// deterministic mixed-language documents with known boundaries
// (cmd/corpusgen -mixed writes the same ground truth to disk) and
// per-language byte-F1 floors every backend must clear. From the
// command line, langid segment prints, tabulates (-tsv) or colors
// (-color) a file's spans; over HTTP, POST /segment returns the span
// tiling and /stream?spans=1 attaches spans to every NDJSON result.
//
// # Architecture
//
// The library is organized as the paper's system is:
//
//   - alphabet conversion (8-bit extended ASCII to 5-bit codes),
//   - n-gram extraction and top-t profile training,
//   - H3-hashed Parallel Bloom Filters (one per language),
//   - the Detector: multi-language match counting with ranked results,
//     confidence thresholding, batch (goroutine-parallel) and stream
//     execution paths,
//   - the XD1000 system model: HyperTransport link, DMA, command
//     protocol, watchdog, and synchronous/asynchronous host drivers,
//   - baselines: HAIL (direct SRAM lookup) and Cavnar-Trenkle rank
//     ordering.
//
// Every table and figure of the paper's evaluation can be regenerated;
// see the Run* experiment functions and cmd/experiments.
//
// # Profile lifecycle
//
// Training, versioning, activation and serving are decoupled, the way
// the paper's deployment separates offline profile construction from
// the hardware that serves them (§2). The streaming trainer ingests
// documents incrementally — whole documents, io.Readers, NDJSON
// streams, or corpus directory trees — and counts n-grams across
// sharded, mergeable accumulators, so a training corpus never has to
// fit in memory; its output is byte-identical to Train on the same
// documents:
//
//	tr, _ := bloomlang.NewTrainer(bloomlang.DefaultConfig(), bloomlang.WithShards(4))
//	tr.Add("es", doc)                       // one document at a time
//	tr.AddReader("en", file)                // streamed, chunk by chunk
//	tr.AddNDJSON(r)                         // {"lang": "es", "text": "..."} lines
//	tr.AddDir("corpus")                     // corpusgen layout, file by file
//	profiles, stats, _ := tr.Finalize()
//
// Trained profiles become immutable, checksummed versions in an
// on-disk registry; exactly one version is active at a time, and the
// rollback history makes bad rollouts reversible:
//
//	reg, _ := bloomlang.OpenRegistry("/var/lib/langid")
//	m, _ := reg.Create(profiles, stats)     // -> v000007, not yet live
//	reg.Activate(m.Version)                 // CURRENT -> v000007
//	reg.Rollback()                          // back to the previous version
//	reg.GC(3)                               // drop old inactive versions
//
// The same lifecycle from the command line, end to end:
//
//	langid train -corpus corpusdir -registry /var/lib/langid -activate
//	langid profiles -registry /var/lib/langid            # list versions
//	langidd -registry /var/lib/langid -addr :8080        # serve the active version
//	langid train -ndjson fresh.ndjson -registry /var/lib/langid -activate
//	curl -X POST :8080/admin/reload                      # hot-swap, zero downtime
//	langid profiles -registry /var/lib/langid -rollback  # then reload again
//
// A running server reaches its detector through a hot-swap handle (an
// atomic pointer to an immutable (detector, version) snapshot), so
// Reload — triggered by SIGHUP or POST /admin/reload — is
// zero-downtime: requests in flight finish on the detector they
// started with, requests arriving after the swap see the new version,
// and no request ever blocks or observes a torn state.
//
// # Serving
//
// The serving subsystem (internal/serve, re-exported as NewServer /
// NewServerFromRegistry) routes all endpoints through the current
// detector snapshot. Responses carry the score/margin/unknown fields;
// /statsz counts unknown-classified documents separately per endpoint
// and names the serving profile version; failed requests are answered
// with a JSON error body ({"error": ..., "status": ...}) — 413 for
// oversized bodies, 408 for request-body read timeouts:
//
//	POST /detect          one raw document        -> one JSON detection
//	POST /batch           JSON array of documents -> array of detections,
//	                      fanned out over the detector's workers, input
//	                      order preserved
//	POST /stream          NDJSON documents        -> NDJSON detections,
//	                      classified incrementally with bounded memory,
//	                      one result line flushed per input line
//	                      (?spans=1 adds each document's span tiling)
//	POST /segment         one raw document        -> its mixed-language
//	                      span tiling (window/stride geometry from
//	                      ServeConfig.Segment), spans counted on /statsz
//	GET  /healthz         liveness probe
//	GET  /statsz          request/byte/latency/unknown counters + version
//	GET  /admin/profiles  registry versions, serving vs active version
//	POST /admin/reload    hot-swap to the registry's active version
//
// The admin endpoints exist only on registry-backed servers and carry
// no authentication; deployments should expose /admin to operators
// only. Flat profile files remain supported for simple setups:
// SaveProfiles/LoadProfiles round-trip a ProfileSet (configuration
// included), so a restart costs a file read instead of a training run:
//
//	profiles, _ := bloomlang.LoadProfiles("profiles.bin")
//	srv, _ := bloomlang.NewServer(profiles, bloomlang.ServeConfig{MinMargin: 0.02})
//	http.ListenAndServe(":8080", srv.Handler())
//
// cmd/langidd is the production daemon around this handler: flags for
// address, backend, worker pool, confidence thresholds (-min-margin,
// -min-ngrams), body/batch/line limits and read/write/idle timeouts,
// profile sources (-registry, -profiles, -corpus, -synthetic, with
// -save), SIGHUP hot reload, and graceful drain on SIGINT/SIGTERM.
// examples/server walks the full serving surface, admin plane
// included, in one self-contained program.
//
// # Migrating from Classifier and Engine
//
// The pre-Detector entry points remain as thin deprecated wrappers;
// each maps onto the Detector like so:
//
//	NewClassifier(ps, backend)   -> NewDetector(ps, WithBackend(backend))
//	Classifier.Classify(doc)     -> Detector.Detect(doc)        (Match, not Result)
//	Result.BestLanguage(langs)   -> Match.Lang                  ("" now means Unknown)
//	Result.Margin()              -> Match.Margin                (normalized, float64)
//	Result.Counts                -> Detector.Rank(doc, 0)       (ranked Matches)
//	NewEngine(clf, n)            -> NewDetector(ps, WithWorkers(n))
//	Engine.ClassifyAll(docs)     -> Detector.DetectBatch(docs)
//	Classifier.NewStream()       -> Detector.NewStream()        (Match-producing)
//	hand-rolled backend switch   -> ParseBackend(name)
//
// Raw per-language counts and corpus evaluation stay available through
// (*Detector).Classifier and NewEngine (Evaluate/Measure); the
// simulator keeps borrowing the classifier's Bloom filters, so
// hardware-simulated and software classifications still agree
// bit-for-bit.
package bloomlang
