// Package bloomlang is a pure-Go reproduction of "Language
// Classification using N-grams Accelerated by FPGA-based Bloom Filters"
// (Jacob & Gokhale, HPRCTA'07): n-gram language classification with
// Parallel Bloom Filter membership testing, together with a
// cycle-accounted simulation of the XtremeData XD1000 hardware platform
// the paper deployed on and the two baselines it compares against
// (the HAIL FPGA design and Mguesser-style Cavnar-Trenkle software).
//
// # Quick start
//
//	corp, _ := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
//		DocsPerLanguage: 100, WordsPerDoc: 400, TrainFraction: 0.1, Seed: 1,
//	})
//	profiles, _ := bloomlang.Train(bloomlang.DefaultConfig(), corp)
//	clf, _ := bloomlang.NewClassifier(profiles, bloomlang.BackendBloom)
//	r := clf.Classify([]byte("el reglamento del consejo sobre la política agrícola"))
//	fmt.Println(r.BestLanguage(clf.Languages())) // "es"
//
// # Architecture
//
// The library is organized as the paper's system is:
//
//   - alphabet conversion (8-bit extended ASCII to 5-bit codes),
//   - n-gram extraction and top-t profile training,
//   - H3-hashed Parallel Bloom Filters (one per language),
//   - a multi-language match-counting classifier with software
//     (goroutine-parallel) and simulated-hardware execution paths,
//   - the XD1000 system model: HyperTransport link, DMA, command
//     protocol, watchdog, and synchronous/asynchronous host drivers,
//   - baselines: HAIL (direct SRAM lookup) and Cavnar-Trenkle rank
//     ordering.
//
// Every table and figure of the paper's evaluation can be regenerated;
// see the Run* experiment functions and cmd/experiments.
package bloomlang
