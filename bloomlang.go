package bloomlang

import (
	"bloomlang/internal/bloom"
	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/ctrank"
	"bloomlang/internal/fpga"
	"bloomlang/internal/hail"
	"bloomlang/internal/ngram"
)

// Config carries the classifier parameters the paper studies (§4,
// §5.2): n-gram length N, profile size TopT, hash count K, bit-vector
// length MBits, plus the RNG seed and optional input subsampling.
type Config = core.Config

// DefaultConfig returns the paper's conservative operating point:
// 4-grams, t=5000, k=4, m=16 Kbit.
func DefaultConfig() Config { return core.DefaultConfig() }

// SpaceEfficientConfig returns the paper's most space-efficient
// operating point (§5.2): k=6 hash functions and one 4 Kbit embedded
// RAM per bit-vector, 24 Kbit per language, supporting thirty languages
// on the target device.
func SpaceEfficientConfig() Config {
	cfg := core.DefaultConfig()
	cfg.K = 6
	cfg.MBits = 4 * 1024
	return cfg
}

// ProfileSet is a trained set of per-language n-gram profiles.
type ProfileSet = core.ProfileSet

// Profile is one language's ranked n-gram profile.
type Profile = ngram.Profile

// Result is a single-document classification outcome in the legacy
// counter-centric form; new code should consume Match from a Detector.
type Result = core.Result

// Evaluation is an accuracy/confusion summary over a labelled test set.
type Evaluation = core.Evaluation

// Backend selects the membership structure used for match counting.
// The set is open: RegisterBackend adds new ones, ParseBackend resolves
// them by name.
type Backend = core.Backend

// Membership backends: the paper's Parallel Bloom Filter, HAIL-style
// exact direct lookup, and a classic single-vector Bloom filter for
// ablations.
const (
	BackendBloom   = core.BackendBloom
	BackendDirect  = core.BackendDirect
	BackendClassic = core.BackendClassic
	BackendBlocked = core.BackendBlocked
)

// Matcher is one language's membership structure; implement it to
// register a custom backend.
type Matcher = core.Matcher

// BackendBuilder constructs the Matcher for one language profile.
type BackendBuilder = core.BackendBuilder

// RegisterBackend adds a membership backend under a canonical name
// plus optional parse aliases, returning the Backend that selects it.
func RegisterBackend(name string, build BackendBuilder, aliases ...string) Backend {
	return core.RegisterBackend(name, build, aliases...)
}

// ParseBackend resolves a backend by canonical name or alias
// ("parallel-bloom"/"bloom", "direct-lookup"/"direct",
// "classic-bloom"/"classic", plus anything registered). It is the
// inverse of Backend.String.
func ParseBackend(name string) (Backend, error) { return core.ParseBackend(name) }

// Backends lists every registered backend's canonical name.
func Backends() []string { return core.Backends() }

// Detector is the single entry point for language detection: ranked
// results, confidence scoring with explicit unknown outcomes, batch and
// stream paths, and an allocation-free single-document hot path.
type Detector = core.Detector

// Match is one classified document: winning language, raw match count,
// normalized confidence score and winner margin, or an explicit
// Unknown outcome.
type Match = core.Match

// DetectorOption configures a Detector at construction.
type DetectorOption = core.DetectorOption

// NewDetector builds a detector over trained profiles. Options:
// WithBackend, WithWorkers, WithMinMargin, WithMinNGrams.
func NewDetector(ps *ProfileSet, opts ...DetectorOption) (*Detector, error) {
	return core.NewDetector(ps, opts...)
}

// WithBackend selects the membership backend (default BackendBloom).
func WithBackend(b Backend) DetectorOption { return core.WithBackend(b) }

// WithWorkers bounds DetectBatch fan-out; n <= 0 means GOMAXPROCS.
func WithWorkers(n int) DetectorOption { return core.WithWorkers(n) }

// WithMinMargin makes Detect answer Unknown when the normalized winner
// margin falls below m (0 accepts everything, including exact ties).
func WithMinMargin(m float64) DetectorOption { return core.WithMinMargin(m) }

// WithMinNGrams makes Detect answer Unknown for documents with fewer
// than n testable n-grams.
func WithMinNGrams(n int) DetectorOption { return core.WithMinNGrams(n) }

// Span is one contiguous single-language region of a segmented
// document: the half-open byte range [Start, End), the language called
// for it, and the mean windowed confidence behind the call. Produced
// by (*Detector).DetectSpans and friends; spans always tile
// [0, len(doc)) with no gaps or overlaps.
type Span = core.Span

// SegmentConfig carries the sliding-window segmentation knobs
// (window/stride in n-grams, boundary hysteresis, count smoothing);
// the zero value selects the defaults.
type SegmentConfig = core.SegmentConfig

// SpanStream segments one document incrementally: Write bytes in any
// chunking, read finalized spans as boundaries are confirmed, Finish
// to close the document. Created by (*Detector).NewSpanStream.
type SpanStream = core.SpanStream

// Classifier tests document n-grams against every language profile and
// reports match counts (§3.2).
//
// Deprecated: use Detector, which adds ranked results, confidence
// scoring and unknown thresholding over the same pipeline. Classifier
// remains for raw per-language counts and the hardware simulator.
type Classifier = core.Classifier

// Engine runs a Classifier over document sets with a goroutine worker
// pool.
//
// Deprecated: use (*Detector).DetectBatch for classification;
// Engine remains for Evaluate/Measure-style corpus scoring.
type Engine = core.Engine

// Train builds per-language profiles from a corpus's training split.
func Train(cfg Config, corp *Corpus) (*ProfileSet, error) {
	return core.Train(cfg, corp)
}

// TrainFromTexts builds profiles from raw training texts keyed by
// language code.
func TrainFromTexts(cfg Config, texts map[string][][]byte) (*ProfileSet, error) {
	return core.TrainFromTexts(cfg, texts)
}

// NewClassifier builds a classifier over trained profiles with the
// chosen membership backend.
//
// Deprecated: use NewDetector(ps, WithBackend(backend)); the detector
// exposes the classifier via (*Detector).Classifier when raw counts
// are needed.
func NewClassifier(ps *ProfileSet, backend Backend) (*Classifier, error) {
	return core.New(ps, backend)
}

// NewEngine wraps a classifier in a parallel document engine;
// workers <= 0 means GOMAXPROCS.
//
// Deprecated: use NewDetector(ps, WithWorkers(n)) and
// (*Detector).DetectBatch; NewEngine remains for corpus evaluation.
func NewEngine(c *Classifier, workers int) *Engine {
	return core.NewEngine(c, workers)
}

// FalsePositiveRate returns the paper's §3.1 Parallel Bloom Filter
// model f = (1 − e^(−N/m))^k.
func FalsePositiveRate(n int, mBits uint32, k int) float64 {
	return bloom.FalsePositiveRate(n, mBits, k)
}

// Corpus is a multilingual labelled document collection with train and
// test splits.
type Corpus = corpus.Corpus

// CorpusConfig describes a synthetic corpus to generate.
type CorpusConfig = corpus.Config

// Document is one labelled text.
type Document = corpus.Document

// GenerateCorpus builds a synthetic JRC-Acquis-like corpus (see
// internal/corpus for the substitution rationale).
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) {
	return corpus.Generate(cfg)
}

// MixedCorpusConfig describes a deterministic mixed-language document
// set: seeded concatenations of per-language segments with known byte
// boundaries, the ground truth segmentation is evaluated against.
type MixedCorpusConfig = corpus.MixedConfig

// MixedDocument is one generated mixed-language document with its
// ground-truth segment tiling.
type MixedDocument = corpus.MixedDocument

// MixedSegment is one ground-truth region of a mixed document.
type MixedSegment = corpus.MixedSegment

// GenerateMixedCorpus builds the mixed-language document set described
// by cfg (see cmd/corpusgen -mixed for the on-disk form).
func GenerateMixedCorpus(cfg MixedCorpusConfig) ([]MixedDocument, error) {
	return corpus.GenerateMixed(cfg)
}

// PaperCorpusConfig returns the full-scale corpus shape of §5:
// 10 languages × 5,700 documents × 1,300 words, 10% training split.
// This generates roughly 450 MB of text.
func PaperCorpusConfig() CorpusConfig { return corpus.PaperConfig() }

// Languages returns the ten language codes of the paper's evaluation.
func Languages() []string { return corpus.Languages() }

// LanguageName returns the English name for a language code.
func LanguageName(code string) string { return corpus.Name(code) }

// ReadCorpusDir loads a corpus from the on-disk layout written by
// (*Corpus).WriteDir or cmd/corpusgen.
func ReadCorpusDir(root string) (*Corpus, error) { return corpus.ReadDir(root) }

// CavnarTrenkle is the Mguesser-style software baseline (§5.5).
type CavnarTrenkle = ctrank.Classifier

// CavnarTrenkleConfig parameterizes the rank-order baseline.
type CavnarTrenkleConfig = ctrank.Config

// NewCavnarTrenkle trains the rank-order baseline on a corpus.
func NewCavnarTrenkle(cfg CavnarTrenkleConfig, corp *Corpus) (*CavnarTrenkle, error) {
	return ctrank.TrainCorpus(cfg, corp)
}

// HAIL is the competing FPGA design modelled functionally and
// architecturally (§2, §5.5).
type HAIL = hail.Classifier

// HAILConfig parameterizes the HAIL model.
type HAILConfig = hail.Config

// DefaultHAILConfig returns the published HAIL operating point
// (324 MB/sec on a Xilinx XCV2000E-8).
func DefaultHAILConfig() HAILConfig { return hail.DefaultConfig() }

// NewHAIL builds the HAIL model from trained profiles.
func NewHAIL(cfg HAILConfig, ps *ProfileSet) (*HAIL, error) {
	return hail.Build(cfg, ps.Profiles)
}

// FPGADevice describes an FPGA resource inventory.
type FPGADevice = fpga.Device

// EP2S180 returns the paper's target device.
func EP2S180() FPGADevice { return fpga.EP2S180() }

// ModuleConfig describes one classifier module for resource estimation.
type ModuleConfig = fpga.ModuleConfig

// ModuleReport is a modelled module synthesis result (Table 2).
type ModuleReport = fpga.ModuleReport

// SystemReport is a modelled device build (Table 3).
type SystemReport = fpga.SystemReport

// EstimateModule models one classifier module's synthesis (Table 2).
func EstimateModule(cfg ModuleConfig, dev FPGADevice) (ModuleReport, error) {
	return fpga.EstimateModule(cfg, dev)
}

// EstimateFPGASystem models a full-device build (Table 3).
func EstimateFPGASystem(cfg ModuleConfig, dev FPGADevice) (SystemReport, error) {
	return fpga.EstimateSystem(cfg, dev)
}

// MaxLanguages returns the number of languages supportable at 8
// n-grams/clock after infrastructure overhead (§5.2).
func MaxLanguages(k int, mBits uint32, dev FPGADevice) int {
	return fpga.MaxLanguages(k, mBits, 4, dev)
}
