package bloomlang_test

import (
	"fmt"
	"log"

	"bloomlang"
)

// The basic pipeline: train profiles on a corpus, build a Detector,
// detect.
func Example() {
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 60,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	det, err := bloomlang.NewDetector(profiles)
	if err != nil {
		log.Fatal(err)
	}
	m := det.Detect([]byte("the council shall adopt the measures necessary for the application of this regulation"))
	fmt.Println(m.Lang)
	// Output: en
}

// Unknown thresholding: an empty document is never guessed, and a
// margin floor turns near-ties into explicit unknowns instead of
// silent lexicographic tie-breaks.
func ExampleDetector_Detect() {
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 60,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	det, err := bloomlang.NewDetector(profiles, bloomlang.WithMinNGrams(8))
	if err != nil {
		log.Fatal(err)
	}
	m := det.Detect([]byte("zq"))
	fmt.Println(m.Unknown, m.Lang == "")
	// Output: true true
}

// FalsePositiveRate evaluates the paper's §3.1 model: a 5,000-n-gram
// profile in four 16 Kbit vectors gives about five false positives per
// thousand lookups (Table 1, row 1).
func ExampleFalsePositiveRate() {
	f := bloomlang.FalsePositiveRate(5000, 16*1024, 4)
	fmt.Printf("%.0f per thousand\n", f*1000)
	// Output: 5 per thousand
}

// MaxLanguages reproduces the §5.2 capacity arithmetic: the
// space-efficient configuration (k=6, one 4 Kbit RAM per vector)
// supports thirty languages on the EP2S180.
func ExampleMaxLanguages() {
	n := bloomlang.MaxLanguages(6, 4*1024, bloomlang.EP2S180())
	fmt.Println(n, "languages")
	// Output: 30 languages
}

// EstimateFPGASystem reproduces a Table 3 row: the ten-language
// conservative build.
func ExampleEstimateFPGASystem() {
	rep, err := bloomlang.EstimateFPGASystem(bloomlang.ModuleConfig{
		K: 4, MBits: 16 * 1024, Languages: 10, Copies: 4,
	}, bloomlang.EP2S180())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d M4Ks at %.0f MHz, fits: %v\n", rep.M4Ks, rep.FreqMHz, rep.Fits)
	// Output: 680 M4Ks at 194 MHz, fits: true
}
