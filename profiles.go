package bloomlang

import (
	"io"

	"bloomlang/internal/core"
)

// SaveProfiles writes a trained profile set (configuration included)
// to path atomically, in the format LoadProfiles reads. A daemon
// restart then costs a file read instead of a training run.
func SaveProfiles(ps *ProfileSet, path string) error {
	return ps.SaveFile(path)
}

// SaveProfilesBlocked writes the profile set with the blocked-backend
// layout embedded (NGPS version 2): the fused cache-line-blocked
// filters are programmed once at save time, so a reader serving
// BackendBlocked skips filter programming entirely at startup.
// LoadProfiles reads both formats.
func SaveProfilesBlocked(ps *ProfileSet, path string) error {
	return ps.SaveFileBlocked(path)
}

// ErrCorruptProfiles tags ReadProfiles/LoadProfiles errors caused by
// damaged or truncated profile data, as opposed to I/O failures or
// version mismatches: errors.Is(err, ErrCorruptProfiles).
var ErrCorruptProfiles = core.ErrCorruptProfiles

// LoadProfiles reads a profile file written by SaveProfiles (or a
// legacy bare-profile file from older cmd/langid builds), ready to
// hand to NewClassifier or NewServer without re-training.
func LoadProfiles(path string) (*ProfileSet, error) {
	return core.LoadProfileSetFile(path)
}

// WriteProfiles serializes a profile set, configuration included, to a
// stream.
func WriteProfiles(w io.Writer, ps *ProfileSet) (int64, error) {
	return ps.WriteTo(w)
}

// ReadProfiles deserializes a profile set written by WriteProfiles.
// Legacy streams of bare profiles are read under the default
// configuration.
func ReadProfiles(r io.Reader) (*ProfileSet, error) {
	return core.ReadProfileSet(r)
}

// DocumentStream classifies one document incrementally with bounded
// memory; it implements io.Writer. See (*Classifier).NewStream via
// NewDocumentStream.
type DocumentStream = core.DocumentStream

// NewDocumentStream starts an incremental classification stream on the
// classifier.
func NewDocumentStream(c *Classifier) *DocumentStream {
	return c.NewStream()
}

// WideClassifier is the §3.3 Unicode extension: the same match-counting
// classifier over 16-bit characters (Greek, Cyrillic, and any other
// BMP script), with only the hash input width changed.
type WideClassifier = core.WideClassifier

// TrainWide builds a wide classifier from UTF-8 training texts keyed by
// language code. N is capped at 4 (a 4-gram of 16-bit characters fills
// the 64-bit hash input).
func TrainWide(cfg Config, texts map[string][]string) (*WideClassifier, error) {
	return core.TrainWide(cfg, texts)
}
