package bloomlang

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"bloomlang/internal/core"
	"bloomlang/internal/ngram"
)

// SaveProfiles serializes a trained profile set as a stream of
// profiles in the compact binary format of internal/ngram. Only the
// profiles travel; filter parameters (k, m) are chosen at load time,
// mirroring the hardware where the same profile data programs any
// filter shape.
func SaveProfiles(w io.Writer, ps *ProfileSet) error {
	for _, p := range ps.Profiles {
		if _, err := p.WriteTo(w); err != nil {
			return fmt.Errorf("bloomlang: saving profile %q: %w", p.Language, err)
		}
	}
	return nil
}

// LoadProfiles reads profiles saved by SaveProfiles and attaches the
// given classifier configuration. The configuration's N is overridden
// by the profiles' n-gram length.
func LoadProfiles(r io.Reader, cfg Config) (*ProfileSet, error) {
	br := bufio.NewReader(r)
	ps := &ProfileSet{Config: cfg}
	for {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			if errors.Is(err, io.EOF) && len(ps.Profiles) > 0 {
				break
			}
			return nil, err
		}
		ps.Config.N = p.N
		ps.Profiles = append(ps.Profiles, p)
	}
	return ps, nil
}

// DocumentStream classifies one document incrementally with bounded
// memory; it implements io.Writer. See (*Classifier).NewStream via
// NewDocumentStream.
type DocumentStream = core.DocumentStream

// NewDocumentStream starts an incremental classification stream on the
// classifier.
func NewDocumentStream(c *Classifier) *DocumentStream {
	return c.NewStream()
}

// WideClassifier is the §3.3 Unicode extension: the same match-counting
// classifier over 16-bit characters (Greek, Cyrillic, and any other
// BMP script), with only the hash input width changed.
type WideClassifier = core.WideClassifier

// TrainWide builds a wide classifier from UTF-8 training texts keyed by
// language code. N is capped at 4 (a 4-gram of 16-bit characters fills
// the 64-bit hash input).
func TrainWide(cfg Config, texts map[string][]string) (*WideClassifier, error) {
	return core.TrainWide(cfg, texts)
}
