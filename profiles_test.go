package bloomlang

import (
	"bytes"
	"testing"
)

func TestSaveLoadProfiles(t *testing.T) {
	_, ps := fixtures(t)
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfiles(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Profiles) != len(ps.Profiles) {
		t.Fatalf("loaded %d profiles, want %d", len(back.Profiles), len(ps.Profiles))
	}
	for i, p := range back.Profiles {
		orig := ps.Profiles[i]
		if p.Language != orig.Language || p.Size() != orig.Size() {
			t.Errorf("profile %d: %s/%d vs %s/%d", i, p.Language, p.Size(), orig.Language, orig.Size())
		}
	}
	// A classifier built from reloaded profiles classifies identically:
	// the Config seed is what fixes the hash matrices.
	a, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClassifier(back, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := fixCorpus.Test["fr"][0].Text
	ra, rb := a.Classify(doc), b.Classify(doc)
	for i := range ra.Counts {
		if ra.Counts[i] != rb.Counts[i] {
			t.Fatal("reloaded profiles classify differently")
		}
	}
}

func TestLoadProfilesErrors(t *testing.T) {
	if _, err := LoadProfiles(bytes.NewReader(nil), DefaultConfig()); err == nil {
		t.Error("LoadProfiles of empty stream succeeded")
	}
	if _, err := LoadProfiles(bytes.NewReader([]byte("garbage data")), DefaultConfig()); err == nil {
		t.Error("LoadProfiles of garbage succeeded")
	}
}

func TestDocumentStreamPublicAPI(t *testing.T) {
	corp, ps := fixtures(t)
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := corp.Test["sv"][0].Text
	s := NewDocumentStream(clf)
	half := len(doc) / 2
	s.Write(doc[:half])
	s.Write(doc[half:])
	got := s.Result()
	want := clf.Classify(doc)
	if got.Best != want.Best || got.NGrams != want.NGrams {
		t.Error("streamed result differs from batch result")
	}
}

func TestTrainWidePublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 3
	cfg.TopT = 1000
	clf, err := TrainWide(cfg, map[string][]string{
		"el": {"το συμβούλιο θεσπίζει τα αναγκαία μέτρα για την εφαρμογή του κανονισμού"},
		"ru": {"совет принимает необходимые меры для применения настоящего регламента"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := clf.Classify("η επιτροπή και το συμβούλιο θεσπίζουν μέτρα")
	if got := r.BestLanguage(clf.Languages()); got != "el" {
		t.Errorf("Greek text classified as %q", got)
	}
}
