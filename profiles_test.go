package bloomlang

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadProfiles(t *testing.T) {
	_, ps := fixtures(t)
	path := filepath.Join(t.TempDir(), "profiles.bin")
	if err := SaveProfiles(ps, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config != ps.Config {
		t.Errorf("config did not travel with profiles: %+v vs %+v", back.Config, ps.Config)
	}
	if len(back.Profiles) != len(ps.Profiles) {
		t.Fatalf("loaded %d profiles, want %d", len(back.Profiles), len(ps.Profiles))
	}
	for i, p := range back.Profiles {
		orig := ps.Profiles[i]
		if p.Language != orig.Language || p.Size() != orig.Size() {
			t.Errorf("profile %d: %s/%d vs %s/%d", i, p.Language, p.Size(), orig.Language, orig.Size())
		}
	}
	// A classifier built from reloaded profiles classifies identically:
	// the Config seed is what fixes the hash matrices.
	a, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClassifier(back, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := fixCorpus.Test["fr"][0].Text
	ra, rb := a.Classify(doc), b.Classify(doc)
	for i := range ra.Counts {
		if ra.Counts[i] != rb.Counts[i] {
			t.Fatal("reloaded profiles classify differently")
		}
	}
}

func TestWriteReadProfilesStream(t *testing.T) {
	_, ps := fixtures(t)
	var buf bytes.Buffer
	if _, err := WriteProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config != ps.Config || len(back.Profiles) != len(ps.Profiles) {
		t.Errorf("stream round-trip mismatch: %+v", back.Config)
	}
}

func TestReadProfilesErrors(t *testing.T) {
	if _, err := ReadProfiles(bytes.NewReader(nil)); err == nil {
		t.Error("ReadProfiles of empty stream succeeded")
	}
	if _, err := ReadProfiles(bytes.NewReader([]byte("garbage data"))); err == nil {
		t.Error("ReadProfiles of garbage succeeded")
	}
	if _, err := LoadProfiles(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("LoadProfiles of missing file succeeded")
	}
}

func TestDocumentStreamPublicAPI(t *testing.T) {
	corp, ps := fixtures(t)
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := corp.Test["sv"][0].Text
	s := NewDocumentStream(clf)
	half := len(doc) / 2
	s.Write(doc[:half])
	s.Write(doc[half:])
	got := s.Result()
	want := clf.Classify(doc)
	if got.Best != want.Best || got.NGrams != want.NGrams {
		t.Error("streamed result differs from batch result")
	}
}

func TestTrainWidePublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 3
	cfg.TopT = 1000
	clf, err := TrainWide(cfg, map[string][]string{
		"el": {"το συμβούλιο θεσπίζει τα αναγκαία μέτρα για την εφαρμογή του κανονισμού"},
		"ru": {"совет принимает необходимые меры для применения настоящего регламента"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := clf.Classify("η επιτροπή και το συμβούλιο θεσπίζουν μέτρα")
	if got := r.BestLanguage(clf.Languages()); got != "el" {
		t.Errorf("Greek text classified as %q", got)
	}
}
