// Package rtl is a cycle-stepped register-transfer-level model of one
// classifier copy — the datapath the paper implements in VHDL (§3,
// Figures 1-2). Where internal/core computes match counts functionally
// and internal/xd1000 accounts time analytically, this package steps
// the actual pipeline clock by clock:
//
//	stage 0  window   two 5-bit characters shift in per clock
//	                  (dual-ported RAMs let one copy test two n-grams
//	                  per cycle, §3.2); two candidate n-grams emerge
//	stage 1  hash     k H3 XOR trees per language evaluate both n-grams
//	stage 2  read     each (language, hash) embedded RAM serves the two
//	                  reads on its two ports; the k bits AND-reduce to a
//	                  match bit per language per n-gram
//	stage 3  count    per-language match counters increment
//
// The model enforces the structural constraint that motivates the
// Parallel Bloom Filter: an embedded RAM has exactly two ports, so a
// single shared vector could never serve k reads per cycle. Port usage
// is asserted every clock.
//
// Tests verify the pipeline is cycle-exact against the functional
// classifier: same counters, and latency equal to ceil(chars/2) plus
// the pipeline depth.
package rtl

import (
	"fmt"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/bloom"
	"bloomlang/internal/core"
	"bloomlang/internal/ngram"
)

// PortsPerRAM is the number of read ports on a modern FPGA embedded
// RAM (§3.2: "embedded RAMs ... are typically dual-ported").
const PortsPerRAM = 2

// Depth is the pipeline depth in clocks: a character pair entering at
// cycle t updates the counters at t+Depth.
const Depth = 4

// gramSlot is one n-gram travelling down the pipeline.
type gramSlot struct {
	gram  uint32
	valid bool
}

// hashSlot carries the k addresses for one n-gram per language.
type hashSlot struct {
	// addr[lang][hash] is the bit-vector address.
	addr  [][]uint32
	valid bool
}

// matchSlot carries per-language match bits for one n-gram.
type matchSlot struct {
	match []bool
	valid bool
}

// Pipeline is one classifier copy processing two characters per clock
// against p languages.
type Pipeline struct {
	n     int
	k     int
	langs int

	// Borrowed filter state: vectors[lang][hash] is the 1×m bit-vector,
	// hashers[lang] the language's H3 family — the same objects the
	// functional classifier uses, so RTL and functional results cannot
	// drift apart.
	filters []*bloom.Parallel

	// Architectural state.
	window uint32
	mask   uint32
	filled int

	// Pipeline registers between stages (two slots per stage: the two
	// n-grams of the cycle).
	s1 [2]gramSlot  // window -> hash
	s2 [2]hashSlot  // hash -> read
	s3 [2]matchSlot // read -> count

	counters []int
	cycles   int64

	// ramReads[lang][hash] counts reads issued to that RAM in the
	// current cycle; checked against PortsPerRAM.
	ramReads [][]int
}

// New builds a pipeline over the classifier's Bloom filters. The
// classifier must use the parallel-bloom backend.
func New(c *core.Classifier) (*Pipeline, error) {
	if c.Backend() != core.BackendBloom {
		return nil, fmt.Errorf("rtl: pipeline requires the parallel-bloom backend, got %v", c.Backend())
	}
	cfg := c.Config()
	if cfg.Subsample != 1 {
		return nil, fmt.Errorf("rtl: subsampling not modelled at RTL level")
	}
	langs := len(c.Languages())
	p := &Pipeline{
		n:        cfg.N,
		k:        cfg.K,
		langs:    langs,
		mask:     uint32(uint64(1)<<ngram.Bits(cfg.N) - 1),
		counters: make([]int, langs),
	}
	p.filters = make([]*bloom.Parallel, langs)
	for i := 0; i < langs; i++ {
		p.filters[i] = c.Filter(i)
	}
	p.ramReads = make([][]int, langs)
	for i := range p.ramReads {
		p.ramReads[i] = make([]int, cfg.K)
	}
	return p, nil
}

// Reset clears architectural and pipeline state (counters included);
// filter contents are external and untouched.
func (p *Pipeline) Reset() {
	p.window = 0
	p.filled = 0
	p.s1 = [2]gramSlot{}
	p.s2 = [2]hashSlot{}
	p.s3 = [2]matchSlot{}
	for i := range p.counters {
		p.counters[i] = 0
	}
	p.cycles = 0
}

// Clock advances the pipeline one cycle with nValid input characters
// (0, 1 or 2). Stages execute back to front, as registers latch.
func (p *Pipeline) Clock(c0, c1 alphabet.Code, nValid int) {
	if nValid < 0 || nValid > 2 {
		panic(fmt.Sprintf("rtl: %d input characters in one cycle", nValid))
	}
	p.cycles++

	// Stage 3: counters latch from match slots.
	for _, s := range p.s3 {
		if !s.valid {
			continue
		}
		for l, m := range s.match {
			if m {
				p.counters[l]++
			}
		}
	}

	// Stage 2 -> 3: RAM reads and AND-reduce.
	for l := range p.ramReads {
		for h := range p.ramReads[l] {
			p.ramReads[l][h] = 0
		}
	}
	for i, s := range p.s2 {
		if !s.valid {
			p.s3[i] = matchSlot{}
			continue
		}
		match := make([]bool, p.langs)
		for l := 0; l < p.langs; l++ {
			all := true
			for h := 0; h < p.k; h++ {
				p.ramReads[l][h]++
				if p.ramReads[l][h] > PortsPerRAM {
					panic(fmt.Sprintf("rtl: RAM (lang %d, hash %d) issued %d reads in one cycle, ports=%d",
						l, h, p.ramReads[l][h], PortsPerRAM))
				}
				if !p.filters[l].Vector(h).Get(s.addr[l][h]) {
					all = false
					// Hardware reads all ports regardless; keep counting
					// reads but the AND result is already decided.
				}
			}
			match[l] = all
		}
		p.s3[i] = matchSlot{match: match, valid: true}
	}

	// Stage 1 -> 2: hash both n-grams for every language.
	for i, s := range p.s1 {
		if !s.valid {
			p.s2[i] = hashSlot{}
			continue
		}
		addr := make([][]uint32, p.langs)
		for l := 0; l < p.langs; l++ {
			addr[l] = make([]uint32, p.k)
			for h := 0; h < p.k; h++ {
				addr[l][h] = p.filters[l].Hash(h, s.gram)
			}
		}
		p.s2[i] = hashSlot{addr: addr, valid: true}
	}

	// Stage 0 -> 1: shift the input characters through the window.
	p.s1 = [2]gramSlot{}
	in := [2]alphabet.Code{c0, c1}
	for i := 0; i < nValid; i++ {
		p.window = (p.window<<alphabet.Bits | uint32(in[i])) & p.mask
		if p.filled < p.n-1 {
			p.filled++
			continue
		}
		p.s1[i] = gramSlot{gram: p.window, valid: true}
	}
}

// Drain clocks the pipeline with no input until all in-flight n-grams
// have updated the counters.
func (p *Pipeline) Drain() {
	for i := 0; i < Depth; i++ {
		p.Clock(0, 0, 0)
	}
}

// Counters returns the per-language match counts accumulated so far.
func (p *Pipeline) Counters() []int {
	return append([]int(nil), p.counters...)
}

// Cycles returns the clock count since Reset.
func (p *Pipeline) Cycles() int64 { return p.cycles }

// RunDocument streams a whole document through the pipeline (two
// characters per clock), drains it, and returns the counters and the
// cycle count — the RTL ground truth for the analytic cycle model in
// internal/xd1000.
func (p *Pipeline) RunDocument(doc []byte) ([]int, int64) {
	p.Reset()
	codes := alphabet.TranslateAll(doc)
	for i := 0; i < len(codes); i += 2 {
		if i+1 < len(codes) {
			p.Clock(codes[i], codes[i+1], 2)
		} else {
			p.Clock(codes[i], 0, 1)
		}
	}
	p.Drain()
	return p.Counters(), p.Cycles()
}
