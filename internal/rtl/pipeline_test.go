package rtl

import (
	"testing"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
)

func testClassifier(t testing.TB) (*core.Classifier, *corpus.Corpus) {
	t.Helper()
	cfg := corpus.Config{
		Languages:       []string{"en", "fi", "es"},
		DocsPerLanguage: 12,
		WordsPerDoc:     150,
		TrainFraction:   0.3,
		Seed:            21,
	}
	corp, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.Train(core.Config{TopT: 1500, Seed: 21}, corp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(ps, core.BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	return c, corp
}

func TestNewValidation(t *testing.T) {
	c, _ := testClassifier(t)
	if _, err := New(c); err != nil {
		t.Fatalf("New: %v", err)
	}
	ps, _ := core.TrainFromTexts(core.Config{TopT: 100}, map[string][][]byte{
		"en": {[]byte("enough text for a tiny profile here")},
	})
	direct, _ := core.New(ps, core.BackendDirect)
	if _, err := New(direct); err == nil {
		t.Error("New accepted a direct-lookup classifier")
	}
	subPS, _ := core.TrainFromTexts(core.Config{TopT: 100, Subsample: 2}, map[string][][]byte{
		"en": {[]byte("enough text for a tiny profile here")},
	})
	subC, _ := core.New(subPS, core.BackendBloom)
	if _, err := New(subC); err == nil {
		t.Error("New accepted a subsampling classifier")
	}
}

// The RTL ground truth: pipeline counters equal the functional
// classifier's match counts for every document.
func TestPipelineMatchesFunctional(t *testing.T) {
	c, corp := testClassifier(t)
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, lang := range corp.Languages {
		for _, d := range corp.Test[lang][:3] {
			counters, _ := p.RunDocument(d.Text)
			want := c.Classify(d.Text)
			for l := range want.Counts {
				if counters[l] != want.Counts[l] {
					t.Fatalf("%s doc %d lang %d: RTL %d != functional %d",
						lang, d.ID, l, counters[l], want.Counts[l])
				}
			}
		}
	}
}

// Latency model: a document of c characters takes ceil(c/2) input
// cycles plus Depth drain cycles.
func TestPipelineCycleCount(t *testing.T) {
	c, corp := testClassifier(t)
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	doc := corp.Test["en"][0].Text
	_, cycles := p.RunDocument(doc)
	wantInput := (int64(len(doc)) + 1) / 2
	if cycles != wantInput+Depth {
		t.Errorf("cycles = %d, want %d input + %d drain", cycles, wantInput, Depth)
	}
}

func TestPipelineOddLengthDocument(t *testing.T) {
	c, _ := testClassifier(t)
	p, _ := New(c)
	doc := []byte("seven ch") // 8 bytes
	odd := []byte("seven chr")
	countersEven, _ := p.RunDocument(doc)
	wantEven := c.Classify(doc)
	for l := range wantEven.Counts {
		if countersEven[l] != wantEven.Counts[l] {
			t.Fatal("even-length mismatch")
		}
	}
	countersOdd, _ := p.RunDocument(odd)
	wantOdd := c.Classify(odd)
	for l := range wantOdd.Counts {
		if countersOdd[l] != wantOdd.Counts[l] {
			t.Fatal("odd-length mismatch")
		}
	}
}

func TestPipelineShortDocuments(t *testing.T) {
	c, _ := testClassifier(t)
	p, _ := New(c)
	for _, doc := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		counters, _ := p.RunDocument([]byte(doc))
		want := c.Classify([]byte(doc))
		for l := range want.Counts {
			if counters[l] != want.Counts[l] {
				t.Errorf("%q: RTL %v != functional %v", doc, counters, want.Counts)
			}
		}
	}
}

func TestPipelineResetBetweenDocuments(t *testing.T) {
	c, corp := testClassifier(t)
	p, _ := New(c)
	docA := corp.Test["fi"][0].Text
	docB := corp.Test["es"][0].Text
	p.RunDocument(docA)
	counters, _ := p.RunDocument(docB) // RunDocument resets internally
	want := c.Classify(docB)
	for l := range want.Counts {
		if counters[l] != want.Counts[l] {
			t.Fatal("state leaked between documents")
		}
	}
}

func TestPipelineIncrementalClocking(t *testing.T) {
	// Drive the pipeline manually one character per cycle (half rate):
	// results must still match, and cycles double.
	c, corp := testClassifier(t)
	p, _ := New(c)
	doc := corp.Test["es"][0].Text[:200]
	p.Reset()
	codes := alphabet.TranslateAll(doc)
	for _, code := range codes {
		p.Clock(code, 0, 1)
	}
	p.Drain()
	want := c.Classify(doc)
	got := p.Counters()
	for l := range want.Counts {
		if got[l] != want.Counts[l] {
			t.Fatal("half-rate clocking changed results")
		}
	}
	if p.Cycles() != int64(len(codes))+Depth {
		t.Errorf("cycles = %d, want %d", p.Cycles(), int64(len(codes))+Depth)
	}
}

func TestPipelineInvalidInputCount(t *testing.T) {
	c, _ := testClassifier(t)
	p, _ := New(c)
	defer func() {
		if recover() == nil {
			t.Error("Clock with nValid=3 did not panic")
		}
	}()
	p.Clock(0, 0, 3)
}

// The dual-port constraint holds by construction: two n-grams per cycle
// issue exactly two reads to each (language, hash) RAM. A third read
// would panic inside Clock; streaming a long document proves the
// schedule never violates it.
func TestPipelineRAMPortDiscipline(t *testing.T) {
	c, corp := testClassifier(t)
	p, _ := New(c)
	long := corp.Test["en"][0].Text
	p.RunDocument(long) // panics on violation
}

func BenchmarkPipelineRTL(b *testing.B) {
	c, corp := testClassifier(b)
	p, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	doc := corp.Test["en"][0].Text
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RunDocument(doc)
	}
}
