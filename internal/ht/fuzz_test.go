package ht

import (
	"bytes"
	"testing"
)

// FuzzChecksum checks the §4 XOR checksum invariants on arbitrary data:
// deterministic, word-order sensitive, and corruption visible.
func FuzzChecksum(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 64), uint8(17))
	f.Fuzz(func(t *testing.T, data []byte, flipAt uint8) {
		a := Checksum(data)
		if b := Checksum(data); a != b {
			t.Fatal("checksum not deterministic")
		}
		if len(data) == 0 {
			if a != 0 {
				t.Fatal("empty checksum nonzero")
			}
			return
		}
		// Flipping any single bit must change the checksum: XOR of
		// words means every input bit maps to exactly one checksum bit.
		i := int(flipAt) % len(data)
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x01
		if Checksum(mutated) == a {
			t.Fatalf("bit flip at %d invisible to checksum", i)
		}
	})
}
