package ht

import (
	"encoding/binary"
	"fmt"
)

// The host controls the classifier through commands written to mapped
// registers, while document data arrives via DMA. "Since we use the
// register interface to send commands to the classifier module and DMA
// to transfer document data, they appear asynchronously (and
// potentially out of order) in the hardware" (§4). The Size command
// sent before each document tells the hardware how many 64-bit words to
// expect, and subsequent commands are processed only once all expected
// words have arrived.

// CommandType enumerates the control commands of §4.
type CommandType uint8

const (
	// CmdReset clears the classifier state machine and bit-vectors.
	CmdReset CommandType = iota
	// CmdSize announces the number of 64-bit words of the next document.
	CmdSize
	// CmdEndOfDocument delimits a document; match counters are folded
	// through the adder tree when it is processed.
	CmdEndOfDocument
	// CmdQueryResult asks the hardware to DMA the match counters, the
	// XOR data checksum and status bits back to the host.
	CmdQueryResult
	// CmdProgram programs one n-gram into one language's Bloom filter
	// during the preprocessing step.
	CmdProgram
	// CmdSelectLanguage selects the language index targeted by
	// subsequent CmdProgram commands.
	CmdSelectLanguage
)

// String names the command for diagnostics.
func (t CommandType) String() string {
	switch t {
	case CmdReset:
		return "Reset"
	case CmdSize:
		return "Size"
	case CmdEndOfDocument:
		return "EndOfDocument"
	case CmdQueryResult:
		return "QueryResult"
	case CmdProgram:
		return "Program"
	case CmdSelectLanguage:
		return "SelectLanguage"
	}
	return fmt.Sprintf("Command(%d)", uint8(t))
}

// Command is one register write: a type and a 56-bit argument (the
// paper's commands fit a single 64-bit register word).
type Command struct {
	Type CommandType
	Arg  uint64
}

// Checksum computes the XOR data checksum the hardware returns with
// each Query Result to verify a valid document transfer (§4): the XOR
// of all 64-bit little-endian words, with a short final word
// zero-padded.
func Checksum(data []byte) uint64 {
	var sum uint64
	for len(data) >= WordBytes {
		sum ^= binary.LittleEndian.Uint64(data)
		data = data[WordBytes:]
	}
	if len(data) > 0 {
		var last [WordBytes]byte
		copy(last[:], data)
		sum ^= binary.LittleEndian.Uint64(last[:])
	}
	return sum
}

// Watchdog models the hardware watchdog timer that resets the state
// machine if a transfer stalls (§4: "We provide a watchdog timer to
// reset the state machine in case of an error").
type Watchdog struct {
	timeout  Time
	deadline Time
	armed    bool
	// Trips counts how many times the watchdog fired.
	Trips int
}

// NewWatchdog returns a watchdog with the given timeout. A zero or
// negative timeout disables it.
func NewWatchdog(timeout Time) *Watchdog {
	return &Watchdog{timeout: timeout}
}

// Arm starts (or restarts) the countdown at the given time. Arming a
// disabled watchdog is a no-op.
func (w *Watchdog) Arm(now Time) {
	if w.timeout <= 0 {
		return
	}
	w.armed = true
	w.deadline = now + w.timeout
}

// Disarm stops the countdown (expected words all arrived).
func (w *Watchdog) Disarm() { w.armed = false }

// Check reports whether the watchdog has expired at the given time, and
// if so records the trip and disarms.
func (w *Watchdog) Check(now Time) bool {
	if !w.armed || now < w.deadline {
		return false
	}
	w.armed = false
	w.Trips++
	return true
}

// Armed reports whether the countdown is running.
func (w *Watchdog) Armed() bool { return w.armed }
