package ht

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if (500 * Millisecond).Seconds() != 0.5 {
		t.Errorf("500ms = %v s", (500 * Millisecond).Seconds())
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		2 * Second:      "2.000s",
		3 * Millisecond: "3.000ms",
		7 * Microsecond: "7.000us",
		12 * Picosecond: "12ps",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		bytes, words int64
	}{
		{0, 0}, {1, 1}, {7, 1}, {8, 1}, {9, 2}, {16, 2}, {10240, 1280},
	}
	for _, c := range cases {
		if got := Words(c.bytes); got != c.words {
			t.Errorf("Words(%d) = %d, want %d", c.bytes, got, c.words)
		}
	}
}

func TestXD1000Config(t *testing.T) {
	cfg := XD1000Config()
	if cfg.PeakBytesPerSec != 1.6e9 {
		t.Errorf("peak = %v, want 1.6e9 (§4)", cfg.PeakBytesPerSec)
	}
	if cfg.PracticalBytesPerSec != 500e6 {
		t.Errorf("practical = %v, want 500e6 (§5.4)", cfg.PracticalBytesPerSec)
	}
	if cfg.EffectiveBandwidth() != 500e6 {
		t.Errorf("effective = %v, want the practical cap", cfg.EffectiveBandwidth())
	}
}

func TestImprovedConfigRemovesCap(t *testing.T) {
	cfg := ImprovedConfig()
	if cfg.EffectiveBandwidth() != 1.6e9 {
		t.Errorf("improved effective = %v, want full 1.6 GB/s", cfg.EffectiveBandwidth())
	}
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewLink(LinkConfig{PeakBytesPerSec: 1e9, PracticalBytesPerSec: -1}); err == nil {
		t.Error("negative practical bandwidth accepted")
	}
}

func TestDMATransferTiming(t *testing.T) {
	cfg := XD1000Config()
	cfg.DMASetupLatency = 0
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 500 MB at 500 MB/s = 1 simulated second.
	end := l.DMADown(0, 500_000_000)
	if s := end.Seconds(); s < 0.99 || s > 1.01 {
		t.Errorf("500MB transfer took %.3fs, want about 1s", s)
	}
}

func TestDMASerializesPerDirection(t *testing.T) {
	l, _ := NewLink(XD1000Config())
	end1 := l.DMADown(0, 1_000_000)
	end2 := l.DMADown(0, 1_000_000) // queued behind the first
	if end2 <= end1 {
		t.Errorf("second transfer finished at %v, not after first at %v", end2, end1)
	}
	// The uplink is independent: a result DMA starting at 0 should not
	// wait for downlink traffic.
	upEnd := l.DMAUp(0, 64)
	if upEnd >= end1 {
		t.Errorf("uplink transfer blocked behind downlink: %v >= %v", upEnd, end1)
	}
}

func TestDMAPadsToWords(t *testing.T) {
	cfg := XD1000Config()
	cfg.DMASetupLatency = 0
	l, _ := NewLink(cfg)
	// 1 byte still moves one 8-byte word.
	end1 := l.DMADown(0, 1)
	l.Reset()
	end8 := l.DMADown(0, 8)
	if end1 != end8 {
		t.Errorf("1-byte transfer (%v) != 8-byte transfer (%v)", end1, end8)
	}
}

func TestPIOWriteSharesDownlink(t *testing.T) {
	l, _ := NewLink(XD1000Config())
	dmaEnd := l.DMADown(0, 1_000_000)
	pioEnd := l.PIOWrite(0)
	if pioEnd <= dmaEnd {
		t.Errorf("PIO write at %v did not serialize behind DMA ending %v", pioEnd, dmaEnd)
	}
}

func TestInterrupt(t *testing.T) {
	l, _ := NewLink(XD1000Config())
	want := 100*Microsecond + XD1000Config().InterruptLatency
	if got := l.Interrupt(100 * Microsecond); got != want {
		t.Errorf("interrupt resume = %v, want %v", got, want)
	}
}

func TestLinkStatsAndReset(t *testing.T) {
	l, _ := NewLink(XD1000Config())
	l.DMADown(0, 100)
	l.DMAUp(0, 50)
	l.PIOWrite(0)
	down, up, pio := l.Stats()
	if down != 100 || up != 50 || pio != 1 {
		t.Errorf("stats = %d,%d,%d want 100,50,1", down, up, pio)
	}
	l.Reset()
	down, up, pio = l.Stats()
	if down != 0 || up != 0 || pio != 0 {
		t.Error("Reset did not clear stats")
	}
	if l.DMADown(0, 8) != l.Config().DMASetupLatency+l.duration(8) {
		t.Error("Reset did not clear channel state")
	}
}

func TestCommandString(t *testing.T) {
	names := map[CommandType]string{
		CmdReset:          "Reset",
		CmdSize:           "Size",
		CmdEndOfDocument:  "EndOfDocument",
		CmdQueryResult:    "QueryResult",
		CmdProgram:        "Program",
		CmdSelectLanguage: "SelectLanguage",
	}
	for cmd, want := range names {
		if got := cmd.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cmd, got, want)
		}
	}
	if !strings.Contains(CommandType(99).String(), "99") {
		t.Error("unknown command String not diagnostic")
	}
}

func TestChecksumBasics(t *testing.T) {
	if Checksum(nil) != 0 {
		t.Error("checksum of empty data not zero")
	}
	// One full word XORed with itself twice returns to zero.
	w := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	double := append(append([]byte{}, w...), w...)
	if Checksum(double) != 0 {
		t.Error("checksum of doubled word not zero")
	}
	if Checksum(w) == 0 {
		t.Error("checksum of nonzero word is zero")
	}
}

func TestChecksumPadding(t *testing.T) {
	// A short tail is zero-padded: "ab" == "ab\x00..." as one word.
	a := Checksum([]byte("ab"))
	b := Checksum([]byte{'a', 'b', 0, 0, 0, 0, 0, 0})
	if a != b {
		t.Errorf("padded checksum mismatch: %#x vs %#x", a, b)
	}
}

// Checksum is XOR-linear over concatenation of whole words.
func TestChecksumConcatProperty(t *testing.T) {
	prop := func(a, b []byte) bool {
		// Pad a to a word boundary so concatenation preserves word
		// alignment of b.
		for len(a)%WordBytes != 0 {
			a = append(a, 0)
		}
		return Checksum(append(append([]byte{}, a...), b...)) == (Checksum(a) ^ Checksum(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	orig := Checksum(data)
	data[5] ^= 0x40
	if Checksum(data) == orig {
		t.Error("single-bit corruption not reflected in checksum")
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog(10 * Microsecond)
	if w.Armed() {
		t.Error("fresh watchdog armed")
	}
	w.Arm(0)
	if !w.Armed() {
		t.Error("watchdog not armed after Arm")
	}
	if w.Check(5 * Microsecond) {
		t.Error("watchdog fired early")
	}
	if !w.Check(10 * Microsecond) {
		t.Error("watchdog did not fire at deadline")
	}
	if w.Trips != 1 {
		t.Errorf("Trips = %d, want 1", w.Trips)
	}
	if w.Armed() {
		t.Error("watchdog still armed after firing")
	}
	// Re-arm pushes the deadline.
	w.Arm(20 * Microsecond)
	w.Arm(25 * Microsecond)
	if w.Check(31 * Microsecond) {
		t.Error("re-arm did not extend deadline")
	}
	if !w.Check(35 * Microsecond) {
		t.Error("extended deadline did not fire")
	}
}

func TestWatchdogDisarm(t *testing.T) {
	w := NewWatchdog(10 * Microsecond)
	w.Arm(0)
	w.Disarm()
	if w.Check(time100us()) {
		t.Error("disarmed watchdog fired")
	}
}

func time100us() Time { return 100 * Microsecond }

func TestWatchdogDisabled(t *testing.T) {
	w := NewWatchdog(0)
	w.Arm(0)
	if w.Armed() {
		t.Error("disabled watchdog armed")
	}
	if w.Check(Second) {
		t.Error("disabled watchdog fired")
	}
}
