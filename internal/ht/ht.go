// Package ht models the XtremeData XD1000 communication fabric the
// paper's system is built on (§4): the non-coherent HyperTransport link
// between the Opteron host and the Stratix II FPGA, the DMA engine used
// for bulk transfer, and the memory-mapped control register (PIO)
// interface used for commands.
//
// The model is a deterministic timed simulation: every operation
// returns the simulated time at which it completes, with bandwidth and
// latency parameters matching the paper's measured platform — 1.6 GB/s
// peak per direction, but "the revision of the XtremeData machine we
// used achieves only a maximum of 500 MB/sec" (§5.4).
package ht

import "fmt"

// Time is simulated time in picoseconds. Picosecond resolution keeps
// clock-cycle arithmetic (a 194 MHz cycle is 5,155 ps) exact enough
// that per-document rounding never accumulates visible error.
type Time int64

// Time unit constants.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts simulated time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time for diagnostics.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// WordBytes is the DMA transfer granularity: the DMA controller reads
// 64-bit words from host DDR memory (§4).
const WordBytes = 8

// Words returns the number of 64-bit words needed to carry n bytes,
// including the final partial word.
func Words(n int64) int64 {
	return (n + WordBytes - 1) / WordBytes
}

// LinkConfig parameterizes the fabric model.
type LinkConfig struct {
	// PeakBytesPerSec is the HyperTransport design bandwidth per
	// direction (1.6 GB/s on the XD1000).
	PeakBytesPerSec float64
	// PracticalBytesPerSec caps the achievable DMA bandwidth; the
	// paper's machine revision reached only 500 MB/s. Zero means no cap
	// beyond peak (the "as the communication infrastructure improves"
	// projection of §5.4/§5.5).
	PracticalBytesPerSec float64
	// PIOWriteLatency is the cost of one control-register write from
	// software, which crosses the link uncached and unbatched.
	PIOWriteLatency Time
	// DMASetupLatency is the per-descriptor cost of programming the DMA
	// controller through the register interface.
	DMASetupLatency Time
	// InterruptLatency is the host-side cost of taking a hardware
	// interrupt and rescheduling the waiting thread — the
	// synchronization cost the paper's first software version paid per
	// document (§5.4).
	InterruptLatency Time
}

// XD1000Config returns the paper's measured platform parameters.
func XD1000Config() LinkConfig {
	return LinkConfig{
		PeakBytesPerSec:      1.6e9,
		PracticalBytesPerSec: 500e6,
		// PIO writes over non-coherent HT cost on the order of a
		// microsecond and a half; calibrated so that programming
		// 10 profiles of 5,000 n-grams costs ~0.25s, the gap between
		// the paper's 470 and 378 MB/s figures (§5.4).
		PIOWriteLatency: 1600 * Nanosecond,
		DMASetupLatency: 800 * Nanosecond,
		// Interrupt delivery plus waking the blocked thread on the
		// 2.2 GHz dual-core Opteron; calibrated so the synchronous
		// driver lands at the paper's 228 MB/s against the
		// asynchronous 470 MB/s (Figure 4).
		InterruptLatency: 8800 * Nanosecond,
	}
}

// ImprovedConfig returns the projected platform of §5.5 ("once the
// HyperTransport communication infrastructure is improved"): the
// practical cap removed, only the 1.6 GB/s design bandwidth remains.
func ImprovedConfig() LinkConfig {
	cfg := XD1000Config()
	cfg.PracticalBytesPerSec = 0
	return cfg
}

func (c LinkConfig) validate() error {
	if c.PeakBytesPerSec <= 0 {
		return fmt.Errorf("ht: peak bandwidth %v must be positive", c.PeakBytesPerSec)
	}
	if c.PracticalBytesPerSec < 0 {
		return fmt.Errorf("ht: practical bandwidth %v must be non-negative", c.PracticalBytesPerSec)
	}
	return nil
}

// EffectiveBandwidth returns the usable DMA bandwidth in bytes/sec.
func (c LinkConfig) EffectiveBandwidth() float64 {
	if c.PracticalBytesPerSec > 0 && c.PracticalBytesPerSec < c.PeakBytesPerSec {
		return c.PracticalBytesPerSec
	}
	return c.PeakBytesPerSec
}

// linkState tracks when each link direction becomes free.
type linkState struct {
	downFree Time // host -> FPGA
	upFree   Time // FPGA -> host
}

// TimedLink is the stateful link simulator. Each direction is an
// independent channel that serializes its transfers.
type TimedLink struct {
	cfg   LinkConfig
	state linkState
	// Counters for reports.
	downBytes, upBytes int64
	pioWrites          int64
}

// NewLink builds a timed link; it returns an error for nonsensical
// configurations.
func NewLink(cfg LinkConfig) (*TimedLink, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &TimedLink{cfg: cfg}, nil
}

// Config returns the link's configuration.
func (l *TimedLink) Config() LinkConfig { return l.cfg }

// duration returns the wire time for n bytes at the effective bandwidth.
func (l *TimedLink) duration(n int64) Time {
	bw := l.cfg.EffectiveBandwidth()
	return Time(float64(n) / bw * float64(Second))
}

// DMADown schedules a host-to-FPGA DMA of n bytes that is ready to
// start at now. It returns the completion time. Transfers on the same
// direction serialize; the per-descriptor setup cost is paid before the
// wire time.
func (l *TimedLink) DMADown(now Time, n int64) Time {
	start := maxTime(now, l.state.downFree)
	end := start + l.cfg.DMASetupLatency + l.duration(Words(n)*WordBytes)
	l.state.downFree = end
	l.downBytes += n
	return end
}

// DMAUp schedules an FPGA-to-host DMA (e.g. a Query Result block).
func (l *TimedLink) DMAUp(now Time, n int64) Time {
	start := maxTime(now, l.state.upFree)
	end := start + l.cfg.DMASetupLatency + l.duration(Words(n)*WordBytes)
	l.state.upFree = end
	l.upBytes += n
	return end
}

// PIOWrite performs one control-register write; it shares the downlink
// and serializes with DMA traffic.
func (l *TimedLink) PIOWrite(now Time) Time {
	start := maxTime(now, l.state.downFree)
	end := start + l.cfg.PIOWriteLatency
	l.state.downFree = end
	l.pioWrites++
	return end
}

// Interrupt returns the time at which the host resumes after a hardware
// interrupt raised at now.
func (l *TimedLink) Interrupt(now Time) Time {
	return now + l.cfg.InterruptLatency
}

// Stats reports cumulative traffic for verification.
func (l *TimedLink) Stats() (downBytes, upBytes, pioWrites int64) {
	return l.downBytes, l.upBytes, l.pioWrites
}

// Reset clears the link state and counters.
func (l *TimedLink) Reset() {
	l.state = linkState{}
	l.downBytes, l.upBytes, l.pioWrites = 0, 0, 0
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
