// Package fpga models the Altera Stratix II EP2S180 FPGA that hosts the
// classifier on the XtremeData XD1000 (§4) and provides the resource and
// clock-frequency estimates behind the paper's Tables 2 and 3.
//
// The embedded-RAM arithmetic is exact: an (m,k) Parallel Bloom Filter
// bit-vector occupies m/4Kbit M4K blocks, a language needs k vectors,
// and a classifier accepting 8 n-grams per clock replicates the
// multiple-language classifier four times (dual-ported RAMs test two
// n-grams each, §3.2–3.3), so
//
//	M4K(module) = copies × languages × k × m/4Kbit
//
// which reproduces every M4K cell in Table 2 and both classifier M4K
// counts in Table 3. Logic, register and frequency numbers come from
// Quartus II synthesis in the paper; here they are a calibrated analytic
// model: exact lookup at the paper's published points, linear
// interpolation elsewhere (see model.go). DESIGN.md documents this
// substitution.
package fpga

import "fmt"

// Device describes an FPGA's relevant resource inventory.
type Device struct {
	// Name is the device part, e.g. "EP2S180".
	Name string
	// ALUTs is the adaptive lookup table count ("Logic Utilization"
	// unit of Tables 2–3).
	ALUTs int
	// Registers is the flip-flop count.
	Registers int
	// M512s, M4Ks, MRAMs are the embedded memory block counts.
	M512s, M4Ks, MRAMs int
	// M4KBits is the usable capacity of one M4K block in bits (the
	// paper uses the 4 Kbit data capacity).
	M4KBits uint32
}

// EP2S180 returns the paper's target device: the Altera Stratix II
// EP2S180F1508-C3 with 768 4-Kbit embedded RAMs (§5).
func EP2S180() Device {
	return Device{
		Name:      "EP2S180",
		ALUTs:     143520,
		Registers: 143520,
		M512s:     930,
		M4Ks:      768,
		MRAMs:     9,
		M4KBits:   4096,
	}
}

// ModuleConfig describes one n-gram classifier module instance — the
// unit Table 2 characterizes (two languages accepting eight n-grams per
// clock, i.e. four copies of the dual-ported multiple-language
// classifier).
type ModuleConfig struct {
	// K is the number of hash functions per Bloom filter.
	K int
	// MBits is each bit-vector's length in bits.
	MBits uint32
	// Languages is the number of language profiles in the module.
	Languages int
	// Copies is the number of replicated classifiers; each copy tests
	// two n-grams per clock, so n-grams/clock = 2×Copies.
	Copies int
}

// Table2Config returns the module shape Table 2 measures: two languages,
// four copies (8 n-grams/clock).
func Table2Config(k int, mBits uint32) ModuleConfig {
	return ModuleConfig{K: k, MBits: mBits, Languages: 2, Copies: 4}
}

func (c ModuleConfig) validate(dev Device) error {
	if c.K < 1 {
		return fmt.Errorf("fpga: k=%d must be positive", c.K)
	}
	if c.MBits == 0 || c.MBits&(c.MBits-1) != 0 {
		return fmt.Errorf("fpga: m=%d bits is not a power of two", c.MBits)
	}
	if c.MBits < dev.M4KBits {
		return fmt.Errorf("fpga: m=%d bits smaller than one M4K (%d bits)", c.MBits, dev.M4KBits)
	}
	if c.Languages < 1 {
		return fmt.Errorf("fpga: languages=%d must be positive", c.Languages)
	}
	if c.Copies < 1 {
		return fmt.Errorf("fpga: copies=%d must be positive", c.Copies)
	}
	return nil
}

// NGramsPerClock returns the module's input rate: two n-grams per copy
// per clock thanks to dual-ported embedded RAMs.
func (c ModuleConfig) NGramsPerClock() int { return 2 * c.Copies }

// RAMsPerVector returns the number of M4K blocks backing one bit-vector.
func (c ModuleConfig) RAMsPerVector(dev Device) int {
	return int(c.MBits / dev.M4KBits)
}

// M4Count returns the module's exact M4K block count.
func (c ModuleConfig) M4Count(dev Device) int {
	return c.Copies * c.Languages * c.K * c.RAMsPerVector(dev)
}

// BitsPerLanguage returns the on-chip storage one language profile
// consumes across one classifier copy: k vectors of m bits. The paper's
// "most space-efficient configuration ... uses just 24 Kbits per
// language" is k=6 × 4 Kbit (§5.2).
func (c ModuleConfig) BitsPerLanguage() uint64 {
	return uint64(c.K) * uint64(c.MBits)
}
