package fpga

import (
	"fmt"
	"math"
)

// This file holds the calibrated synthesis model. The paper's logic,
// register and frequency numbers are Quartus II synthesis results; we
// cannot run synthesis, so the model anchors on every published point
// (Tables 2 and 3) and interpolates linearly between them:
//
//   - per-hash logic cost grows with the bit-vector address width w =
//     log2(m): each extra address bit adds rows to the H3 XOR tree;
//   - the module's fixed cost (alphabet conversion, counters, muxing)
//     shrinks slightly as w grows because narrower vectors need more
//     multiplexing per copy (observed in Table 2);
//   - clock frequency falls as more M4K blocks must be routed to
//     (§5.2: "with fewer embedded RAMs per bit-vector the routing of
//     the design is made easier, thereby increasing the clock
//     frequency").

// table2 holds the paper's published module synthesis points, keyed by
// (m in Kbits, k). Module shape: 2 languages, 8 n-grams/clock.
type synthPoint struct {
	logic, regs int
	freqMHz     float64
}

var table2 = map[[2]int]synthPoint{
	{16, 4}: {5480, 3849, 182},
	{16, 3}: {4441, 3340, 189},
	{16, 2}: {3547, 2780, 191},
	{8, 4}:  {4760, 3722, 194},
	{8, 3}:  {4072, 3229, 202},
	{8, 2}:  {3363, 2713, 202},
	{4, 6}:  {5458, 4471, 197},
	{4, 5}:  {4983, 4006, 198},
}

// Linear-model coefficients fitted to Table 2 (see DESIGN.md §1 for the
// calibration derivation).
const (
	// Logic: module = logicBase(w) + k*logicPerHash(w).
	logicPerHashAtW12  = 475.0 // ALUTs per hash function at w=12 (m=4Kbit)
	logicPerHashPerBit = 245.5 // additional ALUTs per hash per address bit
	logicBaseAtW12     = 2608.0
	logicBaseSlopeLow  = -643.0 // base delta per address bit, w in [12,13]
	logicBaseSlopeHigh = -375.0 // base delta per address bit, w >= 13
	regsPerHashAtW12   = 465.0
	regsPerHashPerBit  = 34.5
	regsBase           = 1700.0
	// Frequency: module fallback ≈ freqIntercept − freqPerM4K × M4K.
	freqIntercept = 206.0
	freqPerM4K    = 0.19
	freqFloor     = 120.0
	freqCeil      = 210.0
)

// addressBits returns w = log2(mBits).
func addressBits(mBits uint32) int {
	w := 0
	for 1<<w < int(mBits) {
		w++
	}
	return w
}

func logicPerHash(w int) float64 {
	return logicPerHashAtW12 + logicPerHashPerBit*float64(w-12)
}

func logicBase(w int) float64 {
	switch {
	case w <= 12:
		return logicBaseAtW12 - logicBaseSlopeLow*float64(12-w)
	case w == 13:
		return logicBaseAtW12 + logicBaseSlopeLow
	default:
		return logicBaseAtW12 + logicBaseSlopeLow + logicBaseSlopeHigh*float64(w-13)
	}
}

// ModuleReport is the estimated synthesis result for one classifier
// module.
type ModuleReport struct {
	// Logic is the ALUT count ("Logic Utilization" in Table 2).
	Logic int
	// Registers is the flip-flop count.
	Registers int
	// M4Ks is the exact embedded RAM block count.
	M4Ks int
	// FreqMHz is the post-place-and-route clock estimate.
	FreqMHz float64
	// Calibrated is true when the point comes straight from the paper's
	// published synthesis results rather than the interpolation model.
	Calibrated bool
}

// EstimateModule models the synthesis of one classifier module on the
// device.
func EstimateModule(cfg ModuleConfig, dev Device) (ModuleReport, error) {
	if err := cfg.validate(dev); err != nil {
		return ModuleReport{}, err
	}
	rep := ModuleReport{M4Ks: cfg.M4Count(dev)}
	mKbits := int(cfg.MBits / 1024)
	if p, ok := table2[[2]int{mKbits, cfg.K}]; ok && cfg.Languages == 2 && cfg.Copies == 4 {
		rep.Logic, rep.Registers, rep.FreqMHz = p.logic, p.regs, p.freqMHz
		rep.Calibrated = true
		return rep, nil
	}
	w := addressBits(cfg.MBits)
	// Scale the 2-language/4-copy fit to the requested shape: the
	// hash/vector datapath replicates per copy-language-hash; the base
	// replicates per copy pair of languages.
	perHash := logicPerHash(w) * float64(cfg.Copies) / 4 * float64(cfg.Languages) / 2
	base := logicBase(w) * float64(cfg.Copies) / 4
	rep.Logic = int(math.Round(base + float64(cfg.K)*perHash))
	perHashRegs := (regsPerHashAtW12 + regsPerHashPerBit*float64(w-12)) * float64(cfg.Copies) / 4 * float64(cfg.Languages) / 2
	rep.Registers = int(math.Round(regsBase*float64(cfg.Copies)/4 + float64(cfg.K)*perHashRegs))
	rep.FreqMHz = clampFreq(freqIntercept - freqPerM4K*float64(rep.M4Ks))
	return rep, nil
}

func clampFreq(f float64) float64 {
	if f < freqFloor {
		return freqFloor
	}
	if f > freqCeil {
		return freqCeil
	}
	return f
}

// System-level calibration (Table 3). Solving the two published device
// builds for a shared-per-module cost and a fixed infrastructure cost
// gives (derivation in DESIGN.md):
const (
	sysInfraLogic      = 15210.0 // HT core, DMA, command logic, adder trees
	sysModuleShared    = 744.0   // per-module cost not replicated per language
	sysInfraRegs       = 12287.0
	sysModuleSharedReg = 729.0
)

// infraM4K models the infrastructure's embedded-RAM use (FIFOs grow
// with language count): 40 blocks at 10 languages, 48 at 30 (Table 3).
func infraM4K(languages int) int {
	return int(math.Round(36 + 0.4*float64(languages)))
}

// infraM512 models M512 use: 36 at 10 languages, 66 at 30 (Table 3).
func infraM512(languages int) int {
	return int(math.Round(21 + 1.5*float64(languages)))
}

// infraMRAM models M-RAM use, which the paper's builds traded against
// language count: 9 at 10 languages, 6 at 30.
func infraMRAM(languages int) int {
	v := int(math.Round(10.5 - 0.15*float64(languages)))
	if v < 0 {
		v = 0
	}
	return v
}

// SystemReport is the estimated full-device build (classifier plus the
// ~10% infrastructure: HyperTransport core, DMA controller, command
// control logic — §5.3).
type SystemReport struct {
	Logic      int
	Registers  int
	M512s      int
	M4Ks       int
	MRAMs      int
	FreqMHz    float64
	Calibrated bool
	// Fits reports whether the build fits the device.
	Fits bool
	// LogicUtilization is Logic divided by the device's ALUT count.
	LogicUtilization float64
	// NGramsPerClock is the datapath input rate.
	NGramsPerClock int
}

// table3 holds the two published device builds keyed by
// (m in Kbits, k, languages).
var table3 = map[[3]int]struct {
	logic, regs, m512, m4k, mram int
	freqMHz                      float64
}{
	{16, 4, 10}: {38891, 27889, 36, 680, 9, 194},
	{4, 6, 30}:  {85924, 68423, 66, 768, 6, 170},
}

// EstimateSystem models a full-device classifier build with the given
// per-language filter shape, language count and copies.
func EstimateSystem(cfg ModuleConfig, dev Device) (SystemReport, error) {
	if err := cfg.validate(dev); err != nil {
		return SystemReport{}, err
	}
	rep := SystemReport{NGramsPerClock: cfg.NGramsPerClock()}
	mKbits := int(cfg.MBits / 1024)
	if p, ok := table3[[3]int{mKbits, cfg.K, cfg.Languages}]; ok && cfg.Copies == 4 {
		rep.Logic, rep.Registers = p.logic, p.regs
		rep.M512s, rep.M4Ks, rep.MRAMs = p.m512, p.m4k, p.mram
		rep.FreqMHz = p.freqMHz
		rep.Calibrated = true
	} else {
		mod, err := EstimateModule(ModuleConfig{K: cfg.K, MBits: cfg.MBits, Languages: 2, Copies: 4}, dev)
		if err != nil {
			return SystemReport{}, err
		}
		perLangLogic := (float64(mod.Logic) - sysModuleShared) / 2
		perLangRegs := (float64(mod.Registers) - sysModuleSharedReg) / 2
		scale := float64(cfg.Copies) / 4
		rep.Logic = int(math.Round(sysInfraLogic + scale*perLangLogic*float64(cfg.Languages)))
		rep.Registers = int(math.Round(sysInfraRegs + scale*perLangRegs*float64(cfg.Languages)))
		rep.M4Ks = cfg.M4Count(dev) + infraM4K(cfg.Languages)
		rep.M512s = infraM512(cfg.Languages)
		rep.MRAMs = infraMRAM(cfg.Languages)
		// Device frequency anchored on the two Table 3 builds:
		// 680 M4K -> 194 MHz, 768 M4K -> 170 MHz.
		rep.FreqMHz = clampFreq(194 + (680-float64(rep.M4Ks))*0.2727)
	}
	rep.LogicUtilization = float64(rep.Logic) / float64(dev.ALUTs)
	rep.Fits = rep.Logic <= dev.ALUTs &&
		rep.Registers <= dev.Registers &&
		rep.M512s <= dev.M512s &&
		rep.M4Ks <= dev.M4Ks &&
		rep.MRAMs <= dev.MRAMs
	return rep, nil
}

// MaxLanguagesIdeal returns the language count supportable if every M4K
// block could hold bit-vectors (no infrastructure) — the arithmetic
// behind §5.2's "supports only twelve languages" for k=4, m=16 Kbit.
func MaxLanguagesIdeal(k int, mBits uint32, copies int, dev Device) int {
	perLang := copies * k * int(mBits/dev.M4KBits)
	if perLang <= 0 {
		return 0
	}
	return dev.M4Ks / perLang
}

// MaxLanguages returns the language count supportable after reserving
// infrastructure M4K blocks, found by fixpoint iteration — the
// arithmetic behind the final 30-language build (§5.2, Table 3).
func MaxLanguages(k int, mBits uint32, copies int, dev Device) int {
	perLang := copies * k * int(mBits/dev.M4KBits)
	if perLang <= 0 {
		return 0
	}
	p := dev.M4Ks / perLang
	for i := 0; i < 10; i++ {
		next := (dev.M4Ks - infraM4K(p)) / perLang
		if next < 0 {
			next = 0
		}
		if next == p {
			break
		}
		p = next
	}
	return p
}

// PeakThroughputMBps returns the theoretical classification rate in
// MB/sec (2^20): each n-gram consumes one input byte, so peak =
// frequency × n-grams/clock (§5.4: 194 MHz × 8 = 1,552 million
// n-grams/sec ≈ 1.4 GB/sec).
func PeakThroughputMBps(freqMHz float64, ngramsPerClock int) float64 {
	return freqMHz * 1e6 * float64(ngramsPerClock) / (1 << 20)
}

// FormatMHz renders a frequency for reports.
func FormatMHz(f float64) string { return fmt.Sprintf("%.0f MHz", f) }
