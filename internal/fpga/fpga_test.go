package fpga

import (
	"math"
	"testing"
)

func TestEP2S180Inventory(t *testing.T) {
	dev := EP2S180()
	if dev.M4Ks != 768 {
		t.Errorf("M4Ks = %d, want 768 (the paper's '768 4 Kbit embedded RAMs')", dev.M4Ks)
	}
	if dev.M4KBits != 4096 {
		t.Errorf("M4KBits = %d, want 4096", dev.M4KBits)
	}
	if dev.MRAMs != 9 {
		t.Errorf("MRAMs = %d, want 9", dev.MRAMs)
	}
}

// Table 2's M4K column is pure arithmetic and must be exact.
func TestTable2M4KCountsExact(t *testing.T) {
	dev := EP2S180()
	cases := []struct {
		mKbits, k, want int
	}{
		{16, 4, 128},
		{16, 3, 96},
		{16, 2, 64},
		{8, 4, 64},
		{8, 3, 48},
		{8, 2, 32},
		{4, 6, 48},
		{4, 5, 40},
	}
	for _, c := range cases {
		cfg := Table2Config(c.k, uint32(c.mKbits)*1024)
		if got := cfg.M4Count(dev); got != c.want {
			t.Errorf("m=%dKbit k=%d: M4K = %d, want %d", c.mKbits, c.k, got, c.want)
		}
	}
}

// The full Table 2 rows come back verbatim for calibrated points.
func TestTable2Calibrated(t *testing.T) {
	dev := EP2S180()
	cases := []struct {
		mKbits, k, logic, regs, m4k int
		freq                        float64
	}{
		{16, 4, 5480, 3849, 128, 182},
		{16, 3, 4441, 3340, 96, 189},
		{16, 2, 3547, 2780, 64, 191},
		{8, 4, 4760, 3722, 64, 194},
		{8, 3, 4072, 3229, 48, 202},
		{8, 2, 3363, 2713, 32, 202},
		{4, 6, 5458, 4471, 48, 197},
		{4, 5, 4983, 4006, 40, 198},
	}
	for _, c := range cases {
		rep, err := EstimateModule(Table2Config(c.k, uint32(c.mKbits)*1024), dev)
		if err != nil {
			t.Fatalf("m=%d k=%d: %v", c.mKbits, c.k, err)
		}
		if !rep.Calibrated {
			t.Errorf("m=%d k=%d: not calibrated", c.mKbits, c.k)
		}
		if rep.Logic != c.logic || rep.Registers != c.regs || rep.M4Ks != c.m4k || rep.FreqMHz != c.freq {
			t.Errorf("m=%d k=%d: got (%d, %d, %d, %.0f), want (%d, %d, %d, %.0f)",
				c.mKbits, c.k, rep.Logic, rep.Registers, rep.M4Ks, rep.FreqMHz,
				c.logic, c.regs, c.m4k, c.freq)
		}
	}
}

// Off-table points must interpolate sensibly: within 15% of the nearest
// published value and monotone in k.
func TestModuleInterpolation(t *testing.T) {
	dev := EP2S180()
	// k=5 at m=16Kbit is not in Table 2; it must land above k=4's logic.
	rep5, err := EstimateModule(Table2Config(5, 16*1024), dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep5.Calibrated {
		t.Error("k=5 m=16Kbit should not be calibrated")
	}
	if rep5.Logic <= 5480 {
		t.Errorf("k=5 logic %d not above k=4's 5480", rep5.Logic)
	}
	if rep5.M4Ks != 160 {
		t.Errorf("k=5 m=16Kbit M4K = %d, want 160", rep5.M4Ks)
	}
	if rep5.FreqMHz >= 191 || rep5.FreqMHz < freqFloor {
		t.Errorf("k=5 freq %.0f not below the k=2 point", rep5.FreqMHz)
	}
	// The model evaluated at a calibrated shape should be within 15% of
	// the published number (checks the fit didn't drift).
	w := addressBits(16 * 1024)
	approx := logicBase(w) + 4*logicPerHash(w)
	if math.Abs(approx-5480)/5480 > 0.15 {
		t.Errorf("fitted model at (16,4) = %.0f, >15%% from 5480", approx)
	}
}

func TestModuleScalingWithCopies(t *testing.T) {
	dev := EP2S180()
	full, _ := EstimateModule(ModuleConfig{K: 4, MBits: 16 * 1024, Languages: 2, Copies: 4}, dev)
	half, err := EstimateModule(ModuleConfig{K: 4, MBits: 16 * 1024, Languages: 2, Copies: 2}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if half.M4Ks*2 != full.M4Ks {
		t.Errorf("halving copies: M4K %d, want %d", half.M4Ks, full.M4Ks/2)
	}
	if half.Logic >= full.Logic {
		t.Errorf("halving copies did not reduce logic (%d >= %d)", half.Logic, full.Logic)
	}
	if got := (ModuleConfig{K: 4, MBits: 16 * 1024, Languages: 2, Copies: 2}).NGramsPerClock(); got != 4 {
		t.Errorf("2 copies accept %d n-grams/clock, want 4", got)
	}
}

func TestModuleValidation(t *testing.T) {
	dev := EP2S180()
	bad := []ModuleConfig{
		{K: 0, MBits: 16 * 1024, Languages: 2, Copies: 4},
		{K: 4, MBits: 1000, Languages: 2, Copies: 4},
		{K: 4, MBits: 2048, Languages: 2, Copies: 4}, // below one M4K
		{K: 4, MBits: 16 * 1024, Languages: 0, Copies: 4},
		{K: 4, MBits: 16 * 1024, Languages: 2, Copies: 0},
	}
	for i, cfg := range bad {
		if _, err := EstimateModule(cfg, dev); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestBitsPerLanguage(t *testing.T) {
	// §5.2: the most space-efficient configuration uses just 24 Kbits
	// per language (k=6, m=4Kbit).
	cfg := Table2Config(6, 4*1024)
	if got := cfg.BitsPerLanguage(); got != 24*1024 {
		t.Errorf("BitsPerLanguage = %d, want 24Kbit", got)
	}
}

// Table 3's two published device builds come back verbatim.
func TestTable3Calibrated(t *testing.T) {
	dev := EP2S180()
	ten, err := EstimateSystem(ModuleConfig{K: 4, MBits: 16 * 1024, Languages: 10, Copies: 4}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !ten.Calibrated {
		t.Error("10-language build not calibrated")
	}
	if ten.Logic != 38891 || ten.Registers != 27889 || ten.M512s != 36 || ten.M4Ks != 680 || ten.MRAMs != 9 || ten.FreqMHz != 194 {
		t.Errorf("10-language build = %+v, want Table 3 row 1", ten)
	}
	if !ten.Fits {
		t.Error("10-language build reported as not fitting")
	}
	thirty, err := EstimateSystem(ModuleConfig{K: 6, MBits: 4 * 1024, Languages: 30, Copies: 4}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if thirty.Logic != 85924 || thirty.M4Ks != 768 || thirty.FreqMHz != 170 {
		t.Errorf("30-language build = %+v, want Table 3 row 2", thirty)
	}
	if !thirty.Fits {
		t.Error("30-language build reported as not fitting")
	}
	// §5.3: logic varies between a third and two-thirds of the total.
	if ten.LogicUtilization < 0.2 || ten.LogicUtilization > 0.4 {
		t.Errorf("10-language utilization %.2f outside about-a-third", ten.LogicUtilization)
	}
	if thirty.LogicUtilization < 0.5 || thirty.LogicUtilization > 0.7 {
		t.Errorf("30-language utilization %.2f outside about-two-thirds", thirty.LogicUtilization)
	}
}

func TestSystemInterpolatedBuild(t *testing.T) {
	dev := EP2S180()
	// 20 languages at k=4, m=8Kbit: not a published point.
	rep, err := EstimateSystem(ModuleConfig{K: 4, MBits: 8 * 1024, Languages: 20, Copies: 4}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calibrated {
		t.Error("unpublished build marked calibrated")
	}
	wantM4K := 4*20*4*2 + infraM4K(20)
	if rep.M4Ks != wantM4K {
		t.Errorf("M4K = %d, want %d", rep.M4Ks, wantM4K)
	}
	if !rep.Fits {
		t.Error("20-language 8Kbit build should fit the device")
	}
	if float64(rep.Logic) <= sysInfraLogic {
		t.Errorf("logic %d not above infrastructure floor", rep.Logic)
	}
}

func TestSystemOverflowDetected(t *testing.T) {
	dev := EP2S180()
	// 40 languages at k=4, m=16Kbit needs 2560 M4Ks: cannot fit.
	rep, err := EstimateSystem(ModuleConfig{K: 4, MBits: 16 * 1024, Languages: 40, Copies: 4}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fits {
		t.Error("40-language 16Kbit build reported as fitting 768 M4Ks")
	}
}

func TestMaxLanguages(t *testing.T) {
	dev := EP2S180()
	// §5.2: k=4, m=16Kbit supports "only twelve languages" by pure
	// M4K arithmetic.
	if got := MaxLanguagesIdeal(4, 16*1024, 4, dev); got != 12 {
		t.Errorf("ideal max languages (k=4, m=16Kbit) = %d, want 12", got)
	}
	// §5.2/Table 3: the final k=6, m=4Kbit implementation supports
	// thirty languages after infrastructure.
	if got := MaxLanguages(6, 4*1024, 4, dev); got != 30 {
		t.Errorf("max languages (k=6, m=4Kbit) = %d, want 30", got)
	}
	// Ideal for the space-efficient configuration is 32.
	if got := MaxLanguagesIdeal(6, 4*1024, 4, dev); got != 32 {
		t.Errorf("ideal max languages (k=6, m=4Kbit) = %d, want 32", got)
	}
	if got := MaxLanguages(0, 4*1024, 4, dev); got != 0 {
		t.Errorf("k=0 max languages = %d, want 0", got)
	}
}

func TestSubsamplingDoublesLanguages(t *testing.T) {
	// §5.2: sub-sampling every other n-gram halves the copies needed
	// for the same input rate, doubling supported languages.
	dev := EP2S180()
	full := MaxLanguagesIdeal(4, 16*1024, 4, dev)
	sub := MaxLanguagesIdeal(4, 16*1024, 2, dev)
	if sub != 2*full {
		t.Errorf("subsampled max %d, want %d (double of %d)", sub, 2*full, full)
	}
}

func TestPeakThroughput(t *testing.T) {
	// §5.4: 194 MHz × 8 n-grams/clock = 1,552 million n-grams/sec
	// ≈ 1.45 GB/s in MB (2^20) units.
	mbps := PeakThroughputMBps(194, 8)
	if mbps < 1450 || mbps < 1400 || mbps > 1500 {
		t.Errorf("peak throughput = %.0f MB/s, want about 1480", mbps)
	}
	gb := mbps / 1024
	if gb < 1.4 || gb > 1.5 {
		t.Errorf("peak = %.2f GB/s, want about 1.4-1.5", gb)
	}
}

func TestFrequencyMonotoneInM4K(t *testing.T) {
	dev := EP2S180()
	// More RAM blocks => harder routing => lower frequency (§5.2).
	prev := math.Inf(1)
	for _, k := range []int{2, 3, 4, 5, 6, 7, 8} {
		rep, err := EstimateModule(ModuleConfig{K: k, MBits: 32 * 1024, Languages: 2, Copies: 4}, dev)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreqMHz > prev {
			t.Errorf("k=%d: frequency %.0f rose as M4K count grew", k, rep.FreqMHz)
		}
		prev = rep.FreqMHz
	}
}

func TestFormatMHz(t *testing.T) {
	if got := FormatMHz(193.6); got != "194 MHz" {
		t.Errorf("FormatMHz = %q", got)
	}
}
