package core

import (
	"bytes"
	"io"
	"testing"
)

func TestStreamMatchesBatch(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := getMiniCorpus(t).Test["es"][0].Text
	want := c.Classify(doc)

	// Feed the same document in chunks of varying sizes.
	for _, chunk := range []int{1, 3, 7, 64, len(doc)} {
		s := c.NewStream()
		for off := 0; off < len(doc); off += chunk {
			end := off + chunk
			if end > len(doc) {
				end = len(doc)
			}
			n, err := s.Write(doc[off:end])
			if err != nil || n != end-off {
				t.Fatalf("Write = %d, %v", n, err)
			}
		}
		got := s.Result()
		if got.NGrams != want.NGrams {
			t.Fatalf("chunk %d: NGrams %d != batch %d", chunk, got.NGrams, want.NGrams)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("chunk %d: count %d differs", chunk, i)
			}
		}
		if got.Best != want.Best {
			t.Fatalf("chunk %d: winner differs", chunk)
		}
	}
}

func TestStreamImplementsWriter(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	c, _ := New(ps, BackendDirect)
	s := c.NewStream()
	var _ io.Writer = s
	doc := getMiniCorpus(t).Test["en"][0].Text
	if _, err := io.Copy(s, bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	if r.BestLanguage(c.Languages()) != "en" {
		t.Errorf("io.Copy path classified as %q", r.BestLanguage(c.Languages()))
	}
}

func TestStreamIntermediateResults(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, _ := New(ps, BackendBloom)
	doc := getMiniCorpus(t).Test["fi"][0].Text
	s := c.NewStream()
	s.Write(doc[:len(doc)/2])
	mid := s.Result()
	s.Write(doc[len(doc)/2:])
	full := s.Result()
	if mid.NGrams >= full.NGrams {
		t.Error("intermediate result saw as many n-grams as the full document")
	}
	if mid.NGrams == 0 {
		t.Error("no n-grams at midpoint")
	}
	// Counts only grow.
	for i := range mid.Counts {
		if full.Counts[i] < mid.Counts[i] {
			t.Error("counts decreased as the stream grew")
		}
	}
}

func TestStreamReset(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, _ := New(ps, BackendBloom)
	docA := getMiniCorpus(t).Test["en"][0].Text
	docB := getMiniCorpus(t).Test["pt"][0].Text
	s := c.NewStream()
	s.Write(docA)
	s.Reset()
	s.Write(docB)
	got := s.Result()
	want := c.Classify(docB)
	if got.NGrams != want.NGrams || got.Best != want.Best {
		t.Error("Reset leaked state from the previous document")
	}
}

func TestStreamEmpty(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	c, _ := New(ps, BackendDirect)
	s := c.NewStream()
	r := s.Result()
	if r.Best != -1 || r.NGrams != 0 {
		t.Errorf("empty stream result = %+v", r)
	}
}

func TestStreamSubsample(t *testing.T) {
	cfg := Config{TopT: 500, Subsample: 2}
	ps := trainMini(t, cfg)
	c, _ := New(ps, BackendDirect)
	doc := getMiniCorpus(t).Test["en"][0].Text
	s := c.NewStream()
	s.Write(doc)
	got := s.Result()
	want := c.Classify(doc)
	if got.NGrams != want.NGrams {
		t.Errorf("subsampled stream NGrams %d != batch %d", got.NGrams, want.NGrams)
	}
}

func BenchmarkStreamWrite(b *testing.B) {
	ps := trainMini(b, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		b.Fatal(err)
	}
	doc := getMiniCorpus(b).Test["en"][0].Text
	s := c.NewStream()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.Write(doc)
	}
}
