package core

import (
	"testing"
)

// FuzzDetectSpans is the differential guarantee for blocked-kernel
// segmentation: on any input the fuzzer invents, the blocked backend's
// spans must agree with the exact direct-table backend's wherever the
// decision is confident, and both must satisfy the structural
// invariants (spans tile the document, Unknown ⇔ empty language).
//
// Exact agreement everywhere would be too strong to fuzz: a Bloom
// backend may only err towards false positives, so on near-tied
// regions (adversarial byte soup where every language counts ~0) a
// single false positive can legitimately flip an arg-max. The
// comparison therefore skips positions where either backend's span is
// Unknown or carries a sub-0.1 mean margin — at the mini profiles'
// modelled false-positive rate (~10⁻⁵ per probe) false positives
// cannot bridge a 0.1-normalized-margin lead — and skips positions
// within one stride-plus-window of a boundary in either segmentation,
// since confirmed boundaries may land up to a stride apart.
func FuzzDetectSpans(f *testing.F) {
	ps := trainMini(f, Config{TopT: 800})
	direct, err := NewDetector(ps, WithBackend(BackendDirect))
	if err != nil {
		f.Fatal(err)
	}
	blocked, err := NewDetector(ps, WithBackend(BackendBlocked))
	if err != nil {
		f.Fatal(err)
	}
	cfg := SegmentConfig{Window: 64, Stride: 16, Hysteresis: 2}
	corp := getMiniCorpus(f)
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		f.Add(corp.Test[lang][0].Text)
	}
	mixed := append(append([]byte{}, corp.Test["en"][1].Text...), corp.Test["fi"][1].Text...)
	f.Add(mixed)
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff un documento tr\xe8s fran\xe7ais \x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := direct.DetectSpans(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := blocked.DetectSpans(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fuzzCheckSpanInvariants(t, "direct", ds, len(data))
		fuzzCheckSpanInvariants(t, "blocked", bs, len(data))
		// Boundaries may shift by up to a stride between backends;
		// compare labels only at positions a full window clear of every
		// boundary in either segmentation.
		guard := (cfg.Window + cfg.Stride) * 1 // bytes per gram = 1 at subsample 1
		for pos := 0; pos < len(data); pos += cfg.Stride {
			dSpan, ok1 := spanAt(ds, pos)
			bSpan, ok2 := spanAt(bs, pos)
			if !ok1 || !ok2 {
				t.Fatalf("position %d not covered by spans", pos)
			}
			if dSpan.Unknown || bSpan.Unknown || dSpan.Margin < 0.1 || bSpan.Margin < 0.1 {
				continue
			}
			if nearBoundary(ds, pos, guard, len(data)) || nearBoundary(bs, pos, guard, len(data)) {
				continue
			}
			if dSpan.Lang != bSpan.Lang {
				t.Fatalf("position %d: blocked span language %q (margin %.3f) disagrees with direct %q (margin %.3f)\nblocked: %+v\ndirect: %+v",
					pos, bSpan.Lang, bSpan.Margin, dSpan.Lang, dSpan.Margin, bs, ds)
			}
		}
	})
}

func fuzzCheckSpanInvariants(t *testing.T, name string, spans []Span, docLen int) {
	t.Helper()
	if docLen == 0 {
		if len(spans) != 0 {
			t.Fatalf("%s: empty document produced spans %+v", name, spans)
		}
		return
	}
	if len(spans) == 0 {
		t.Fatalf("%s: no spans for %d bytes", name, docLen)
	}
	if spans[0].Start != 0 || spans[len(spans)-1].End != docLen {
		t.Fatalf("%s: spans do not cover [0,%d): %+v", name, docLen, spans)
	}
	for i, sp := range spans {
		if sp.Start >= sp.End {
			t.Fatalf("%s: span %d empty or inverted: %+v", name, i, sp)
		}
		if i > 0 && sp.Start != spans[i-1].End {
			t.Fatalf("%s: span %d leaves a gap or overlap: %+v", name, i, spans)
		}
		if sp.Unknown != (sp.Lang == "") {
			t.Fatalf("%s: span %d Unknown=%v with Lang=%q", name, i, sp.Unknown, sp.Lang)
		}
	}
}

// spanAt returns the span covering byte position pos.
func spanAt(spans []Span, pos int) (Span, bool) {
	for _, sp := range spans {
		if pos >= sp.Start && pos < sp.End {
			return sp, true
		}
	}
	return Span{}, false
}

// nearBoundary reports whether pos lies within tol bytes of any
// interior span boundary (document edges do not count).
func nearBoundary(spans []Span, pos, tol, docLen int) bool {
	for _, sp := range spans {
		for _, edge := range [2]int{sp.Start, sp.End} {
			if edge == 0 || edge == docLen {
				continue
			}
			d := pos - edge
			if d < 0 {
				d = -d
			}
			if d < tol {
				return true
			}
		}
	}
	return false
}
