package core

import (
	"bloomlang/internal/alphabet"
	"bloomlang/internal/ngram"
)

// DocumentStream classifies one document incrementally with bounded
// memory: bytes arrive in arbitrary chunks (an io.Writer), n-grams are
// matched as they complete, and the running counters are available at
// any point. This is the software mirror of the hardware datapath,
// which consumes the DMA stream burst by burst and never buffers whole
// documents (§3.3: "an input word containing multiple translated
// characters is buffered and an n-gram is generated at each character
// position").
type DocumentStream struct {
	c      *Classifier
	e      *ngram.Extractor
	counts []int
	ngrams int
	codes  []alphabet.Code
	grams  []uint32
}

// NewStream starts an empty document stream on the classifier. The
// extractor is a value copy of the classifier's prototype, so streams
// are independent of each other and of the one-shot paths.
func (c *Classifier) NewStream() *DocumentStream {
	e := c.extractor
	return &DocumentStream{
		c:      c,
		e:      &e,
		counts: make([]int, len(c.matchers)),
	}
}

// Write feeds the next chunk of the document. It never fails; the
// error return satisfies io.Writer.
func (s *DocumentStream) Write(p []byte) (int, error) {
	if cap(s.codes) < len(p) {
		s.codes = make([]alphabet.Code, len(p))
	}
	codes := s.codes[:len(p)]
	alphabet.TranslateInto(codes, p)
	s.grams = s.e.Feed(s.grams[:0], codes)
	s.ngrams += len(s.grams)
	s.c.accumulateInto(s.counts, s.grams)
	return len(p), nil
}

// Result returns the classification of everything written so far. The
// stream remains usable; more chunks may follow.
func (s *DocumentStream) Result() Result {
	r := Result{
		Counts: append([]int(nil), s.counts...),
		NGrams: s.ngrams,
		Best:   -1,
		Second: -1,
	}
	r.selectWinners()
	return r
}

// Reset prepares the stream for a new document — the End-of-Document
// boundary.
func (s *DocumentStream) Reset() {
	s.e.Reset()
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.ngrams = 0
}
