package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"bloomlang/internal/corpus"
)

// TestWinnerSelectionEdgeCases pins the shared winner-selection rules
// on hand-built counters: exact ties, single-language sets, all-zero
// counts, and the empty document.
func TestWinnerSelectionEdgeCases(t *testing.T) {
	cases := []struct {
		name                 string
		counts               []int
		ngrams               int
		wantBest, wantSecond int
	}{
		{"clear winner", []int{3, 9, 1}, 10, 1, 0},
		{"exact tie breaks to lower index", []int{7, 7, 2}, 10, 0, 1},
		{"three-way tie", []int{4, 4, 4}, 10, 0, 1},
		{"tie for second", []int{9, 5, 5}, 10, 0, 1},
		{"single language", []int{6}, 10, 0, -1},
		{"all zero counts", []int{0, 0, 0}, 10, 0, 1},
		{"empty document", []int{0, 0, 0}, 0, -1, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Result{Counts: tc.counts, NGrams: tc.ngrams, Best: -1, Second: -1}
			r.selectWinners()
			if r.Best != tc.wantBest || r.Second != tc.wantSecond {
				t.Errorf("winners(%v, ngrams=%d) = (%d, %d), want (%d, %d)",
					tc.counts, tc.ngrams, r.Best, r.Second, tc.wantBest, tc.wantSecond)
			}
		})
	}
}

// TestMatchThresholding drives MatchResult through the margin and
// n-gram floors on synthetic counters, including the tie and empty
// cases the legacy API handled implicitly.
func TestMatchThresholding(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	langs := ps.Languages()
	cases := []struct {
		name        string
		opts        []DetectorOption
		counts      []int
		ngrams      int
		wantLang    string
		wantUnknown bool
		wantScore   float64
		wantMargin  float64
	}{
		{
			name:   "confident winner passes default thresholds",
			counts: []int{80, 10, 5, 1}, ngrams: 100,
			wantLang: langs[0], wantScore: 0.8, wantMargin: 0.7,
		},
		{
			name:   "empty document is unknown",
			counts: []int{0, 0, 0, 0}, ngrams: 0,
			wantUnknown: true,
		},
		{
			name:   "exact tie passes with zero margin at default threshold",
			counts: []int{40, 40, 2, 1}, ngrams: 100,
			wantLang: langs[0], wantScore: 0.4, wantMargin: 0,
		},
		{
			name:   "exact tie is unknown under a positive margin floor",
			opts:   []DetectorOption{WithMinMargin(0.05)},
			counts: []int{40, 40, 2, 1}, ngrams: 100,
			wantUnknown: true, wantScore: 0.4, wantMargin: 0,
		},
		{
			name:   "narrow margin below floor is unknown",
			opts:   []DetectorOption{WithMinMargin(0.1)},
			counts: []int{45, 40, 2, 1}, ngrams: 100,
			wantUnknown: true, wantScore: 0.45, wantMargin: 0.05,
		},
		{
			name:   "margin exactly at floor is known",
			opts:   []DetectorOption{WithMinMargin(0.05)},
			counts: []int{45, 40, 2, 1}, ngrams: 100,
			wantLang: langs[0], wantScore: 0.45, wantMargin: 0.05,
		},
		{
			name:   "short document below n-gram floor is unknown",
			opts:   []DetectorOption{WithMinNGrams(20)},
			counts: []int{9, 1, 0, 0}, ngrams: 10,
			wantUnknown: true, wantScore: 0.9, wantMargin: 0.8,
		},
		{
			name:   "all-zero counts still call the first language",
			counts: []int{0, 0, 0, 0}, ngrams: 10,
			wantLang: langs[0], wantScore: 0, wantMargin: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			det, err := NewDetector(ps, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			m := det.MatchResult(Result{Counts: tc.counts, NGrams: tc.ngrams, Best: -1, Second: -1})
			if m.Unknown != tc.wantUnknown {
				t.Fatalf("Unknown = %v, want %v (%+v)", m.Unknown, tc.wantUnknown, m)
			}
			if m.Lang != tc.wantLang {
				t.Errorf("Lang = %q, want %q", m.Lang, tc.wantLang)
			}
			if math.Abs(m.Score-tc.wantScore) > 1e-12 || math.Abs(m.Margin-tc.wantMargin) > 1e-12 {
				t.Errorf("Score, Margin = %v, %v; want %v, %v", m.Score, m.Margin, tc.wantScore, tc.wantMargin)
			}
			if m.NGrams != tc.ngrams {
				t.Errorf("NGrams = %d, want %d", m.NGrams, tc.ngrams)
			}
		})
	}
}

// TestMatchSingleLanguageProfileSet covers the one-language corner: no
// runner-up exists, so Margin equals Score and detection still works.
func TestMatchSingleLanguageProfileSet(t *testing.T) {
	corp := getMiniCorpus(t)
	ps, err := TrainFromTexts(Config{TopT: 500}, map[string][][]byte{
		"en": {corp.Test["en"][0].Text, corp.Test["en"][1].Text},
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(ps)
	if err != nil {
		t.Fatal(err)
	}
	m := det.Detect(corp.Test["en"][2].Text)
	if m.Unknown || m.Lang != "en" {
		t.Fatalf("single-language detect = %+v", m)
	}
	if m.Margin != m.Score {
		t.Errorf("Margin = %v, want Score %v with no runner-up", m.Margin, m.Score)
	}
	ranked := det.Rank(corp.Test["en"][2].Text, 0)
	if len(ranked) != 1 || ranked[0].Lang != "en" {
		t.Errorf("single-language rank = %+v", ranked)
	}
}

// TestDetectorAgreesWithLegacyClassifier is the migration guarantee:
// Detect, Rank, DetectBatch and DetectReader all name the same winner
// as Classifier.Classify on every non-tie, non-unknown document.
func TestDetectorAgreesWithLegacyClassifier(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	corp := getMiniCorpus(t)
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic} {
		clf, err := New(ps, backend)
		if err != nil {
			t.Fatal(err)
		}
		det := NewDetectorFromClassifier(clf, WithWorkers(3))
		var docs []corpus.Document
		for _, lang := range []string{"en", "es", "fi", "pt"} {
			docs = append(docs, corp.Test[lang][:4]...)
		}
		batch := det.DetectBatch(docs)
		if len(batch) != len(docs) {
			t.Fatalf("%v: %d batch results for %d docs", backend, len(batch), len(docs))
		}
		for i, doc := range docs {
			legacy := clf.Classify(doc.Text)
			want := legacy.BestLanguage(clf.Languages())
			if legacy.Margin() == 0 || want == "" {
				continue // ties and unknowns are out of scope for the guarantee
			}
			m := det.Detect(doc.Text)
			if m.Unknown || m.Lang != want {
				t.Errorf("%v doc %d: Detect = %+v, legacy winner %q", backend, i, m, want)
			}
			if m.Count != legacy.Counts[legacy.Best] || m.NGrams != legacy.NGrams {
				t.Errorf("%v doc %d: Detect counts (%d/%d) != legacy (%d/%d)",
					backend, i, m.Count, m.NGrams, legacy.Counts[legacy.Best], legacy.NGrams)
			}
			if ranked := det.Rank(doc.Text, 1); len(ranked) != 1 || ranked[0].Lang != want {
				t.Errorf("%v doc %d: Rank top = %+v, legacy winner %q", backend, i, ranked, want)
			}
			if batch[i] != m {
				t.Errorf("%v doc %d: DetectBatch %+v != Detect %+v", backend, i, batch[i], m)
			}
			rm, err := det.DetectReader(bytes.NewReader(doc.Text))
			if err != nil {
				t.Fatal(err)
			}
			if rm != m {
				t.Errorf("%v doc %d: DetectReader %+v != Detect %+v", backend, i, rm, m)
			}
		}
	}
}

// TestRankOrderingAndTopK checks the full ranking is sorted by count
// with lexicographic tie-break, carries consistent scores, and that
// top-k slices the same order.
func TestRankOrderingAndTopK(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	det, err := NewDetector(ps)
	if err != nil {
		t.Fatal(err)
	}
	doc := getMiniCorpus(t).Test["es"][0].Text
	all := det.Rank(doc, 0)
	if len(all) != len(det.Languages()) {
		t.Fatalf("Rank(0) returned %d entries for %d languages", len(all), len(det.Languages()))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Count > all[i-1].Count {
			t.Errorf("rank not sorted: position %d count %d > position %d count %d",
				i, all[i].Count, i-1, all[i-1].Count)
		}
		if all[i].Count == all[i-1].Count && all[i].Lang < all[i-1].Lang {
			t.Errorf("equal counts not in language order at position %d", i)
		}
	}
	if all[0].Lang != "es" {
		t.Errorf("top ranked %q, want es", all[0].Lang)
	}
	wantMargin := float64(all[0].Count-all[1].Count) / float64(all[0].NGrams)
	if math.Abs(all[0].Margin-wantMargin) > 1e-12 {
		t.Errorf("top margin = %v, want %v", all[0].Margin, wantMargin)
	}
	top2 := det.Rank(doc, 2)
	if len(top2) != 2 || !reflect.DeepEqual(top2, all[:2]) {
		t.Errorf("Rank(2) = %+v, want first two of %+v", top2, all[:2])
	}
	if over := det.Rank(doc, 99); len(over) != len(all) {
		t.Errorf("Rank(99) returned %d entries", len(over))
	}
}

// TestDetectorStream checks the incremental path: chunked writes match
// one-shot Detect, and Reset starts a fresh document.
func TestDetectorStream(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	det, err := NewDetector(ps)
	if err != nil {
		t.Fatal(err)
	}
	corp := getMiniCorpus(t)
	st := det.NewStream()
	for _, lang := range []string{"en", "fi"} {
		doc := corp.Test[lang][0].Text
		st.Reset()
		for i := 0; i < len(doc); i += 7 {
			end := i + 7
			if end > len(doc) {
				end = len(doc)
			}
			st.Write(doc[i:end])
		}
		if got, want := st.Match(), det.Detect(doc); got != want {
			t.Errorf("%s: stream match %+v != detect %+v", lang, got, want)
		}
	}
	st.Reset()
	if m := st.Match(); !m.Unknown || m.NGrams != 0 {
		t.Errorf("fresh stream match = %+v, want unknown", m)
	}
}

// TestDetectZeroAllocations is the hot-path discipline check: a warm
// detector classifies without allocating, on every built-in backend —
// the fused blocked kernel included.
func TestDetectZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; CI runs this test again without -race")
	}
	ps := trainMini(t, Config{TopT: 1000})
	doc := getMiniCorpus(t).Test["es"][0].Text
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked} {
		det, err := NewDetector(ps, WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		det.Detect(doc) // warm the scratch pool
		if allocs := testing.AllocsPerRun(200, func() { det.Detect(doc) }); allocs != 0 {
			t.Errorf("%s: Detect allocates %.1f objects per call, want 0", backend, allocs)
		}
	}
}
