package core

// Equivalence guarantees the serving layer leans on: every backend —
// the fused blocked kernel included — produces the identical decision
// on every input path (one-shot bytes, reader, incremental stream,
// batch), a document fed to DocumentStream in any chunking — including
// splits landing mid-n-gram — produces the identical Result as
// one-shot classification, and the engine's parallel fan-out returns
// results in input order at any worker count.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"bloomlang/internal/corpus"
)

// equivBackends is the full built-in backend matrix the equivalence
// suite runs over.
var equivBackends = []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked}

// TestDetectEquivalenceAcrossPaths pins Detect ≡ Classify ≡ Rank over
// every built-in backend and every input path: the one-shot byte
// path, the io.Reader path, the incremental stream path, and the
// batch path must all return the identical Match, Rank's head must
// agree with Detect, and Match must be derivable from the legacy
// Classify result.
func TestDetectEquivalenceAcrossPaths(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	corp := getMiniCorpus(t)
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det, err := NewDetector(ps, WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			clf := det.Classifier()
			var docs []corpus.Document
			for _, lang := range []string{"en", "es", "fi", "pt"} {
				docs = append(docs, corp.Test[lang][0], corp.Test[lang][1])
			}
			docs = append(docs, corpus.Document{}) // empty document -> Unknown on every path
			batch := det.DetectBatch(docs)
			for i, doc := range docs {
				want := det.Detect(doc.Text)

				if got, err := det.DetectReader(bytes.NewReader(doc.Text)); err != nil || got != want {
					t.Errorf("doc %d: reader path = %+v (%v), detect = %+v", i, got, err, want)
				}

				st := det.NewStream()
				for start := 0; start < len(doc.Text); start += 7 {
					end := start + 7
					if end > len(doc.Text) {
						end = len(doc.Text)
					}
					st.Write(doc.Text[start:end])
				}
				if got := st.Match(); got != want {
					t.Errorf("doc %d: stream path = %+v, detect = %+v", i, got, want)
				}

				if batch[i] != want {
					t.Errorf("doc %d: batch path = %+v, detect = %+v", i, batch[i], want)
				}

				ranked := det.Rank(doc.Text, 0)
				if len(ranked) != len(det.Languages()) {
					t.Fatalf("doc %d: Rank returned %d entries for %d languages", i, len(ranked), len(det.Languages()))
				}
				if want.NGrams > 0 {
					if ranked[0].Count != want.Count || ranked[0].Score != want.Score {
						t.Errorf("doc %d: rank head %+v disagrees with detect %+v", i, ranked[0], want)
					}
					if !want.Unknown && ranked[0].Lang != want.Lang {
						t.Errorf("doc %d: rank head language %q, detect %q", i, ranked[0].Lang, want.Lang)
					}
				}

				if got := det.MatchResult(clf.Classify(doc.Text)); got != want {
					t.Errorf("doc %d: classify-derived match = %+v, detect = %+v", i, got, want)
				}
			}
		})
	}
}

// TestBlockedNeverFalseNegativeVsDirect is the deterministic half of
// the differential guarantee (the fuzz half lives in
// FuzzBlockedNoFalseNegativesVsDirect): on real corpus documents,
// every n-gram the exact direct table accepts must also be accepted
// by the blocked filter, so the blocked per-language counts dominate
// the exact counts.
func TestBlockedNeverFalseNegativeVsDirect(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	direct, err := New(ps, BackendDirect)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := New(ps, BackendBlocked)
	if err != nil {
		t.Fatal(err)
	}
	corp := getMiniCorpus(t)
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		for _, doc := range corp.Test[lang][:5] {
			gs := direct.ExtractGrams(nil, doc.Text)
			for _, g := range gs {
				for i := range direct.matchers {
					if direct.matchers[i].Test(g) && !blocked.matchers[i].Test(g) {
						t.Fatalf("blocked false negative: lang %s gram %#x", direct.langs[i], g)
					}
				}
			}
			dr, br := direct.Classify(doc.Text), blocked.Classify(doc.Text)
			for i := range dr.Counts {
				if br.Counts[i] < dr.Counts[i] {
					t.Errorf("%s: blocked count %d below exact count %d for %s",
						lang, br.Counts[i], dr.Counts[i], direct.langs[i])
				}
			}
		}
	}
}

// splitPoints returns deterministic pseudo-random cut offsets for a
// document of length n.
func splitPoints(rng *rand.Rand, n, cuts int) []int {
	pts := make([]int, 0, cuts)
	for i := 0; i < cuts; i++ {
		pts = append(pts, rng.Intn(n))
	}
	pts = append(pts, 0, n)
	// Insertion sort keeps the helper dependency-free.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}

func TestStreamArbitraryChunkSplitsMatchOneShot(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	for _, backend := range equivBackends {
		c, err := New(ps, backend)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for _, lang := range []string{"en", "es", "fi", "pt"} {
			doc := getMiniCorpus(t).Test[lang][0].Text
			want := c.Classify(doc)
			s := c.NewStream()
			for trial := 0; trial < 20; trial++ {
				pts := splitPoints(rng, len(doc), 1+rng.Intn(12))
				s.Reset()
				for i := 1; i < len(pts); i++ {
					s.Write(doc[pts[i-1]:pts[i]])
				}
				if got := s.Result(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: split %v: stream %+v != one-shot %+v",
						backend, lang, pts, got, want)
				}
			}
		}
	}
}

// TestStreamMidNGramBoundarySplits walks a two-chunk split across every
// offset in the n-gram window region, so each possible mid-n-gram cut
// is hit explicitly.
func TestStreamMidNGramBoundarySplits(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	for _, backend := range []Backend{BackendBloom, BackendBlocked} {
		c, err := New(ps, backend)
		if err != nil {
			t.Fatal(err)
		}
		doc := getMiniCorpus(t).Test["es"][0].Text
		if len(doc) > 64 {
			doc = doc[:64]
		}
		want := c.Classify(doc)
		s := c.NewStream()
		for cut := 0; cut <= len(doc); cut++ {
			s.Reset()
			s.Write(doc[:cut])
			s.Write(doc[cut:])
			if got := s.Result(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: cut at %d: stream %+v != one-shot %+v", backend, cut, got, want)
			}
		}
	}
}

func TestClassifyAllPreservesInputOrder(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave languages so a reordering cannot produce the same
	// language sequence.
	var docs []corpus.Document
	var wantLangs []string
	corp := getMiniCorpus(t)
	for i := 0; i < 5; i++ {
		for _, lang := range []string{"fi", "en", "pt", "es"} {
			docs = append(docs, corp.Test[lang][i])
			wantLangs = append(wantLangs, lang)
		}
	}
	want := make([]Result, len(docs))
	for i, d := range docs {
		want[i] = c.Classify(d.Text)
	}
	for _, workers := range []int{1, 3, len(docs) * 4} {
		e := NewEngine(c, workers)
		got := e.ClassifyAll(docs)
		if len(got) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(got), len(docs))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: result %d differs from sequential", workers, i)
			}
			if lang := got[i].BestLanguage(c.Languages()); lang != wantLangs[i] {
				t.Errorf("workers=%d: position %d classified %q, want %q", workers, i, lang, wantLangs[i])
			}
		}
	}
}
