package core

// Equivalence guarantees the serving layer leans on: a document fed to
// DocumentStream in any chunking — including splits landing mid-n-gram
// — produces the identical Result as one-shot classification, and the
// engine's parallel fan-out returns results in input order at any
// worker count.

import (
	"math/rand"
	"reflect"
	"testing"

	"bloomlang/internal/corpus"
)

// splitPoints returns deterministic pseudo-random cut offsets for a
// document of length n.
func splitPoints(rng *rand.Rand, n, cuts int) []int {
	pts := make([]int, 0, cuts)
	for i := 0; i < cuts; i++ {
		pts = append(pts, rng.Intn(n))
	}
	pts = append(pts, 0, n)
	// Insertion sort keeps the helper dependency-free.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}

func TestStreamArbitraryChunkSplitsMatchOneShot(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	for _, backend := range []Backend{BackendBloom, BackendDirect} {
		c, err := New(ps, backend)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for _, lang := range []string{"en", "es", "fi", "pt"} {
			doc := getMiniCorpus(t).Test[lang][0].Text
			want := c.Classify(doc)
			s := c.NewStream()
			for trial := 0; trial < 20; trial++ {
				pts := splitPoints(rng, len(doc), 1+rng.Intn(12))
				s.Reset()
				for i := 1; i < len(pts); i++ {
					s.Write(doc[pts[i-1]:pts[i]])
				}
				if got := s.Result(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: split %v: stream %+v != one-shot %+v",
						backend, lang, pts, got, want)
				}
			}
		}
	}
}

// TestStreamMidNGramBoundarySplits walks a two-chunk split across every
// offset in the n-gram window region, so each possible mid-n-gram cut
// is hit explicitly.
func TestStreamMidNGramBoundarySplits(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	doc := getMiniCorpus(t).Test["es"][0].Text
	if len(doc) > 64 {
		doc = doc[:64]
	}
	want := c.Classify(doc)
	s := c.NewStream()
	for cut := 0; cut <= len(doc); cut++ {
		s.Reset()
		s.Write(doc[:cut])
		s.Write(doc[cut:])
		if got := s.Result(); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at %d: stream %+v != one-shot %+v", cut, got, want)
		}
	}
}

func TestClassifyAllPreservesInputOrder(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave languages so a reordering cannot produce the same
	// language sequence.
	var docs []corpus.Document
	var wantLangs []string
	corp := getMiniCorpus(t)
	for i := 0; i < 5; i++ {
		for _, lang := range []string{"fi", "en", "pt", "es"} {
			docs = append(docs, corp.Test[lang][i])
			wantLangs = append(wantLangs, lang)
		}
	}
	want := make([]Result, len(docs))
	for i, d := range docs {
		want[i] = c.Classify(d.Text)
	}
	for _, workers := range []int{1, 3, len(docs) * 4} {
		e := NewEngine(c, workers)
		got := e.ClassifyAll(docs)
		if len(got) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(got), len(docs))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: result %d differs from sequential", workers, i)
			}
			if lang := got[i].BestLanguage(c.Languages()); lang != wantLangs[i] {
				t.Errorf("workers=%d: position %d classified %q, want %q", workers, i, lang, wantLangs[i])
			}
		}
	}
}
