package core

import (
	"testing"
)

// FuzzBlockedNoFalseNegativesVsDirect is the differential guarantee
// behind the blocked backend's correctness: the direct table is exact
// membership, a Bloom filter may only ever err on the side of false
// positives, so on any document — including adversarial byte soup the
// fuzzer invents — every n-gram the direct backend accepts must be
// accepted by the blocked backend for every language, and the blocked
// per-language counts must dominate the exact counts.
func FuzzBlockedNoFalseNegativesVsDirect(f *testing.F) {
	ps := trainMini(f, Config{TopT: 800})
	direct, err := New(ps, BackendDirect)
	if err != nil {
		f.Fatal(err)
	}
	blocked, err := New(ps, BackendBlocked)
	if err != nil {
		f.Fatal(err)
	}
	corp := getMiniCorpus(f)
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		doc := corp.Test[lang][0].Text
		if len(doc) > 256 {
			doc = doc[:256]
		}
		f.Add(doc)
	}
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff un documento tr\xe8s fran\xe7ais \x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gs := direct.ExtractGrams(nil, data)
		for _, g := range gs {
			for i := range direct.matchers {
				if direct.matchers[i].Test(g) && !blocked.matchers[i].Test(g) {
					t.Fatalf("blocked false negative: lang %s gram %#x", direct.langs[i], g)
				}
			}
		}
		dr, br := direct.Classify(data), blocked.Classify(data)
		if dr.NGrams != br.NGrams {
			t.Fatalf("backends extracted different n-gram counts: %d vs %d", dr.NGrams, br.NGrams)
		}
		for i := range dr.Counts {
			if br.Counts[i] < dr.Counts[i] {
				t.Fatalf("blocked count %d below exact count %d for %s", br.Counts[i], dr.Counts[i], direct.langs[i])
			}
		}
	})
}
