package core

import (
	"fmt"
	"sort"
	"sync"

	"bloomlang/internal/bloom"
	"bloomlang/internal/ngram"
)

// Matcher is one language's membership structure: it answers whether a
// packed n-gram belongs to that language's profile. The paper's
// Parallel Bloom Filter, HAIL's direct lookup table, and the classic
// single-vector Bloom filter all implement it; external packages may
// register additional implementations via RegisterBackend.
type Matcher interface {
	Test(g uint32) bool
}

// BackendBuilder constructs the Matcher for one language. index is the
// language's position in the sorted profile set, so builders can derive
// independent per-language seeds the way the hardware gives each
// replica its own H3 matrices.
type BackendBuilder func(cfg Config, index int, p *ngram.Profile) (Matcher, error)

// Kernel is a fused all-languages scoring kernel: instead of one
// Matcher per language queried in a languages×grams loop, a Kernel
// scores every language for each n-gram in a single pass — the
// software analogue of the hardware testing one n-gram against all
// language classifiers in the same clock (§3.2). AccumulateInto adds
// each language's match count over gs into counts (len(Languages()))
// and must not allocate; Test answers per-language membership for the
// paths that need a single probe.
type Kernel interface {
	AccumulateInto(counts []int, gs []uint32)
	Test(lang int, g uint32) bool
}

// SetBuilder constructs the fused Kernel over the whole profile set at
// once — fused backends need every language's profile up front to lay
// the per-language state out contiguously.
type SetBuilder func(cfg Config, ps *ProfileSet) (Kernel, error)

// backendEntry is one registered membership backend. The entry's slot
// in the registry table is its Backend value, so the registry is an
// open-ended extension of the original closed enum. Exactly one of
// build and buildSet is non-nil: per-language backends provide build,
// fused backends provide buildSet.
type backendEntry struct {
	name     string
	aliases  []string
	build    BackendBuilder
	buildSet SetBuilder
}

var (
	backendMu    sync.RWMutex
	backendTable []backendEntry
	backendIndex = map[string]Backend{} // canonical names and aliases
)

// RegisterBackend adds a membership backend under a canonical name plus
// optional parse aliases, returning the Backend value that now selects
// it. Registration panics on a duplicate or empty name — backends are
// wired up in init functions, where a clash is a programming error.
func RegisterBackend(name string, build BackendBuilder, aliases ...string) Backend {
	if build == nil {
		panic("core: RegisterBackend with nil builder")
	}
	return register(backendEntry{name: name, aliases: aliases, build: build})
}

// RegisterFusedBackend adds a fused membership backend: one whose
// Kernel scores all languages per n-gram in a single pass instead of
// providing per-language Matchers. Registration semantics match
// RegisterBackend.
func RegisterFusedBackend(name string, build SetBuilder, aliases ...string) Backend {
	if build == nil {
		panic("core: RegisterFusedBackend with nil builder")
	}
	return register(backendEntry{name: name, aliases: aliases, buildSet: build})
}

func register(e backendEntry) Backend {
	backendMu.Lock()
	defer backendMu.Unlock()
	if e.name == "" {
		panic("core: backend registration with empty name")
	}
	for _, n := range append([]string{e.name}, e.aliases...) {
		if _, dup := backendIndex[n]; dup {
			panic(fmt.Sprintf("core: backend name %q already registered", n))
		}
	}
	b := Backend(len(backendTable))
	backendTable = append(backendTable, e)
	backendIndex[e.name] = b
	for _, n := range e.aliases {
		backendIndex[n] = b
	}
	return b
}

// ParseBackend resolves a backend by canonical name or alias. It is the
// inverse of Backend.String: ParseBackend(b.String()) == b for every
// registered backend.
func ParseBackend(name string) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backendIndex[name]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (have %v)", name, backendNamesLocked())
}

// Backends returns every registered backend's canonical name, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := backendNamesLocked()
	sort.Strings(names)
	return names
}

func backendNamesLocked() []string {
	names := make([]string, len(backendTable))
	for i, e := range backendTable {
		names[i] = e.name
	}
	return names
}

// String names the backend for reports and round-trips through
// ParseBackend.
func (b Backend) String() string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if int(b) >= 0 && int(b) < len(backendTable) {
		return backendTable[b].name
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// builders returns the registered per-language and fused builders
// (exactly one non-nil), or an error for a Backend value that was
// never registered.
func (b Backend) builders() (BackendBuilder, SetBuilder, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if int(b) < 0 || int(b) >= len(backendTable) {
		return nil, nil, fmt.Errorf("core: unknown backend %d", int(b))
	}
	return backendTable[b].build, backendTable[b].buildSet, nil
}

// The built-in backends register in constant order so the registry
// slots line up with the historical enum values.
func init() {
	bloomB := RegisterBackend("parallel-bloom", buildParallelBloom, "bloom")
	directB := RegisterBackend("direct-lookup", buildDirectLookup, "direct")
	classicB := RegisterBackend("classic-bloom", buildClassicBloom, "classic")
	blockedB := RegisterFusedBackend("blocked-bloom", buildBlocked, "blocked")
	if bloomB != BackendBloom || directB != BackendDirect || classicB != BackendClassic || blockedB != BackendBlocked {
		panic("core: built-in backends registered out of order")
	}
}

// buildParallelBloom is the paper's design: k H3 hashes into k
// independent m-bit vectors per language (§3.1).
func buildParallelBloom(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	f, err := bloom.NewParallel(cfg.K, ngram.Bits(cfg.N), cfg.MBits, perLanguageSeed(cfg.Seed, index))
	if err != nil {
		return nil, err
	}
	f.ProgramAll(p.Grams)
	return f, nil
}

// buildDirectLookup is HAIL's design: an exact membership bitset over
// the packed n-gram space.
func buildDirectLookup(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	t := newDirectTable(ngram.Bits(cfg.N))
	for _, g := range p.Grams {
		t.add(g)
	}
	return t, nil
}

// buildClassicBloom is the ablation: one k·m-bit vector shared by all k
// hash functions.
func buildClassicBloom(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	f, err := bloom.NewClassic(cfg.K, ngram.Bits(cfg.N), cfg.MBits*uint32(cfg.K), perLanguageSeed(cfg.Seed, index))
	if err != nil {
		return nil, err
	}
	f.ProgramAll(p.Grams)
	return f, nil
}

// perLanguageSeed offsets the configured seed per language so filters
// are independent, as in hardware where each replica has its own H3
// matrices.
func perLanguageSeed(seed int64, index int) int64 {
	return seed + int64(index)*1000003
}

// blockedSeed derives the shared-hash seed for the blocked backend.
// All languages share one hash stage (that is what makes the fused
// layout possible), so the seed is offset once, away from the
// per-language seed sequence the other backends draw from.
func blockedSeed(seed int64) int64 {
	return seed + 982451653
}

// buildBlocked is the fourth backend: a cache-line-blocked Bloom
// filter fused across all languages. The first hash selects a 512-bit
// block, the remaining k−1 hashes select bits inside it, and the
// per-language blocks for a block index are contiguous, so scoring
// one n-gram touches L consecutive cache lines. The block count is
// sized so the modelled false positive rate at full profile load
// matches the parallel backend's §3.1 model at the same Config. A
// profile set loaded from an NGPS v2 file may carry the programmed
// layout; when it is consistent with the configuration it is used
// directly instead of re-programming.
func buildBlocked(cfg Config, ps *ProfileSet) (Kernel, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: blocked backend needs k >= 2 (one block-select hash plus k-1 bit probes), got k=%d", cfg.K)
	}
	if set := ps.blocked; set != nil {
		if err := checkBlockedLayout(cfg, ps, set); err != nil {
			return nil, err
		}
		return set, nil
	}
	return buildBlockedSet(cfg, ps.Profiles)
}

// buildBlockedSet programs a fused blocked filter set from profiles.
func buildBlockedSet(cfg Config, profiles []*ngram.Profile) (*bloom.BlockedSet, error) {
	target := bloom.FalsePositiveRate(cfg.TopT, cfg.MBits, cfg.K)
	blocks := bloom.BlocksForTarget(cfg.TopT, cfg.K, target)
	set, err := bloom.NewBlockedSet(len(profiles), cfg.K, ngram.Bits(cfg.N), blocks, blockedSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		set.AddAll(i, p.Grams)
	}
	return set, nil
}

// checkBlockedLayout verifies a deserialized blocked layout against
// the profile set it arrived with, so a stale or hand-edited layout
// section fails loudly instead of silently misclassifying.
func checkBlockedLayout(cfg Config, ps *ProfileSet, set *bloom.BlockedSet) error {
	if set.Langs() != len(ps.Profiles) {
		return fmt.Errorf("core: embedded blocked layout has %d languages, profile set has %d", set.Langs(), len(ps.Profiles))
	}
	if set.K() != cfg.K {
		return fmt.Errorf("core: embedded blocked layout has k=%d, config has k=%d", set.K(), cfg.K)
	}
	if set.InputBits() != ngram.Bits(cfg.N) {
		return fmt.Errorf("core: embedded blocked layout hashes %d-bit n-grams, config needs %d", set.InputBits(), ngram.Bits(cfg.N))
	}
	if set.Seed() != blockedSeed(cfg.Seed) {
		return fmt.Errorf("core: embedded blocked layout was built under a different seed")
	}
	for i, p := range ps.Profiles {
		if set.N(i) != len(p.Grams) {
			return fmt.Errorf("core: embedded blocked layout programmed %d n-grams for %q, profile has %d", set.N(i), p.Language, len(p.Grams))
		}
	}
	return nil
}

// kernelMatcher is the per-language view of a fused Kernel, so the
// Matcher-shaped paths (streams, diagnostics, differential tests)
// work identically on fused backends.
type kernelMatcher struct {
	k    Kernel
	lang int
}

func (m kernelMatcher) Test(g uint32) bool { return m.k.Test(m.lang, g) }
