package core

import (
	"fmt"
	"sort"
	"sync"

	"bloomlang/internal/bloom"
	"bloomlang/internal/ngram"
)

// Matcher is one language's membership structure: it answers whether a
// packed n-gram belongs to that language's profile. The paper's
// Parallel Bloom Filter, HAIL's direct lookup table, and the classic
// single-vector Bloom filter all implement it; external packages may
// register additional implementations via RegisterBackend.
type Matcher interface {
	Test(g uint32) bool
}

// BackendBuilder constructs the Matcher for one language. index is the
// language's position in the sorted profile set, so builders can derive
// independent per-language seeds the way the hardware gives each
// replica its own H3 matrices.
type BackendBuilder func(cfg Config, index int, p *ngram.Profile) (Matcher, error)

// backendEntry is one registered membership backend. The entry's slot
// in the registry table is its Backend value, so the registry is an
// open-ended extension of the original closed enum.
type backendEntry struct {
	name    string
	aliases []string
	build   BackendBuilder
}

var (
	backendMu    sync.RWMutex
	backendTable []backendEntry
	backendIndex = map[string]Backend{} // canonical names and aliases
)

// RegisterBackend adds a membership backend under a canonical name plus
// optional parse aliases, returning the Backend value that now selects
// it. Registration panics on a duplicate or empty name — backends are
// wired up in init functions, where a clash is a programming error.
func RegisterBackend(name string, build BackendBuilder, aliases ...string) Backend {
	backendMu.Lock()
	defer backendMu.Unlock()
	if name == "" {
		panic("core: RegisterBackend with empty name")
	}
	if build == nil {
		panic("core: RegisterBackend with nil builder")
	}
	for _, n := range append([]string{name}, aliases...) {
		if _, dup := backendIndex[n]; dup {
			panic(fmt.Sprintf("core: backend name %q already registered", n))
		}
	}
	b := Backend(len(backendTable))
	backendTable = append(backendTable, backendEntry{name: name, aliases: aliases, build: build})
	backendIndex[name] = b
	for _, n := range aliases {
		backendIndex[n] = b
	}
	return b
}

// ParseBackend resolves a backend by canonical name or alias. It is the
// inverse of Backend.String: ParseBackend(b.String()) == b for every
// registered backend.
func ParseBackend(name string) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backendIndex[name]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (have %v)", name, backendNamesLocked())
}

// Backends returns every registered backend's canonical name, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := backendNamesLocked()
	sort.Strings(names)
	return names
}

func backendNamesLocked() []string {
	names := make([]string, len(backendTable))
	for i, e := range backendTable {
		names[i] = e.name
	}
	return names
}

// String names the backend for reports and round-trips through
// ParseBackend.
func (b Backend) String() string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if int(b) >= 0 && int(b) < len(backendTable) {
		return backendTable[b].name
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// builder returns the registered builder, or an error for a Backend
// value that was never registered.
func (b Backend) builder() (BackendBuilder, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if int(b) < 0 || int(b) >= len(backendTable) {
		return nil, fmt.Errorf("core: unknown backend %d", int(b))
	}
	return backendTable[b].build, nil
}

// The built-in backends register in constant order so the registry
// slots line up with the historical enum values.
func init() {
	bloomB := RegisterBackend("parallel-bloom", buildParallelBloom, "bloom")
	directB := RegisterBackend("direct-lookup", buildDirectLookup, "direct")
	classicB := RegisterBackend("classic-bloom", buildClassicBloom, "classic")
	if bloomB != BackendBloom || directB != BackendDirect || classicB != BackendClassic {
		panic("core: built-in backends registered out of order")
	}
}

// buildParallelBloom is the paper's design: k H3 hashes into k
// independent m-bit vectors per language (§3.1).
func buildParallelBloom(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	f, err := bloom.NewParallel(cfg.K, ngram.Bits(cfg.N), cfg.MBits, perLanguageSeed(cfg.Seed, index))
	if err != nil {
		return nil, err
	}
	f.ProgramAll(p.Grams)
	return f, nil
}

// buildDirectLookup is HAIL's design: an exact membership bitset over
// the packed n-gram space.
func buildDirectLookup(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	t := newDirectTable(ngram.Bits(cfg.N))
	for _, g := range p.Grams {
		t.add(g)
	}
	return t, nil
}

// buildClassicBloom is the ablation: one k·m-bit vector shared by all k
// hash functions.
func buildClassicBloom(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
	f, err := bloom.NewClassic(cfg.K, ngram.Bits(cfg.N), cfg.MBits*uint32(cfg.K), perLanguageSeed(cfg.Seed, index))
	if err != nil {
		return nil, err
	}
	f.ProgramAll(p.Grams)
	return f, nil
}

// perLanguageSeed offsets the configured seed per language so filters
// are independent, as in hardware where each replica has its own H3
// matrices.
func perLanguageSeed(seed int64, index int) int64 {
	return seed + int64(index)*1000003
}
