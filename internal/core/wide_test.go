package core

import (
	"strings"
	"testing"
)

// Training snippets in scripts the 5-bit pipeline cannot represent:
// Greek, Russian and Ukrainian Cyrillic, plus English for contrast.
var wideTraining = map[string][]string{
	"el": {
		"το συμβούλιο θεσπίζει τα αναγκαία μέτρα για την εφαρμογή του παρόντος κανονισμού",
		"η επιτροπή υποβάλλει έκθεση στο ευρωπαϊκό κοινοβούλιο και στο συμβούλιο",
		"τα κράτη μέλη θέτουν σε ισχύ τις αναγκαίες νομοθετικές και κανονιστικές διατάξεις",
		"ο παρών κανονισμός αρχίζει να ισχύει την εικοστή ημέρα από τη δημοσίευσή του",
	},
	"ru": {
		"совет принимает необходимые меры для применения настоящего регламента",
		"комиссия представляет доклад европейскому парламенту и совету",
		"государства члены вводят в действие необходимые законодательные положения",
		"настоящий регламент вступает в силу на двадцатый день после его опубликования",
	},
	"uk": {
		"рада вживає необхідних заходів для застосування цього регламенту",
		"комісія подає доповідь європейському парламенту та раді",
		"держави члени вводять в дію необхідні законодавчі положення",
		"цей регламент набирає чинності на двадцятий день після його опублікування",
	},
	"en": {
		"the council shall adopt the measures necessary for the application of this regulation",
		"the commission shall submit a report to the european parliament and to the council",
		"member states shall bring into force the necessary laws and regulations",
		"this regulation shall enter into force on the twentieth day following its publication",
	},
}

func wideClassifier(t *testing.T) *WideClassifier {
	t.Helper()
	cfg := Config{N: 3, TopT: 2000, K: 4, MBits: 16 * 1024, Seed: 9}
	c, err := TrainWide(cfg, wideTraining)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrainWideValidation(t *testing.T) {
	if _, err := TrainWide(Config{}, nil); err == nil {
		t.Error("TrainWide with no languages succeeded")
	}
	if _, err := TrainWide(Config{N: 5}, wideTraining); err == nil {
		t.Error("TrainWide with n=5 (80-bit grams) succeeded")
	}
	if _, err := TrainWide(Config{MBits: 1000}, wideTraining); err == nil {
		t.Error("TrainWide with bad m succeeded")
	}
	if _, err := TrainWide(Config{}, map[string][]string{"el": nil}); err == nil {
		t.Error("TrainWide with empty language succeeded")
	}
}

func TestWideClassifyScripts(t *testing.T) {
	c := wideClassifier(t)
	cases := map[string]string{
		"el": "το ευρωπαϊκό κοινοβούλιο και το συμβούλιο θεσπίζουν μέτρα για την εφαρμογή",
		"ru": "европейский парламент и совет принимают меры для применения регламента",
		"uk": "європейський парламент та рада вживають заходів для застосування регламенту",
		"en": "the european parliament and the council shall adopt measures for the application",
	}
	for want, text := range cases {
		r := c.Classify(text)
		if got := r.BestLanguage(c.Languages()); got != want {
			t.Errorf("classified %q text as %q (counts %v)", want, got, r.Counts)
		}
	}
}

func TestWideClassifySeparatesCloseCyrillic(t *testing.T) {
	// Russian and Ukrainian share the script but differ in letters like
	// і/ї/є vs и/ы/э; the 16-bit alphabet preserves that signal.
	c := wideClassifier(t)
	r := c.Classify("держави члени вводять в дію необхідні положення цього регламенту")
	if got := r.BestLanguage(c.Languages()); got != "uk" {
		t.Errorf("Ukrainian text classified as %q", got)
	}
}

func TestWideClassifyEmpty(t *testing.T) {
	c := wideClassifier(t)
	r := c.Classify("")
	if r.Best != -1 || r.NGrams != 0 {
		t.Errorf("empty text result = %+v", r)
	}
	r = c.Classify("12345 67 89") // no letters
	if r.NGrams == 0 {
		// Digits map to white space; windows of pure white space are
		// still n-grams (the pipeline is oblivious to word boundaries,
		// like the narrow path).
		t.Log("letterless text produced no n-grams")
	}
}

func TestWideCaseFolding(t *testing.T) {
	c := wideClassifier(t)
	lower := c.Classify("το συμβούλιο θεσπίζει τα αναγκαία μέτρα για την εφαρμογή")
	upper := c.Classify("ΤΟ ΣΥΜΒΟΎΛΙΟ ΘΕΣΠΊΖΕΙ ΤΑ ΑΝΑΓΚΑΊΑ ΜΈΤΡΑ ΓΙΑ ΤΗΝ ΕΦΑΡΜΟΓΉ")
	if lower.BestLanguage(c.Languages()) != upper.BestLanguage(c.Languages()) {
		t.Error("case changed the wide classification")
	}
}

func TestWideLanguagesSorted(t *testing.T) {
	c := wideClassifier(t)
	langs := c.Languages()
	want := []string{"el", "en", "ru", "uk"}
	for i := range want {
		if langs[i] != want[i] {
			t.Fatalf("Languages() = %v, want %v", langs, want)
		}
	}
}

func TestWideNoFalseNegativesOnTraining(t *testing.T) {
	// Every training document must classify as its own language: the
	// profiles contain its top n-grams and Bloom filters cannot lose
	// them.
	c := wideClassifier(t)
	for lang, texts := range wideTraining {
		for i, text := range texts {
			r := c.Classify(text)
			if got := r.BestLanguage(c.Languages()); got != lang {
				t.Errorf("%s training doc %d classified as %q", lang, i, got)
			}
		}
	}
}

func BenchmarkWideClassify(b *testing.B) {
	cfg := Config{N: 3, TopT: 2000, K: 4, MBits: 16 * 1024, Seed: 9}
	c, err := TrainWide(cfg, wideTraining)
	if err != nil {
		b.Fatal(err)
	}
	text := strings.Repeat("европейский парламент и совет принимают меры ", 50)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(text)
	}
}
