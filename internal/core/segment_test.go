package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bloomlang/internal/corpus"
)

// The property suite runs on its own corpus of four mutually unrelated
// languages (en, fi, da, cs — none of whose sibling languages are
// trained). The generator's sibling borrowing (es↔pt, fi↔et, …) makes
// a "pure" document genuinely carry runs of its sibling's words — real
// code-switching in miniature — so training a sibling pair would make
// the whole-document-single-span property legitimately false at window
// scale. Keeping siblings untrained keeps pure documents pure.
var (
	segCorpus   *corpus.Corpus
	segProfiles *ProfileSet
)

var segLangs = []string{"cs", "da", "en", "fi"}

func getSegCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	if segCorpus == nil {
		c, err := corpus.Generate(corpus.Config{
			Languages:       segLangs,
			DocsPerLanguage: 30,
			WordsPerDoc:     150,
			TrainFraction:   0.3,
			Seed:            7,
		})
		if err != nil {
			t.Fatal(err)
		}
		segCorpus = c
	}
	return segCorpus
}

func segDetector(t testing.TB, backend Backend) *Detector {
	t.Helper()
	if segProfiles == nil {
		ps, err := Train(Config{TopT: 1000}, getSegCorpus(t))
		if err != nil {
			t.Fatal(err)
		}
		segProfiles = ps
	}
	det, err := NewDetector(segProfiles, WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// segTestConfig is the geometry the property suite runs under: windows
// small enough that the 150-word test documents span many of them,
// coarse enough that every window carries a decisive margin.
var segTestConfig = SegmentConfig{Window: 96, Stride: 24, Hysteresis: 2}

// checkTiling asserts the fundamental structural guarantee: spans tile
// [0, docLen) in order with no gaps and no overlaps.
func checkTiling(t *testing.T, spans []Span, docLen int) {
	t.Helper()
	if docLen == 0 {
		if len(spans) != 0 {
			t.Fatalf("empty document produced %d spans: %+v", len(spans), spans)
		}
		return
	}
	if len(spans) == 0 {
		t.Fatalf("no spans for a %d-byte document", docLen)
	}
	if spans[0].Start != 0 {
		t.Errorf("first span starts at %d, want 0", spans[0].Start)
	}
	if spans[len(spans)-1].End != docLen {
		t.Errorf("last span ends at %d, want %d", spans[len(spans)-1].End, docLen)
	}
	for i, sp := range spans {
		if sp.Start >= sp.End {
			t.Errorf("span %d is empty or inverted: [%d,%d)", i, sp.Start, sp.End)
		}
		if i > 0 && sp.Start != spans[i-1].End {
			t.Errorf("span %d starts at %d, previous ends at %d (gap or overlap)", i, sp.Start, spans[i-1].End)
		}
		if sp.Unknown != (sp.Lang == "") {
			t.Errorf("span %d: Unknown=%v but Lang=%q", i, sp.Unknown, sp.Lang)
		}
	}
}

// TestDetectSpansSingleLanguageSingleSpan is the headline property: a
// document drawn entirely from one language yields exactly one span
// covering the whole input, on every backend, and that span carries
// the language Detect would call.
func TestDetectSpansSingleLanguageSingleSpan(t *testing.T) {
	corp := getSegCorpus(t)
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			for _, lang := range segLangs {
				for i := 0; i < 20; i++ {
					doc := corp.Test[lang][i].Text
					spans, err := det.DetectSpans(doc, segTestConfig)
					if err != nil {
						t.Fatal(err)
					}
					checkTiling(t, spans, len(doc))
					if len(spans) != 1 {
						t.Fatalf("%s doc %d: %d spans %+v, want a single whole-document span",
							lang, i, len(spans), spans)
					}
					if want := det.Detect(doc).Lang; spans[0].Lang != want {
						t.Errorf("%s doc %d: span language %q, Detect says %q", lang, i, spans[0].Lang, want)
					}
					if spans[0].Score <= 0 || spans[0].Margin < 0 {
						t.Errorf("%s doc %d: degenerate span confidence %+v", lang, i, spans[0])
					}
				}
			}
		})
	}
}

// TestDetectSpansTiling checks the no-gaps/no-overlaps guarantee on
// every backend over awkward inputs: mixed documents, byte soup,
// short documents, sub-n documents, and the empty document.
func TestDetectSpansTiling(t *testing.T) {
	corp := getSegCorpus(t)
	mixed := append(append([]byte{}, corp.Test["en"][0].Text...), corp.Test["fi"][0].Text...)
	docs := [][]byte{
		nil,            // empty: zero spans
		[]byte("ab"),   // shorter than one n-gram: one Unknown span
		[]byte("word"), // exactly one n-gram
		[]byte(strings.Repeat("\x00\x01\x02 soup ", 40)), // byte soup
		corp.Test["da"][0].Text,
		mixed,
	}
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			for i, doc := range docs {
				spans, err := det.DetectSpans(doc, segTestConfig)
				if err != nil {
					t.Fatal(err)
				}
				checkTiling(t, spans, len(doc))
				if i == 1 && (len(spans) != 1 || !spans[0].Unknown) {
					t.Errorf("sub-n document spans = %+v, want one Unknown span", spans)
				}
			}
		})
	}
}

// TestDetectSpansSingleWindowAgreesWithDetect pins the degenerate
// case: a document that fits inside one window is decided exactly as
// Detect decides it — same language, score, margin, and unknown
// outcome — on every backend.
func TestDetectSpansSingleWindowAgreesWithDetect(t *testing.T) {
	corp := getSegCorpus(t)
	cases := [][]byte{
		corp.Test["en"][0].Text[:40],
		corp.Test["da"][0].Text[:94], // a few grams short of one full window
		corp.Test["cs"][0].Text[:10],
		[]byte("xyz"), // zero n-grams of n=4: Unknown
	}
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			for i, doc := range cases {
				m := det.Detect(doc)
				spans, err := det.DetectSpans(doc, segTestConfig)
				if err != nil {
					t.Fatal(err)
				}
				if len(spans) != 1 {
					t.Fatalf("case %d: %d spans for a single-window document", i, len(spans))
				}
				sp := spans[0]
				if sp.Start != 0 || sp.End != len(doc) {
					t.Errorf("case %d: span [%d,%d), want [0,%d)", i, sp.Start, sp.End, len(doc))
				}
				if sp.Lang != m.Lang || sp.Score != m.Score || sp.Margin != m.Margin || sp.Unknown != m.Unknown {
					t.Errorf("case %d: span %+v disagrees with Detect %+v", i, sp, m)
				}
			}
		})
	}
}

// TestDetectSpansFindsMixedBoundary checks segmentation does its job:
// a two-language concatenation comes back as the two languages in
// order, with the detected boundary within a window of the true one.
func TestDetectSpansFindsMixedBoundary(t *testing.T) {
	corp := getSegCorpus(t)
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			a, b := corp.Test["en"][0].Text, corp.Test["fi"][0].Text
			doc := append(append([]byte{}, a...), b...)
			spans, err := det.DetectSpans(doc, segTestConfig)
			if err != nil {
				t.Fatal(err)
			}
			checkTiling(t, spans, len(doc))
			if len(spans) != 2 {
				t.Fatalf("mixed en|fi document produced %d spans: %+v", len(spans), spans)
			}
			if spans[0].Lang != "en" || spans[1].Lang != "fi" {
				t.Errorf("span languages %q|%q, want en|fi", spans[0].Lang, spans[1].Lang)
			}
			// The boundary must fall near the true switch point.
			d := spans[1].Start - len(a)
			if d < 0 {
				d = -d
			}
			if tol := segTestConfig.Window; d > tol {
				t.Errorf("boundary %d is %d bytes from the true switch at %d (tolerance %d)",
					spans[1].Start, d, len(a), tol)
			}
		})
	}
}

// TestSpanStreamMatchesOneShot is the chunking-independence guarantee:
// feeding a document to a SpanStream in arbitrary splits — including
// cuts landing mid-n-gram and mid-chunk — produces the identical spans
// as one-shot DetectSpans.
func TestSpanStreamMatchesOneShot(t *testing.T) {
	corp := getSegCorpus(t)
	for _, backend := range []Backend{BackendBloom, BackendBlocked} {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			doc := append(append([]byte{}, corp.Test["da"][0].Text...), corp.Test["en"][1].Text...)
			want, err := det.DetectSpans(doc, segTestConfig)
			if err != nil {
				t.Fatal(err)
			}
			st, err := det.NewSpanStream(segTestConfig)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 20; trial++ {
				st.Reset()
				pts := splitPoints(rng, len(doc), 1+rng.Intn(12))
				for i := 1; i < len(pts); i++ {
					if _, err := st.Write(doc[pts[i-1]:pts[i]]); err != nil {
						t.Fatal(err)
					}
				}
				if got := st.Finish(); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (splits %v): stream spans %+v != one-shot %+v", trial, pts, got, want)
				}
			}
		})
	}
}

// TestSpanStreamIncrementalFinalization checks the streaming contract:
// Spans() only ever exposes finalized spans (a prefix of the final
// answer), Finish() completes it, and writing after Finish fails until
// Reset.
func TestSpanStreamIncrementalFinalization(t *testing.T) {
	corp := getSegCorpus(t)
	det := segDetector(t, BackendBlocked)
	doc := append(append([]byte{}, corp.Test["en"][0].Text...), corp.Test["cs"][0].Text...)
	want, err := det.DetectSpans(doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	st, err := det.NewSpanStream(segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(doc); i += 50 {
		end := i + 50
		if end > len(doc) {
			end = len(doc)
		}
		st.Write(doc[i:end])
		partial := st.Spans()
		if len(partial) > len(want) {
			t.Fatalf("mid-stream finalized %d spans, final answer has %d", len(partial), len(want))
		}
		for j, sp := range partial {
			if sp != want[j] {
				t.Fatalf("mid-stream span %d = %+v, final %+v", j, sp, want[j])
			}
		}
	}
	if got := st.Finish(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Finish spans %+v != one-shot %+v", got, want)
	}
	if _, err := st.Write([]byte("more")); err == nil {
		t.Fatal("Write after Finish succeeded")
	}
	st.Reset()
	if _, err := st.Write(doc[:10]); err != nil {
		t.Fatalf("Write after Reset failed: %v", err)
	}
}

// TestSpanStreamMatchAgreesWithDetect pins the stream's ride-along
// whole-document decision to Detect, mid-stream (buffered tail folded
// on demand) and after Finish, on every backend.
func TestSpanStreamMatchAgreesWithDetect(t *testing.T) {
	corp := getSegCorpus(t)
	for _, backend := range equivBackends {
		t.Run(backend.String(), func(t *testing.T) {
			det := segDetector(t, backend)
			doc := append(append([]byte{}, corp.Test["en"][0].Text...), corp.Test["da"][0].Text...)
			st, err := det.NewSpanStream(segTestConfig)
			if err != nil {
				t.Fatal(err)
			}
			for _, cut := range []int{0, 1, 3, 7, 100, len(doc)} {
				st.Reset()
				st.Write(doc[:cut])
				if got, want := st.Match(), det.Detect(doc[:cut]); got != want {
					t.Errorf("prefix %d: stream match %+v != detect %+v", cut, got, want)
				}
				if got, want := st.Result().NGrams, det.Detect(doc[:cut]).NGrams; got != want {
					t.Errorf("prefix %d: stream result ngrams %d != %d", cut, got, want)
				}
			}
			st.Reset()
			st.Write(doc)
			st.Finish()
			if got, want := st.Match(), det.Detect(doc); got != want {
				t.Errorf("post-Finish match %+v != detect %+v", got, want)
			}
		})
	}
}

// TestSpanStreamWriteStringMatchesWrite pins the copy-free string
// path (io.StringWriter) to the byte path.
func TestSpanStreamWriteStringMatchesWrite(t *testing.T) {
	corp := getSegCorpus(t)
	det := segDetector(t, BackendBlocked)
	doc := append(append([]byte{}, corp.Test["fi"][0].Text...), corp.Test["en"][0].Text...)
	want, err := det.DetectSpans(doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	st, err := det.NewSpanStream(segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for i := 0; i < len(text); i += 37 {
		end := i + 37
		if end > len(text) {
			end = len(text)
		}
		if _, err := st.WriteString(text[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Finish(); !reflect.DeepEqual(got, want) {
		t.Fatalf("WriteString spans %+v != Write spans %+v", got, want)
	}
	if _, err := st.WriteString("more"); err == nil {
		t.Fatal("WriteString after Finish succeeded")
	}
}

// TestDetectSpansReaderMatchesBytes pins the reader path to the byte
// path.
func TestDetectSpansReaderMatchesBytes(t *testing.T) {
	corp := getSegCorpus(t)
	det := segDetector(t, BackendBloom)
	doc := append(append([]byte{}, corp.Test["fi"][0].Text...), corp.Test["da"][1].Text...)
	want, err := det.DetectSpans(doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.DetectSpansReader(bytes.NewReader(doc), segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reader spans %+v != byte spans %+v", got, want)
	}
}

// TestAppendSpansReusesDst checks the allocation-discipline API shape:
// appending into a reused slice returns the same backing array once
// warm and produces the same spans.
func TestAppendSpansReusesDst(t *testing.T) {
	corp := getSegCorpus(t)
	det := segDetector(t, BackendBlocked)
	doc := corp.Test["en"][0].Text
	want, err := det.DetectSpans(doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := det.AppendSpans(nil, doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	again, err := det.AppendSpans(dst[:0], doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("reused-dst spans %+v != %+v", again, want)
	}
	if cap(again) != cap(dst) {
		t.Errorf("reused dst reallocated: cap %d -> %d", cap(dst), cap(again))
	}
}

// TestDetectSpansZeroAllocations is the hot-path discipline check for
// the segmentation path: with pooled scratch warm and a reused dst,
// segmenting allocates nothing on any built-in backend.
func TestDetectSpansZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	corp := getSegCorpus(t)
	doc := append(append([]byte{}, corp.Test["da"][0].Text...), corp.Test["en"][0].Text...)
	for _, backend := range equivBackends {
		det := segDetector(t, backend)
		dst, err := det.AppendSpans(nil, doc, segTestConfig)
		if err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			dst, _ = det.AppendSpans(dst[:0], doc, segTestConfig)
		}); allocs != 0 {
			t.Errorf("%s: AppendSpans allocates %.1f objects per call, want 0", backend, allocs)
		}
	}
}

// TestSegmentConfigValidate exercises the configuration guard rails.
func TestSegmentConfigValidate(t *testing.T) {
	good := []SegmentConfig{
		{},
		{Window: 32},
		{Window: 90}, // quarter-window default hop does not divide: nudged to a divisor
		{Window: 9},
		{Window: 32, Stride: 32}, // non-overlapping windows
		{Window: 30, Stride: 10, Hysteresis: 5, Smoothing: 0.9},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
		if eff := cfg.WithDefaults(); eff.Window%eff.Stride != 0 {
			t.Errorf("good config %d: default stride %d does not divide window %d", i, eff.Stride, eff.Window)
		}
	}
	bad := []SegmentConfig{
		{Window: -1},
		{Window: 64, Stride: -2},
		{Window: 64, Stride: 65},
		{Window: 64, Stride: 24}, // does not divide
		{Hysteresis: -3},
		{Smoothing: 1},
		{Smoothing: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
		}
		if _, err := segDetector(t, BackendDirect).DetectSpans([]byte("doc"), cfg); err == nil {
			t.Errorf("DetectSpans accepted bad config %d (%+v)", i, cfg)
		}
	}
	if c := (SegmentConfig{}).WithDefaults(); c.Window != DefaultSegmentWindow || c.Stride != DefaultSegmentWindow/4 || c.Hysteresis != DefaultSegmentHysteresis {
		t.Errorf("defaults = %+v", c)
	}
}

// TestDetectSpansUnknownPolicy: under an unattainable margin floor
// every window is unknown, so the whole document merges into one
// Unknown span — the segmentation analogue of Detect's unknown
// thresholding.
func TestDetectSpansUnknownPolicy(t *testing.T) {
	getSegCorpus(t)
	segDetector(t, BackendBloom) // ensure segProfiles is trained
	det, err := NewDetector(segProfiles, WithBackend(BackendBloom), WithMinMargin(0.99))
	if err != nil {
		t.Fatal(err)
	}
	doc := segCorpus.Test["en"][0].Text
	spans, err := det.DetectSpans(doc, segTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, spans, len(doc))
	if len(spans) != 1 || !spans[0].Unknown || spans[0].Lang != "" {
		t.Fatalf("spans under 0.99 margin floor = %+v, want one Unknown span", spans)
	}
}

// TestDetectSpansSubsample checks byte attribution under input
// subsampling: emitted n-gram i starts at byte i·s, and spans still
// tile the document.
func TestDetectSpansSubsample(t *testing.T) {
	corp := getSegCorpus(t)
	ps, err := Train(Config{TopT: 1000, Subsample: 2}, corp)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(ps, WithBackend(BackendDirect))
	if err != nil {
		t.Fatal(err)
	}
	doc := corp.Test["en"][0].Text
	spans, err := det.DetectSpans(doc, SegmentConfig{Window: 48, Stride: 12})
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, spans, len(doc))
	if spans[0].Lang != "en" {
		t.Errorf("subsampled segmentation called %q, want en", spans[0].Lang)
	}
}

// TestGenerateMixedDeterministic pins the mixed-corpus generator the
// golden segmentation gate depends on: identical configs generate
// identical documents, segments tile, and consecutive segments always
// switch language.
func TestGenerateMixedDeterministic(t *testing.T) {
	cfg := corpus.MixedConfig{Languages: segLangs, Docs: 6, SegmentsPerDoc: 3, WordsPerSegment: 40, Seed: 5}
	a, err := corpus.GenerateMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := corpus.GenerateMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateMixed is not deterministic for equal configs")
	}
	for _, d := range a {
		if len(d.Segments) != 3 {
			t.Fatalf("doc %d has %d segments", d.ID, len(d.Segments))
		}
		if d.Segments[0].Start != 0 || d.Segments[len(d.Segments)-1].End != len(d.Text) {
			t.Errorf("doc %d segments do not cover the text: %+v", d.ID, d.Segments)
		}
		for i, seg := range d.Segments {
			if seg.Start >= seg.End {
				t.Errorf("doc %d segment %d empty: %+v", d.ID, i, seg)
			}
			if i > 0 {
				if seg.Start != d.Segments[i-1].End {
					t.Errorf("doc %d segment %d does not abut previous", d.ID, i)
				}
				if seg.Lang == d.Segments[i-1].Lang {
					t.Errorf("doc %d segments %d,%d share language %q", d.ID, i-1, i, seg.Lang)
				}
			}
		}
	}
	if _, err := corpus.GenerateMixed(corpus.MixedConfig{Languages: []string{"en"}}); err == nil {
		t.Error("single-language mixed config accepted")
	}
}
