package core

import (
	"strings"
	"testing"

	"bloomlang/internal/ngram"
)

// TestBackendStringParseRoundTrip pins the registry contract the CLIs
// rely on: every registered backend's String() parses back to itself,
// and the historical aliases keep working.
func TestBackendStringParseRoundTrip(t *testing.T) {
	for _, b := range []Backend{BackendBloom, BackendDirect, BackendClassic, BackendBlocked} {
		got, err := ParseBackend(b.String())
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", b.String(), err)
		}
		if got != b {
			t.Errorf("ParseBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
	aliases := map[string]Backend{
		"bloom":   BackendBloom,
		"direct":  BackendDirect,
		"classic": BackendClassic,
		"blocked": BackendBlocked,
	}
	for name, want := range aliases {
		got, err := ParseBackend(name)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseBackend(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseBackendUnknownNameListsChoices(t *testing.T) {
	_, err := ParseBackend("fpga")
	if err == nil {
		t.Fatal("ParseBackend accepted an unknown name")
	}
	if !strings.Contains(err.Error(), "parallel-bloom") {
		t.Errorf("error %q does not list known backends", err)
	}
}

func TestBackendsListsCanonicalNames(t *testing.T) {
	names := Backends()
	want := map[string]bool{"parallel-bloom": false, "direct-lookup": false, "classic-bloom": false, "blocked-bloom": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Backends() = %v is missing %q", names, n)
		}
	}
}

func TestBackendStringUnregisteredValue(t *testing.T) {
	if got := Backend(9999).String(); got != "backend(9999)" {
		t.Errorf("String() = %q", got)
	}
	if _, err := New(&ProfileSet{Config: DefaultConfig(), Profiles: trainMini(t, Config{TopT: 500}).Profiles}, Backend(9999)); err == nil {
		t.Error("New accepted an unregistered backend")
	}
}

// acceptAll matches every n-gram — a degenerate membership structure
// that exists only to prove third-party backends plug in.
type acceptAll struct{}

func (acceptAll) Test(uint32) bool { return true }

func TestRegisterBackendExtendsClassifier(t *testing.T) {
	b := RegisterBackend("test-accept-all", func(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
		return acceptAll{}, nil
	}, "accept")
	if got, err := ParseBackend("accept"); err != nil || got != b {
		t.Fatalf("ParseBackend(alias) = %v, %v", got, err)
	}
	if b.String() != "test-accept-all" {
		t.Fatalf("String() = %q", b.String())
	}
	ps := trainMini(t, Config{TopT: 500})
	det, err := NewDetector(ps, WithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("the registry must accept custom membership structures")
	m := det.Detect(doc)
	// Every language matches every n-gram, so the winner is an exact tie
	// broken to the first language, with score 1.
	if m.Unknown || m.Score != 1 || m.Count != m.NGrams {
		t.Errorf("accept-all detect = %+v", m)
	}
	if m.Lang != det.Languages()[0] {
		t.Errorf("tie broke to %q, want first language %q", m.Lang, det.Languages()[0])
	}
}

// rejectAll is a fused kernel that matches nothing — it exists only to
// prove third-party fused backends plug in through the registry.
type rejectAll struct{ langs int }

func (rejectAll) AccumulateInto([]int, []uint32) {}
func (rejectAll) Test(int, uint32) bool          { return false }

func TestRegisterFusedBackendExtendsClassifier(t *testing.T) {
	b := RegisterFusedBackend("test-reject-all", func(cfg Config, ps *ProfileSet) (Kernel, error) {
		return rejectAll{langs: len(ps.Profiles)}, nil
	}, "reject")
	if got, err := ParseBackend("reject"); err != nil || got != b {
		t.Fatalf("ParseBackend(alias) = %v, %v", got, err)
	}
	ps := trainMini(t, Config{TopT: 500})
	det, err := NewDetector(ps, WithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("fused registrations must flow through the same registry")
	m := det.Detect(doc)
	// Nothing matches anything: zero counts everywhere, tie broken to
	// the first language with score 0.
	if m.Count != 0 || m.Score != 0 || m.NGrams == 0 {
		t.Errorf("reject-all detect = %+v", m)
	}
}

func TestBlockedBackendRejectsSingleHash(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	single := &ProfileSet{Config: ps.Config, Profiles: ps.Profiles}
	single.Config.K = 1
	if _, err := New(single, BackendBlocked); err == nil {
		t.Error("blocked backend accepted k=1 (no bit probes left after block select)")
	}
}

func TestRegisterBackendRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterBackend("parallel-bloom", func(cfg Config, index int, p *ngram.Profile) (Matcher, error) {
		return acceptAll{}, nil
	})
}
