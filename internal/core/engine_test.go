package core

import (
	"testing"
	"time"
)

func miniEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	ps := trainMini(t, Config{TopT: 1000})
	c, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(c, workers)
}

func TestEngineDefaults(t *testing.T) {
	e := miniEngine(t, 0)
	if e.Workers() <= 0 {
		t.Errorf("Workers = %d, want positive default", e.Workers())
	}
	if e.Classifier() == nil {
		t.Error("Classifier accessor nil")
	}
}

func TestClassifyAllMatchesSequential(t *testing.T) {
	e := miniEngine(t, 8)
	corp := getMiniCorpus(t)
	docs := corp.TestDocuments("")
	par := e.ClassifyAll(docs)
	c := e.Classifier()
	for i, d := range docs {
		seq := c.Classify(d.Text)
		if par[i].Best != seq.Best || par[i].NGrams != seq.NGrams {
			t.Fatalf("doc %d: parallel result differs from sequential", i)
		}
		for j := range seq.Counts {
			if par[i].Counts[j] != seq.Counts[j] {
				t.Fatalf("doc %d: count %d differs", i, j)
			}
		}
	}
}

func TestClassifyAllEmpty(t *testing.T) {
	e := miniEngine(t, 4)
	if got := e.ClassifyAll(nil); len(got) != 0 {
		t.Errorf("ClassifyAll(nil) returned %d results", len(got))
	}
}

func TestClassifyAllMoreWorkersThanDocs(t *testing.T) {
	e := miniEngine(t, 64)
	corp := getMiniCorpus(t)
	docs := corp.Test["en"][:2]
	results := e.ClassifyAll(docs)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.BestLanguage(e.Classifier().Languages()) != "en" {
			t.Errorf("doc %d misclassified", i)
		}
	}
}

func TestMeasure(t *testing.T) {
	e := miniEngine(t, 0)
	corp := getMiniCorpus(t)
	docs := corp.TestDocuments("")
	rep := e.Measure(docs)
	if rep.Docs != len(docs) {
		t.Errorf("Docs = %d, want %d", rep.Docs, len(docs))
	}
	if rep.Bytes <= 0 {
		t.Error("Bytes not positive")
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not positive")
	}
	if rep.MBPerSec() <= 0 {
		t.Error("MBPerSec not positive")
	}
}

func TestThroughputReportMath(t *testing.T) {
	rep := ThroughputReport{Bytes: 10 << 20, Elapsed: 2 * time.Second}
	if got := rep.MBPerSec(); got < 4.99 || got > 5.01 {
		t.Errorf("MBPerSec = %v, want 5", got)
	}
	zero := ThroughputReport{Bytes: 100}
	if zero.MBPerSec() != 0 {
		t.Error("zero elapsed must give zero throughput")
	}
}

func TestEvaluate(t *testing.T) {
	e := miniEngine(t, 0)
	corp := getMiniCorpus(t)
	ev := e.Evaluate(corp)
	if ev.Docs == 0 {
		t.Fatal("no documents evaluated")
	}
	if len(ev.PerLanguage) != len(corp.Languages) {
		t.Fatalf("PerLanguage has %d entries, want %d", len(ev.PerLanguage), len(corp.Languages))
	}
	if ev.Average < 0.9 {
		t.Errorf("average accuracy %.3f below 0.9 on easy corpus", ev.Average)
	}
	if ev.Min > ev.Average || ev.Average > ev.Max {
		t.Errorf("Min %.3f / Average %.3f / Max %.3f not ordered", ev.Min, ev.Average, ev.Max)
	}
	// Confusion diagonal must dominate.
	for truth, row := range ev.Confusion {
		diag := row[truth]
		for pred, n := range row {
			if pred != truth && n > diag {
				t.Errorf("%s: confusion row dominated by %s (%d > %d)", truth, pred, n, diag)
			}
		}
	}
}

func TestTopConfusion(t *testing.T) {
	ev := Evaluation{Confusion: map[string]map[string]int{
		"es": {"es": 90, "pt": 8, "fr": 2},
		"fi": {"fi": 100},
	}}
	truth, pred, count, ok := ev.TopConfusion()
	if !ok || truth != "es" || pred != "pt" || count != 8 {
		t.Errorf("TopConfusion = %s->%s x%d ok=%v, want es->pt x8", truth, pred, count, ok)
	}
	perfect := Evaluation{Confusion: map[string]map[string]int{"en": {"en": 5}}}
	if _, _, _, ok := perfect.TopConfusion(); ok {
		t.Error("perfect evaluation reported a confusion")
	}
}

func TestEngineWorkerScalingConsistency(t *testing.T) {
	// Same inputs, different worker counts: identical outputs.
	corp := getMiniCorpus(t)
	docs := corp.TestDocuments("")
	r1 := miniEngine(t, 1).ClassifyAll(docs)
	r8 := miniEngine(t, 8).ClassifyAll(docs)
	for i := range r1 {
		if r1[i].Best != r8[i].Best {
			t.Fatalf("doc %d classified differently under different worker counts", i)
		}
	}
}
