package core

import (
	"strings"
	"testing"

	"bloomlang/internal/corpus"
	"bloomlang/internal/ngram"
)

// miniCorpus generates a small 4-language corpus once per test binary.
var miniCorpus *corpus.Corpus

func getMiniCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	if miniCorpus == nil {
		cfg := corpus.Config{
			Languages:       []string{"en", "fi", "es", "pt"},
			DocsPerLanguage: 30,
			WordsPerDoc:     150,
			TrainFraction:   0.3,
			Seed:            7,
		}
		c, err := corpus.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		miniCorpus = c
	}
	return miniCorpus
}

func trainMini(t testing.TB, cfg Config) *ProfileSet {
	t.Helper()
	ps, err := Train(cfg, getMiniCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.N != 4 || cfg.TopT != 5000 || cfg.K != 4 || cfg.MBits != 16*1024 {
		t.Errorf("DefaultConfig = %+v, want the paper's §4 parameters", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 9},
		{TopT: -1},
		{K: -2},
		{MBits: 1000},
		{Subsample: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, cfg)
		}
	}
}

func TestConfigExpectedFalsePositiveRate(t *testing.T) {
	cfg := DefaultConfig()
	// Table 1 row 1: five per thousand.
	f := cfg.ExpectedFalsePositiveRate()
	if f < 0.004 || f > 0.006 {
		t.Errorf("expected fp rate = %v, want about 0.005", f)
	}
}

func TestTrainProducesSortedProfiles(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	langs := ps.Languages()
	want := []string{"en", "es", "fi", "pt"}
	if len(langs) != len(want) {
		t.Fatalf("trained languages %v, want %v", langs, want)
	}
	for i := range want {
		if langs[i] != want[i] {
			t.Errorf("language %d = %q, want %q", i, langs[i], want[i])
		}
	}
	for _, p := range ps.Profiles {
		if p.Size() == 0 {
			t.Errorf("%s: empty profile", p.Language)
		}
		if p.Size() > 500 {
			t.Errorf("%s: profile size %d exceeds TopT", p.Language, p.Size())
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainFromTexts(DefaultConfig(), nil); err == nil {
		t.Error("TrainFromTexts with no languages succeeded")
	}
	if _, err := TrainFromTexts(DefaultConfig(), map[string][][]byte{"en": nil}); err == nil {
		t.Error("TrainFromTexts with empty language succeeded")
	}
	bad := Config{MBits: 1000}
	if _, err := TrainFromTexts(bad, map[string][][]byte{"en": {[]byte("hello world")}}); err == nil {
		t.Error("TrainFromTexts with invalid config succeeded")
	}
}

func TestBackendString(t *testing.T) {
	if BackendBloom.String() != "parallel-bloom" ||
		BackendDirect.String() != "direct-lookup" ||
		BackendClassic.String() != "classic-bloom" {
		t.Error("backend names wrong")
	}
	if !strings.Contains(Backend(9).String(), "9") {
		t.Error("unknown backend String not diagnostic")
	}
}

func TestNewValidation(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	if _, err := New(&ProfileSet{Config: ps.Config}, BackendBloom); err == nil {
		t.Error("New with empty profiles succeeded")
	}
	if _, err := New(ps, Backend(42)); err == nil {
		t.Error("New with unknown backend succeeded")
	}
	// Mismatched profile n.
	mixed := &ProfileSet{Config: ps.Config, Profiles: []*ngram.Profile{{Language: "xx", N: 3, Grams: []uint32{1}}}}
	if _, err := New(mixed, BackendBloom); err == nil {
		t.Error("New with mismatched profile n succeeded")
	}
}

func TestClassifyAllBackendsAgreeOnEasyDocs(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000})
	corp := getMiniCorpus(t)
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic} {
		c, err := New(ps, backend)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		correct, total := 0, 0
		for _, lang := range corp.Languages {
			for _, d := range corp.Test[lang] {
				r := c.Classify(d.Text)
				if r.BestLanguage(c.Languages()) == lang {
					correct++
				}
				total++
			}
		}
		acc := float64(correct) / float64(total)
		if acc < 0.9 {
			t.Errorf("%v: accuracy %.2f below 0.9", backend, acc)
		}
	}
}

func TestClassifyEmptyDocument(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	c, err := New(ps, BackendDirect)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Classify(nil)
	if r.Best != -1 || r.Second != -1 || r.NGrams != 0 {
		t.Errorf("empty doc result = %+v, want no winner", r)
	}
	if r.BestLanguage(c.Languages()) != "" {
		t.Error("empty doc has a best language")
	}
	if r.Margin() != 0 {
		t.Error("empty doc has nonzero margin")
	}
}

func TestClassifyShortDocument(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	c, _ := New(ps, BackendDirect)
	// Shorter than n: no n-grams.
	r := c.Classify([]byte("abc"))
	if r.NGrams != 0 {
		t.Errorf("3-byte doc produced %d n-grams", r.NGrams)
	}
}

func TestBloomNeverUndercountsDirect(t *testing.T) {
	// Bloom filters have no false negatives, so for every language the
	// Bloom match count must be >= the exact direct-lookup count.
	ps := trainMini(t, Config{TopT: 1000})
	bloomC, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	directC, err := New(ps, BackendDirect)
	if err != nil {
		t.Fatal(err)
	}
	corp := getMiniCorpus(t)
	for _, lang := range corp.Languages {
		for _, d := range corp.Test[lang][:3] {
			rb := bloomC.Classify(d.Text)
			rd := directC.Classify(d.Text)
			for i := range rb.Counts {
				if rb.Counts[i] < rd.Counts[i] {
					t.Fatalf("bloom count %d < direct count %d for language %s",
						rb.Counts[i], rd.Counts[i], bloomC.Languages()[i])
				}
			}
		}
	}
}

func TestSubsampleReducesNGrams(t *testing.T) {
	cfg := Config{TopT: 500, Subsample: 2}
	ps := trainMini(t, cfg)
	c, err := New(ps, BackendDirect)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(trainMini(t, Config{TopT: 500}), BackendDirect)
	if err != nil {
		t.Fatal(err)
	}
	doc := getMiniCorpus(t).Test["en"][0].Text
	rSub := c.Classify(doc)
	rFull := full.Classify(doc)
	if rSub.NGrams >= rFull.NGrams {
		t.Errorf("subsampled %d n-grams >= full %d", rSub.NGrams, rFull.NGrams)
	}
	// Still classifies correctly: subsampling keeps satisfactory
	// accuracy (§5.2).
	if rSub.BestLanguage(c.Languages()) != "en" {
		t.Error("subsampled classification wrong on easy document")
	}
}

func TestResultMarginAndWinners(t *testing.T) {
	r := Result{Counts: []int{5, 9, 3}, NGrams: 10}
	r.selectWinners()
	if r.Best != 1 || r.Second != 0 {
		t.Errorf("winners = %d,%d want 1,0", r.Best, r.Second)
	}
	if r.Margin() != 4 {
		t.Errorf("margin = %d, want 4", r.Margin())
	}
	// Tie breaks to the lower index.
	r2 := Result{Counts: []int{7, 7}, NGrams: 5}
	r2.selectWinners()
	if r2.Best != 0 || r2.Second != 1 {
		t.Errorf("tie winners = %d,%d want 0,1", r2.Best, r2.Second)
	}
}

func TestFilterAccessor(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	b, _ := New(ps, BackendBloom)
	if b.Filter(0) == nil {
		t.Error("bloom backend returned nil filter")
	}
	d, _ := New(ps, BackendDirect)
	if d.Filter(0) != nil {
		t.Error("direct backend returned a bloom filter")
	}
}

func TestClassifierDeterministicAcrossConstructions(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	a, _ := New(ps, BackendBloom)
	b, _ := New(ps, BackendBloom)
	doc := getMiniCorpus(t).Test["fi"][0].Text
	ra, rb := a.Classify(doc), b.Classify(doc)
	for i := range ra.Counts {
		if ra.Counts[i] != rb.Counts[i] {
			t.Fatalf("counts differ between identically-seeded classifiers")
		}
	}
}
