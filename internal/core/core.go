// Package core implements the paper's primary contribution in software:
// multi-language classification by n-gram match counting against
// per-language membership structures (§2, HAIL steps 1–3, with the
// paper's Parallel Bloom Filters as the membership structure).
//
// The flow is exactly the paper's:
//
//  1. Preprocessing generates an n-gram profile per language from a
//     representative sample of documents (Train).
//  2. A document's n-grams are tested for membership in every language
//     profile; each match increments that language's counter.
//  3. The language with the highest match count is the classification.
//
// Three interchangeable membership backends are provided: the Parallel
// Bloom Filter (the paper's design), a direct lookup table (HAIL's
// design, exact membership), and a classic single-vector Bloom filter
// (an ablation). The simulated FPGA datapath in internal/xd1000 uses
// the same Parallel Bloom Filter code, so hardware-simulated and
// software classifications agree bit-for-bit.
package core

import (
	"fmt"
	"sort"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/bloom"
	"bloomlang/internal/corpus"
	"bloomlang/internal/ngram"
)

// Config carries the classifier parameters studied in §5.2.
type Config struct {
	// N is the n-gram length; the paper uses 4 (§4).
	N int
	// TopT is the profile size t; the paper uses 5,000 (§4).
	TopT int
	// K is the number of H3 hash functions per Bloom filter.
	K int
	// MBits is the length m of each of the K bit-vectors, in bits.
	// Table 1 explores 16Kbit, 8Kbit and 4Kbit.
	MBits uint32
	// Seed drives H3 matrix generation; equal seeds give identical
	// classifiers.
	Seed int64
	// Subsample tests only every s-th document n-gram when s > 1
	// (HAIL-style input subsampling, §3.3).
	Subsample int
}

// DefaultConfig returns the paper's most conservative configuration:
// 4-grams, t=5000, k=4 hash functions, m=16 Kbit vectors.
func DefaultConfig() Config {
	return Config{
		N:         ngram.DefaultN,
		TopT:      ngram.DefaultProfileSize,
		K:         4,
		MBits:     16 * 1024,
		Seed:      1,
		Subsample: 1,
	}
}

func (c *Config) applyDefaults() {
	if c.N == 0 {
		c.N = ngram.DefaultN
	}
	if c.TopT == 0 {
		c.TopT = ngram.DefaultProfileSize
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.MBits == 0 {
		c.MBits = 16 * 1024
	}
	if c.Subsample == 0 {
		c.Subsample = 1
	}
}

// WithDefaults returns the configuration with zero fields replaced by
// the package defaults — the effective configuration Train and New
// operate under, and the one a trained ProfileSet records.
func (c Config) WithDefaults() Config {
	c.applyDefaults()
	return c
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	cfg := c
	cfg.applyDefaults()
	if cfg.N < 1 || cfg.N > ngram.MaxN {
		return fmt.Errorf("core: n=%d out of range [1,%d]", cfg.N, ngram.MaxN)
	}
	if cfg.TopT < 1 {
		return fmt.Errorf("core: profile size %d must be positive", cfg.TopT)
	}
	if cfg.K < 1 {
		return fmt.Errorf("core: k=%d must be positive", cfg.K)
	}
	if cfg.MBits == 0 || cfg.MBits&(cfg.MBits-1) != 0 {
		return fmt.Errorf("core: m=%d bits is not a power of two", cfg.MBits)
	}
	if cfg.Subsample < 1 {
		return fmt.Errorf("core: subsample %d must be >= 1", cfg.Subsample)
	}
	return nil
}

// ExpectedFalsePositiveRate returns the §3.1 model value for this
// configuration at profile load N=TopT.
func (c Config) ExpectedFalsePositiveRate() float64 {
	cfg := c
	cfg.applyDefaults()
	return bloom.FalsePositiveRate(cfg.TopT, cfg.MBits, cfg.K)
}

// ProfileSet is a trained set of language profiles plus the
// configuration they were trained under.
type ProfileSet struct {
	Config   Config
	Profiles []*ngram.Profile // sorted by language code
	// blocked is the pre-programmed blocked-backend layout carried by
	// an NGPS v2 file, when present. New(ps, BackendBlocked) uses it
	// directly (after a consistency check) instead of re-programming
	// the filters from Profiles at load time.
	blocked *bloom.BlockedSet
}

// HasBlockedLayout reports whether the set carries a pre-programmed
// blocked-backend layout (read from an NGPS v2 file or materialized by
// WriteToBlocked).
func (ps *ProfileSet) HasBlockedLayout() bool { return ps.blocked != nil }

// Train builds per-language profiles from the corpus training split.
func Train(cfg Config, corp *corpus.Corpus) (*ProfileSet, error) {
	texts := make(map[string][][]byte, len(corp.Languages))
	for _, lang := range corp.Languages {
		texts[lang] = corp.TrainTexts(lang)
	}
	return TrainFromTexts(cfg, texts)
}

// TrainFromTexts builds per-language profiles from raw training texts
// keyed by language code.
func TrainFromTexts(cfg Config, texts map[string][][]byte) (*ProfileSet, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("core: no training languages")
	}
	langs := make([]string, 0, len(texts))
	for lang := range texts {
		langs = append(langs, lang)
	}
	sort.Strings(langs)
	ps := &ProfileSet{Config: cfg}
	for _, lang := range langs {
		if len(texts[lang]) == 0 {
			return nil, fmt.Errorf("core: language %q has no training documents", lang)
		}
		p, err := ngram.ProfileFromTexts(lang, texts[lang], cfg.N, cfg.TopT)
		if err != nil {
			return nil, err
		}
		ps.Profiles = append(ps.Profiles, p)
	}
	return ps, nil
}

// Languages returns the trained language codes in classifier order.
func (ps *ProfileSet) Languages() []string {
	langs := make([]string, len(ps.Profiles))
	for i, p := range ps.Profiles {
		langs[i] = p.Language
	}
	return langs
}

// Backend selects the membership structure a Classifier uses. The
// built-in values below are registered in backend.go; additional
// backends can be added at init time with RegisterBackend.
type Backend int

const (
	// BackendBloom uses the paper's Parallel Bloom Filter.
	BackendBloom Backend = iota
	// BackendDirect uses an exact lookup table (HAIL's approach).
	BackendDirect
	// BackendClassic uses a classic single-vector Bloom filter with the
	// same total bit budget (k·m bits) as the parallel variant.
	BackendClassic
	// BackendBlocked uses a cache-line-blocked Bloom filter fused
	// across all languages: one 512-bit block per n-gram per language,
	// all k probes inside it, per-language blocks contiguous so one
	// n-gram's full scoring pass touches L consecutive cache lines.
	BackendBlocked
)

// directTable is an exact membership bitset over the packed n-gram
// space, the software equivalent of HAIL's off-chip SRAM table.
type directTable struct {
	bits []uint64
}

func newDirectTable(nBits uint) *directTable {
	return &directTable{bits: make([]uint64, (uint64(1)<<nBits+63)/64)}
}

func (d *directTable) add(g uint32)       { d.bits[g>>6] |= 1 << (g & 63) }
func (d *directTable) Test(g uint32) bool { return d.bits[g>>6]&(1<<(g&63)) != 0 }

// Classifier tests document n-grams against every language profile in
// turn and reports match counts — the software realization of the
// multiple language classifier of §3.2.
type Classifier struct {
	cfg      Config
	backend  Backend
	langs    []string
	matchers []Matcher
	fused    Kernel            // non-nil for fused backends; scores all languages per n-gram
	filters  []*bloom.Parallel // non-nil iff every matcher is a Parallel Bloom Filter
	// extractor is the prototype n-gram extractor, configured once at
	// construction. It is never fed directly: the hot paths copy it by
	// value, giving every call (and every worker) its own sliding-window
	// state without a per-call allocation.
	extractor ngram.Extractor
}

// New builds a classifier over the profile set with the chosen backend.
func New(ps *ProfileSet, backend Backend) (*Classifier, error) {
	cfg := ps.Config
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ps.Profiles) == 0 {
		return nil, fmt.Errorf("core: empty profile set")
	}
	build, buildSet, err := backend.builders()
	if err != nil {
		return nil, err
	}
	c := &Classifier{cfg: cfg, backend: backend}
	e, err := ngram.NewExtractor(cfg.N)
	if err != nil {
		return nil, err
	}
	if cfg.Subsample > 1 {
		if err := e.SetSubsample(cfg.Subsample); err != nil {
			return nil, err
		}
	}
	c.extractor = *e
	for _, p := range ps.Profiles {
		if p.N != cfg.N {
			return nil, fmt.Errorf("core: profile %q has n=%d, config has n=%d", p.Language, p.N, cfg.N)
		}
		c.langs = append(c.langs, p.Language)
	}
	if buildSet != nil {
		// Fused backend: one kernel scores every language per n-gram;
		// matchers are per-language views of the same kernel.
		k, err := buildSet(cfg, ps)
		if err != nil {
			return nil, err
		}
		c.fused = k
		for i := range ps.Profiles {
			c.matchers = append(c.matchers, kernelMatcher{k: k, lang: i})
		}
		return c, nil
	}
	for i, p := range ps.Profiles {
		m, err := build(cfg, i, p)
		if err != nil {
			return nil, err
		}
		c.matchers = append(c.matchers, m)
		if f, ok := m.(*bloom.Parallel); ok {
			c.filters = append(c.filters, f)
		}
	}
	// The XD1000 simulator borrows per-language Parallel Bloom Filters;
	// expose them only when every language has one.
	if len(c.filters) != len(c.matchers) {
		c.filters = nil
	}
	return c, nil
}

// Languages returns the classifier's language order; Result.Counts uses
// the same order.
func (c *Classifier) Languages() []string { return c.langs }

// Config returns the classifier's effective configuration.
func (c *Classifier) Config() Config { return c.cfg }

// Backend returns the membership backend in use.
func (c *Classifier) Backend() Backend { return c.backend }

// Filter returns the Parallel Bloom Filter for language index i, or nil
// for non-Bloom backends. The XD1000 simulator borrows these so the
// simulated datapath and the software classifier share state.
func (c *Classifier) Filter(i int) *bloom.Parallel {
	if c.filters == nil {
		return nil
	}
	return c.filters[i]
}

// Result is the outcome of classifying one document.
type Result struct {
	// Counts holds per-language match counts in Languages() order.
	Counts []int
	// NGrams is the number of n-grams tested.
	NGrams int
	// Best is the index of the winning language (highest count, ties
	// broken towards the lower index, i.e. lexicographically earlier
	// language). -1 when no n-grams were tested.
	Best int
	// Second is the index of the runner-up, or -1.
	Second int
}

// BestLanguage returns the winning language code, or "" for an empty
// document.
func (r Result) BestLanguage(langs []string) string {
	if r.Best < 0 || r.Best >= len(langs) {
		return ""
	}
	return langs[r.Best]
}

// Margin returns the winner's lead over the runner-up in match counts.
// §5.1 observes that this margin is normally much larger than the false
// positive noise, which is why Bloom false positives barely affect
// accuracy.
func (r Result) Margin() int {
	if r.Best < 0 || r.Second < 0 {
		return 0
	}
	return r.Counts[r.Best] - r.Counts[r.Second]
}

// Classify runs the full pipeline on one raw ISO-8859-1 document:
// alphabet translation, n-gram extraction, membership testing, match
// counting, and winner selection.
func (c *Classifier) Classify(doc []byte) Result {
	gs := c.ExtractGrams(nil, doc)
	return c.ClassifyGrams(gs)
}

// ExtractGrams translates and extracts the document's packed n-grams
// into dst (which may be nil), honouring the configured subsampling.
// The extractor state is a value copy of the construction-time
// prototype, so concurrent calls share nothing and nothing is
// allocated beyond dst growth.
func (c *Classifier) ExtractGrams(dst []uint32, doc []byte) []uint32 {
	e := c.extractor
	codes := alphabet.TranslateAll(doc)
	return e.Feed(dst, codes)
}

// extractInto is the allocation-free extraction path: it translates doc
// into the reusable codes buffer (grown only when too small) and
// appends the packed n-grams to dst. Both slices come back for reuse.
func (c *Classifier) extractInto(dst []uint32, codes []alphabet.Code, doc []byte) ([]uint32, []alphabet.Code) {
	if cap(codes) < len(doc) {
		codes = make([]alphabet.Code, len(doc))
	}
	codes = codes[:len(doc)]
	alphabet.TranslateInto(codes, doc)
	e := c.extractor
	return e.Feed(dst, codes), codes
}

// ClassifyGrams counts matches for pre-extracted n-grams. This is the
// inner loop the hardware implements: every n-gram is tested against
// every language's filter and counters are incremented on match.
func (c *Classifier) ClassifyGrams(gs []uint32) Result {
	r := Result{Counts: make([]int, len(c.matchers)), NGrams: len(gs), Best: -1, Second: -1}
	c.countInto(r.Counts, gs)
	r.selectWinners()
	return r
}

// countInto runs the match-counting inner loop into a caller-owned
// counts slice (len(Languages())), allocating nothing.
func (c *Classifier) countInto(counts []int, gs []uint32) {
	for i := range counts {
		counts[i] = 0
	}
	c.accumulateInto(counts, gs)
}

// accumulateInto adds each language's match count over gs into counts.
// Fused backends score all languages per n-gram in one pass through
// the kernel; per-language backends walk the languages×grams loop.
// Streams accumulate across chunks through the same path.
func (c *Classifier) accumulateInto(counts []int, gs []uint32) {
	if c.fused != nil {
		c.fused.AccumulateInto(counts, gs)
		return
	}
	for i, m := range c.matchers {
		count := 0
		for _, g := range gs {
			if m.Test(g) {
				count++
			}
		}
		counts[i] += count
	}
}

func (r *Result) selectWinners() {
	if r.NGrams == 0 {
		return
	}
	r.Best, r.Second = winners(r.Counts)
}

// winners returns the indices of the highest and second-highest counts.
// Ties break towards the lower index (the lexicographically earlier
// language, since profiles are sorted by code). second is -1 when there
// is only one language.
func winners(counts []int) (best, second int) {
	best, second = -1, -1
	for i, n := range counts {
		switch {
		case best == -1 || n > counts[best]:
			second = best
			best = i
		case second == -1 || n > counts[second]:
			second = i
		}
	}
	return best, second
}
