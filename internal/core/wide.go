package core

import (
	"fmt"
	"sort"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/bloom"
	"bloomlang/internal/ngram"
)

// WideClassifier implements the §3.3 Unicode extension: the same
// match-counting classifier over 16-bit characters, with Parallel
// Bloom Filters whose hashes take the wider packed n-gram. A direct
// lookup table "grows exponentially in the size of the alphabet"; the
// Bloom filter's storage is unchanged.
type WideClassifier struct {
	cfg     Config
	langs   []string
	filters []*bloom.Parallel64
}

// TrainWide builds a wide classifier from UTF-8 training texts keyed by
// language. The Config fields have their usual meanings; N is capped at
// 4 (a 4-gram of 16-bit characters fills the 64-bit hash input).
func TrainWide(cfg Config, texts map[string][]string) (*WideClassifier, error) {
	cfg.applyDefaults()
	if cfg.N > ngram.MaxWideN {
		return nil, fmt.Errorf("core: wide n=%d exceeds %d", cfg.N, ngram.MaxWideN)
	}
	if cfg.MBits == 0 || cfg.MBits&(cfg.MBits-1) != 0 {
		return nil, fmt.Errorf("core: m=%d bits is not a power of two", cfg.MBits)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("core: no training languages")
	}
	langs := make([]string, 0, len(texts))
	for lang := range texts {
		langs = append(langs, lang)
	}
	sort.Strings(langs)
	c := &WideClassifier{cfg: cfg}
	for i, lang := range langs {
		if len(texts[lang]) == 0 {
			return nil, fmt.Errorf("core: language %q has no training documents", lang)
		}
		p, err := ngram.WideProfileFromTexts(lang, texts[lang], cfg.N, cfg.TopT)
		if err != nil {
			return nil, err
		}
		f, err := bloom.NewParallel64(cfg.K, ngram.WideBitsFor(cfg.N), cfg.MBits, cfg.Seed+int64(i)*1000003)
		if err != nil {
			return nil, err
		}
		f.ProgramAll(p.Grams)
		c.langs = append(c.langs, lang)
		c.filters = append(c.filters, f)
	}
	return c, nil
}

// Languages returns the classifier's language order.
func (c *WideClassifier) Languages() []string { return c.langs }

// Config returns the effective configuration.
func (c *WideClassifier) Config() Config { return c.cfg }

// Classify runs the wide pipeline on UTF-8 text.
func (c *WideClassifier) Classify(text string) Result {
	e, err := ngram.NewWideExtractor(c.cfg.N)
	if err != nil {
		panic(err) // config validated at TrainWide
	}
	gs := e.Feed(nil, alphabet.TranslateWide(text))
	r := Result{Counts: make([]int, len(c.filters)), NGrams: len(gs), Best: -1, Second: -1}
	for i, f := range c.filters {
		count := 0
		for _, g := range gs {
			if f.Test(g) {
				count++
			}
		}
		r.Counts[i] = count
	}
	r.selectWinners()
	return r
}
