package core

import (
	"io"
	"runtime"
	"sort"
	"sync"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/corpus"
)

// Match is one classified document: the winning language with a
// normalized confidence score and winner margin, or an explicit Unknown
// outcome when the document cannot be called confidently. It is the
// unit every Detector method returns.
type Match struct {
	// Lang is the winning language code, or "" when Unknown.
	Lang string
	// Count is the winner's raw match count — how many of the
	// document's n-grams hit the winning language's profile.
	Count int
	// NGrams is the number of n-grams tested.
	NGrams int
	// Score is the normalized confidence Count/NGrams in [0,1]: the
	// fraction of document n-grams found in the winner's profile.
	Score float64
	// Margin is the winner's normalized lead over the runner-up,
	// (bestCount − secondCount)/NGrams — the §5.1 winner margin that
	// makes the classifier robust to Bloom filter false positives. With
	// a single trained language there is no runner-up and Margin equals
	// Score.
	Margin float64
	// Unknown reports that no language was called: the document had
	// fewer n-grams than MinNGrams (an empty document has zero), or the
	// margin fell below MinMargin (an exact tie has margin 0). Count,
	// NGrams, Score and Margin still describe the would-be winner for
	// diagnostics; Lang is "".
	Unknown bool
}

// detectorOptions collects the functional-option state for NewDetector.
type detectorOptions struct {
	backend   Backend
	workers   int
	minMargin float64
	minNGrams int
}

// DetectorOption configures a Detector at construction.
type DetectorOption func(*detectorOptions)

// WithBackend selects the membership backend (default BackendBloom).
// Ignored by NewDetectorFromClassifier, where the classifier already
// fixed the backend.
func WithBackend(b Backend) DetectorOption {
	return func(o *detectorOptions) { o.backend = b }
}

// WithWorkers bounds DetectBatch fan-out; n <= 0 means GOMAXPROCS.
func WithWorkers(n int) DetectorOption {
	return func(o *detectorOptions) { o.workers = n }
}

// WithMinMargin makes Detect return Unknown when the normalized winner
// margin falls below m. The default 0 accepts everything, including
// exact ties (broken towards the lexicographically earlier language, as
// the legacy Classifier did); any positive threshold turns ties into
// explicit Unknown outcomes.
func WithMinMargin(m float64) DetectorOption {
	return func(o *detectorOptions) { o.minMargin = m }
}

// WithMinNGrams makes Detect return Unknown for documents with fewer
// than n testable n-grams. The effective minimum is 1: a document with
// no n-grams at all is always Unknown.
func WithMinNGrams(n int) DetectorOption {
	return func(o *detectorOptions) { o.minNGrams = n }
}

// Detector is the single entry point for language detection: it owns a
// classifier, a worker bound for batch work, the unknown-thresholding
// policy, and reusable per-call scratch buffers, so the one-document
// hot path allocates nothing after warm-up. A Detector is safe for
// concurrent use by any number of goroutines.
type Detector struct {
	clf       *Classifier
	workers   int
	minMargin float64
	minNGrams int
	pool      sync.Pool // of *scratch
	segPool   sync.Pool // of *SpanStream, for the one-shot segmentation paths
}

// scratch is the per-call working set: the translated-code buffer, the
// extracted n-gram buffer, and the per-language counters. Detect
// borrows one from the pool and returns it, so a warm Detector's hot
// path performs zero allocations.
type scratch struct {
	codes  []alphabet.Code
	grams  []uint32
	counts []int
}

// NewDetector builds a detector over trained profiles.
func NewDetector(ps *ProfileSet, opts ...DetectorOption) (*Detector, error) {
	o := gatherOptions(opts)
	clf, err := New(ps, o.backend)
	if err != nil {
		return nil, err
	}
	return newDetector(clf, o), nil
}

// NewDetectorFromClassifier wraps an existing classifier; WithBackend
// is ignored in favour of the classifier's own backend.
func NewDetectorFromClassifier(clf *Classifier, opts ...DetectorOption) *Detector {
	return newDetector(clf, gatherOptions(opts))
}

func gatherOptions(opts []DetectorOption) detectorOptions {
	o := detectorOptions{backend: BackendBloom}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.minNGrams < 1 {
		o.minNGrams = 1
	}
	if o.minMargin < 0 {
		o.minMargin = 0
	}
	return o
}

func newDetector(clf *Classifier, o detectorOptions) *Detector {
	d := &Detector{
		clf:       clf,
		workers:   o.workers,
		minMargin: o.minMargin,
		minNGrams: o.minNGrams,
	}
	nLangs := len(clf.langs)
	d.pool.New = func() any { return &scratch{counts: make([]int, nLangs)} }
	return d
}

// Classifier returns the underlying classifier (for the simulator,
// evaluation, and migration paths).
func (d *Detector) Classifier() *Classifier { return d.clf }

// Languages returns the detector's language inventory in rank order.
func (d *Detector) Languages() []string { return d.clf.Languages() }

// Config returns the effective classifier configuration.
func (d *Detector) Config() Config { return d.clf.Config() }

// Backend returns the membership backend in use.
func (d *Detector) Backend() Backend { return d.clf.Backend() }

// Workers returns the DetectBatch fan-out bound.
func (d *Detector) Workers() int { return d.workers }

// MinMargin returns the unknown-thresholding margin floor.
func (d *Detector) MinMargin() float64 { return d.minMargin }

// MinNGrams returns the minimum testable n-grams for a known outcome.
func (d *Detector) MinNGrams() int { return d.minNGrams }

// Detect classifies one raw ISO-8859-1 document: alphabet translation,
// n-gram extraction, membership counting, winner selection, and
// unknown thresholding. All working memory comes from the detector's
// scratch pool, so a warm call allocates nothing.
func (d *Detector) Detect(doc []byte) Match {
	s := d.pool.Get().(*scratch)
	m := d.detectInto(s, doc)
	d.pool.Put(s)
	return m
}

func (d *Detector) detectInto(s *scratch, doc []byte) Match {
	s.grams, s.codes = d.clf.extractInto(s.grams[:0], s.codes, doc)
	d.clf.countInto(s.counts, s.grams)
	return d.match(s.counts, len(s.grams))
}

// match applies winner selection and the unknown policy to a finished
// set of per-language counters.
func (d *Detector) match(counts []int, ngrams int) Match {
	m := Match{NGrams: ngrams}
	if ngrams == 0 {
		m.Unknown = true
		return m
	}
	best, second := winners(counts)
	m.Count = counts[best]
	m.Score = float64(m.Count) / float64(ngrams)
	if second >= 0 {
		m.Margin = float64(counts[best]-counts[second]) / float64(ngrams)
	} else {
		m.Margin = m.Score
	}
	if ngrams < d.minNGrams || m.Margin < d.minMargin {
		m.Unknown = true
		return m
	}
	m.Lang = d.clf.langs[best]
	return m
}

// MatchResult converts a legacy Result into a Match under this
// detector's thresholding policy — the bridge for callers migrating
// from Classifier.Classify.
func (d *Detector) MatchResult(r Result) Match {
	return d.match(r.Counts, r.NGrams)
}

// Rank returns the top k languages by match count, best first; k <= 0
// (or k beyond the language count) means all. Ties order by language
// code, matching Detect's tie-break. Each entry's Margin is its
// normalized lead over the next-ranked entry (the entry's whole Score
// for the last one). Rank reports the raw ranking: the unknown policy
// applies to Detect, not to the list.
func (d *Detector) Rank(doc []byte, k int) []Match {
	s := d.pool.Get().(*scratch)
	s.grams, s.codes = d.clf.extractInto(s.grams[:0], s.codes, doc)
	d.clf.countInto(s.counts, s.grams)
	ms := d.rankCounts(s.counts, len(s.grams), k)
	d.pool.Put(s)
	return ms
}

func (d *Detector) rankCounts(counts []int, ngrams, k int) []Match {
	n := len(counts)
	if k <= 0 || k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Stable sort on strict descending count keeps equal-count languages
	// in index (lexicographic) order.
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	ms := make([]Match, k)
	for pos := 0; pos < k; pos++ {
		i := order[pos]
		m := Match{Lang: d.clf.langs[i], Count: counts[i], NGrams: ngrams}
		if ngrams > 0 {
			m.Score = float64(counts[i]) / float64(ngrams)
			if pos+1 < n {
				m.Margin = float64(counts[i]-counts[order[pos+1]]) / float64(ngrams)
			} else {
				m.Margin = m.Score
			}
		}
		ms[pos] = m
	}
	return ms
}

// DetectBatch classifies every document over the detector's worker
// pool, preserving input order — the document-level parallelism of the
// paper's hardware, with each worker holding one scratch set for the
// whole batch.
func (d *Detector) DetectBatch(docs []corpus.Document) []Match {
	out := make([]Match, len(docs))
	if len(docs) == 0 {
		return out
	}
	workers := d.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.pool.Get().(*scratch)
			for i := range next {
				out[i] = d.detectInto(s, docs[i].Text)
			}
			d.pool.Put(s)
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// DetectReader classifies a document streamed from r with bounded
// memory: chunks feed the incremental stream path, nothing buffers the
// whole document.
func (d *Detector) DetectReader(r io.Reader) (Match, error) {
	st := d.NewStream()
	if _, err := io.Copy(st, r); err != nil {
		return Match{Unknown: true}, err
	}
	return st.Match(), nil
}

// Stream classifies one document incrementally under the detector's
// policy: bytes arrive in arbitrary chunks via Write, and Match reports
// the decision over everything written so far. Reset starts the next
// document. A Stream is not safe for concurrent use; create one per
// goroutine.
type Stream struct {
	d  *Detector
	ds *DocumentStream
}

// NewStream starts an empty document stream on the detector.
func (d *Detector) NewStream() *Stream {
	return &Stream{d: d, ds: d.clf.NewStream()}
}

// Write feeds the next chunk. It never fails; the error satisfies
// io.Writer.
func (s *Stream) Write(p []byte) (int, error) { return s.ds.Write(p) }

// Match returns the detection over everything written so far; the
// stream stays usable for more chunks.
func (s *Stream) Match() Match { return s.d.match(s.ds.counts, s.ds.ngrams) }

// Result returns the legacy per-language counter view of the stream,
// for callers that need raw counts alongside the Match.
func (s *Stream) Result() Result { return s.ds.Result() }

// Reset prepares the stream for a new document.
func (s *Stream) Reset() { s.ds.Reset() }
