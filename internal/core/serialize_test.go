package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestProfileSetRoundTrip(t *testing.T) {
	cfg := Config{N: 4, TopT: 800, K: 6, MBits: 8 * 1024, Seed: 42, Subsample: 2}
	ps := trainMini(t, cfg)

	var buf bytes.Buffer
	n, err := ps.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != ps.Config {
		t.Errorf("config round-trip: got %+v, want %+v", got.Config, ps.Config)
	}
	if len(got.Profiles) != len(ps.Profiles) {
		t.Fatalf("got %d profiles, want %d", len(got.Profiles), len(ps.Profiles))
	}
	for i, p := range ps.Profiles {
		q := got.Profiles[i]
		if q.Language != p.Language || q.N != p.N || !reflect.DeepEqual(q.Grams, p.Grams) {
			t.Errorf("profile %q did not round-trip", p.Language)
		}
	}
}

func TestProfileSetRoundTripProducesIdenticalClassifier(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000, Seed: 9})
	var buf bytes.Buffer
	if _, err := ps.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := New(loaded, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		doc := getMiniCorpus(t).Test[lang][0].Text
		a, b := orig.Classify(doc), fromDisk.Classify(doc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: classifier from reloaded profiles disagrees: %+v vs %+v", lang, a, b)
		}
	}
}

func TestProfileSetSaveLoadFile(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	path := filepath.Join(t.TempDir(), "profiles.bin")
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfileSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != ps.Config || len(got.Profiles) != len(ps.Profiles) {
		t.Errorf("file round-trip mismatch: %+v", got.Config)
	}
}

func TestReadProfileSetLegacyFormat(t *testing.T) {
	// Bare concatenated NGPF records, as older cmd/langid train wrote.
	ps := trainMini(t, Config{TopT: 300})
	var buf bytes.Buffer
	for _, p := range ps.Profiles {
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != len(ps.Profiles) {
		t.Fatalf("legacy read: got %d profiles, want %d", len(got.Profiles), len(ps.Profiles))
	}
	if got.Config.N != ps.Config.N {
		t.Errorf("legacy read: config n=%d, want %d", got.Config.N, ps.Config.N)
	}
	for i, p := range ps.Profiles {
		if !reflect.DeepEqual(got.Profiles[i].Grams, p.Grams) {
			t.Errorf("legacy profile %q did not round-trip", p.Language)
		}
	}
}

func TestReadProfileSetErrors(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	var full bytes.Buffer
	if _, err := ps.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("XXXXjunkjunkjunk"),
		"truncated":    full.Bytes()[:full.Len()/2],
		"version bump": append([]byte("NGPS\xff"), full.Bytes()[5:]...),
	}
	for name, data := range cases {
		if _, err := ReadProfileSet(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadProfileSet accepted malformed input", name)
		}
	}
}

func TestReadProfileSetRejectsMismatchedN(t *testing.T) {
	// A set whose header says n=4 but whose profiles were built with
	// n=3 must be rejected on read, not silently misclassify later.
	threeGram := trainMini(t, Config{N: 3, TopT: 200})
	mixed := &ProfileSet{Config: DefaultConfig(), Profiles: threeGram.Profiles}
	var buf bytes.Buffer
	if _, err := mixed.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadProfileSet(&buf)
	if err == nil || !strings.Contains(err.Error(), "n=") {
		t.Errorf("mismatched profile n not rejected: %v", err)
	}
}
