package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestProfileSetRoundTrip(t *testing.T) {
	cfg := Config{N: 4, TopT: 800, K: 6, MBits: 8 * 1024, Seed: 42, Subsample: 2}
	ps := trainMini(t, cfg)

	var buf bytes.Buffer
	n, err := ps.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != ps.Config {
		t.Errorf("config round-trip: got %+v, want %+v", got.Config, ps.Config)
	}
	if len(got.Profiles) != len(ps.Profiles) {
		t.Fatalf("got %d profiles, want %d", len(got.Profiles), len(ps.Profiles))
	}
	for i, p := range ps.Profiles {
		q := got.Profiles[i]
		if q.Language != p.Language || q.N != p.N || !reflect.DeepEqual(q.Grams, p.Grams) {
			t.Errorf("profile %q did not round-trip", p.Language)
		}
	}
}

func TestProfileSetRoundTripProducesIdenticalClassifier(t *testing.T) {
	ps := trainMini(t, Config{TopT: 1000, Seed: 9})
	var buf bytes.Buffer
	if _, err := ps.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := New(loaded, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		doc := getMiniCorpus(t).Test[lang][0].Text
		a, b := orig.Classify(doc), fromDisk.Classify(doc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: classifier from reloaded profiles disagrees: %+v vs %+v", lang, a, b)
		}
	}
}

func TestProfileSetSaveLoadFile(t *testing.T) {
	ps := trainMini(t, Config{TopT: 500})
	path := filepath.Join(t.TempDir(), "profiles.bin")
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfileSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != ps.Config || len(got.Profiles) != len(ps.Profiles) {
		t.Errorf("file round-trip mismatch: %+v", got.Config)
	}
}

func TestReadProfileSetLegacyFormat(t *testing.T) {
	// Bare concatenated NGPF records, as older cmd/langid train wrote.
	ps := trainMini(t, Config{TopT: 300})
	var buf bytes.Buffer
	for _, p := range ps.Profiles {
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadProfileSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != len(ps.Profiles) {
		t.Fatalf("legacy read: got %d profiles, want %d", len(got.Profiles), len(ps.Profiles))
	}
	if got.Config.N != ps.Config.N {
		t.Errorf("legacy read: config n=%d, want %d", got.Config.N, ps.Config.N)
	}
	for i, p := range ps.Profiles {
		if !reflect.DeepEqual(got.Profiles[i].Grams, p.Grams) {
			t.Errorf("legacy profile %q did not round-trip", p.Language)
		}
	}
}

func TestProfileSetBlockedLayoutRoundTrip(t *testing.T) {
	ps := trainMini(t, Config{TopT: 400, Seed: 3})
	var buf bytes.Buffer
	n, err := ps.WriteToBlocked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteToBlocked reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadProfileSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasBlockedLayout() {
		t.Fatal("v2 file round-trip dropped the blocked layout")
	}
	// A classifier built from the embedded layout matches one built by
	// re-programming the filters from the profiles.
	fresh := trainMini(t, Config{TopT: 400, Seed: 3})
	want, err := New(fresh, BackendBlocked)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(loaded, BackendBlocked)
	if err != nil {
		t.Fatal(err)
	}
	for _, lang := range []string{"en", "es", "fi", "pt"} {
		doc := getMiniCorpus(t).Test[lang][0].Text
		a, b := want.Classify(doc), got.Classify(doc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: classifier from embedded layout disagrees: %+v vs %+v", lang, a, b)
		}
	}
	// Byte stability: serializing the same trained state twice is
	// bit-identical (the layout is a pure function of config+profiles).
	var again bytes.Buffer
	if _, err := fresh.WriteToBlocked(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteToBlocked is not byte-stable across identical trained sets")
	}
	// The v1 writer remains byte-stable and layout-free.
	var v1 bytes.Buffer
	if _, err := ps.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	plain, err := ReadProfileSet(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasBlockedLayout() {
		t.Error("v1 file claims a blocked layout")
	}
}

func TestReadProfileSetRejectsInconsistentBlockedLayout(t *testing.T) {
	ps := trainMini(t, Config{TopT: 400})
	layout, err := ps.blockedLayout()
	if err != nil {
		t.Fatal(err)
	}
	// Splice the layout onto a set trained under a different seed: the
	// hash matrices disagree, so the reader must refuse.
	other := trainMini(t, Config{TopT: 400, Seed: 1234})
	var buf bytes.Buffer
	if _, err := other.writeTo(&buf, layout); err != nil {
		t.Fatal(err)
	}
	_, err = ReadProfileSet(&buf)
	if err == nil {
		t.Fatal("inconsistent embedded layout accepted")
	}
	if !errors.Is(err, ErrCorruptProfiles) {
		t.Errorf("error %v is not tagged ErrCorruptProfiles", err)
	}
}

// TestReadProfileSetCorruptInputs pins the actionable-error contract:
// every malformed input fails with a wrapped ErrCorruptProfiles whose
// message names the structure that failed to parse, instead of a raw
// binary-read error.
func TestReadProfileSetCorruptInputs(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	var v1 bytes.Buffer
	if _, err := ps.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := ps.WriteToBlocked(&v2); err != nil {
		t.Fatal(err)
	}
	hugeCfgLen := append([]byte("NGPS\x01"), []byte{0xff, 0xff, 0xff, 0xff}...)
	cases := []struct {
		name string
		data []byte
		want string // substring the actionable message must contain
	}{
		{"empty input", nil, "truncated"},
		{"three-byte file", []byte("NGP"), "NGPS magic"},
		{"garbage without magic", []byte("this is not a profile file at all"), "neither an NGPS profile set nor a legacy NGPF"},
		{"header cut after magic", []byte("NGPS"), "truncated after the magic"},
		{"header cut in config length", []byte("NGPS\x01\x10"), "config length"},
		{"config length overflow", hugeCfgLen, "refusing"},
		{"config truncated", append([]byte("NGPS\x01"), 0x10, 0, 0, 0, '{'), "config truncated"},
		{"config not JSON", append([]byte("NGPS\x01"), 0x02, 0, 0, 0, 'h', 'i'), "not valid JSON"},
		{"cut before profile count", v1.Bytes()[:bytes.IndexByte(v1.Bytes(), '}')+1], "profile count"},
		{"profile record truncated", v1.Bytes()[:v1.Len()-10], "reading profile"},
		{"blocked section truncated", v2.Bytes()[:v2.Len()-64], "blocked"},
		{"blocked flag invalid", flipBlockedFlag(t, v1.Bytes(), v2.Bytes()), "blocked-layout flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadProfileSet(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !errors.Is(err, ErrCorruptProfiles) {
				t.Errorf("error %v is not tagged ErrCorruptProfiles", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// An unsupported version is a version error, not corruption.
	bumped := append([]byte("NGPS\x07"), v1.Bytes()[5:]...)
	_, err := ReadProfileSet(bytes.NewReader(bumped))
	if err == nil || !strings.Contains(err.Error(), "version 7") {
		t.Errorf("version bump error = %v, want an unsupported-version message", err)
	}
}

// flipBlockedFlag rebuilds the v2 stream with an out-of-range
// blocked-layout flag: the v1 profile payload followed by flag 9.
func flipBlockedFlag(t *testing.T, v1 []byte, v2 []byte) []byte {
	t.Helper()
	out := append([]byte(nil), v2[:len(v1)]...)
	out[4] = 2 // version byte
	return append(out, 9)
}

func TestReadProfileSetErrors(t *testing.T) {
	ps := trainMini(t, Config{TopT: 200})
	var full bytes.Buffer
	if _, err := ps.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("XXXXjunkjunkjunk"),
		"truncated":    full.Bytes()[:full.Len()/2],
		"version bump": append([]byte("NGPS\xff"), full.Bytes()[5:]...),
	}
	for name, data := range cases {
		if _, err := ReadProfileSet(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadProfileSet accepted malformed input", name)
		}
	}
}

func TestReadProfileSetRejectsMismatchedN(t *testing.T) {
	// A set whose header says n=4 but whose profiles were built with
	// n=3 must be rejected on read, not silently misclassify later.
	threeGram := trainMini(t, Config{N: 3, TopT: 200})
	mixed := &ProfileSet{Config: DefaultConfig(), Profiles: threeGram.Profiles}
	var buf bytes.Buffer
	if _, err := mixed.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadProfileSet(&buf)
	if err == nil || !strings.Contains(err.Error(), "n=") {
		t.Errorf("mismatched profile n not rejected: %v", err)
	}
}
