package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bloomlang/internal/bloom"
	"bloomlang/internal/ngram"
)

// ProfileSet serialization: a trained classifier's entire state is its
// configuration plus the per-language profiles, so persisting those two
// lets a server start from a profile file instead of re-training (the
// paper's preprocessing step 1 runs offline; §2). The format is a small
// header — magic, version, JSON-encoded Config — followed by the
// profiles in the established NGPF binary format from internal/ngram,
// so profile files remain readable one profile at a time.
//
//	magic "NGPS" | version u8 | config JSON len u32 | config JSON |
//	profile count u32 | count * NGPF profile records
//
// Version 2 appends an optional materialized blocked-backend layout
// after the profiles, so a daemon serving the blocked backend loads
// pre-programmed filters instead of re-hashing every profile n-gram at
// startup:
//
//	... | blocked flag u8 | [NGBK blocked set record when flag == 1]
//
// Version-1 files and legacy bare-NGPF streams remain readable; the
// blocked layout is rebuilt from the profiles when absent.

// profileSetMagic identifies the on-disk profile-set format.
const profileSetMagic = "NGPS"

// Profile-set serialization versions: version 1 is config+profiles,
// version 2 adds the optional blocked-layout section. WriteTo emits
// version 1 (byte-identical to historical files); WriteToBlocked emits
// version 2. Readers accept both.
const (
	profileSetVersion        = 1
	profileSetVersionBlocked = 2
)

// maxConfigJSON bounds the config header a reader will accept.
const maxConfigJSON = 1 << 20

// maxProfileCount bounds the profile count a reader will accept; far
// beyond any real language inventory.
const maxProfileCount = 1 << 16

// ErrCorruptProfiles tags every malformed-profile-data error from
// ReadProfileSet, so callers can distinguish a damaged or truncated
// file (errors.Is(err, ErrCorruptProfiles)) from I/O failures and
// version mismatches. The wrapped message names the structure that
// failed to parse and the likely cause.
var ErrCorruptProfiles = errors.New("corrupt profile data")

// corruptf builds a wrapped, actionable corrupt-input error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("core: "+format+": %w", append(args, ErrCorruptProfiles)...)
}

// WriteTo serializes the profile set, configuration included, in the
// NGPS version-1 binary format.
func (ps *ProfileSet) WriteTo(w io.Writer) (int64, error) {
	return ps.writeTo(w, nil)
}

// WriteToBlocked serializes the profile set in the NGPS version-2
// format with the blocked-backend layout embedded: the fused
// cache-line-blocked filters are programmed once at write time (or
// reused when the set already carries them) and written after the
// profiles, so readers serving BackendBlocked skip programming
// entirely. The output is byte-stable: the layout is a pure function
// of the configuration and the profiles.
func (ps *ProfileSet) WriteToBlocked(w io.Writer) (int64, error) {
	set, err := ps.blockedLayout()
	if err != nil {
		return 0, err
	}
	return ps.writeTo(w, set)
}

// blockedLayout returns the set's materialized blocked layout,
// building and caching it when absent.
func (ps *ProfileSet) blockedLayout() (*bloom.BlockedSet, error) {
	if ps.blocked != nil {
		return ps.blocked, nil
	}
	cfg := ps.Config.WithDefaults()
	set, err := buildBlockedSet(cfg, ps.Profiles)
	if err != nil {
		return nil, fmt.Errorf("core: building blocked layout: %w", err)
	}
	ps.blocked = set
	return set, nil
}

func (ps *ProfileSet) writeTo(w io.Writer, blocked *bloom.BlockedSet) (int64, error) {
	cfgJSON, err := json.Marshal(ps.Config)
	if err != nil {
		return 0, fmt.Errorf("core: encoding profile set config: %w", err)
	}
	version := uint8(profileSetVersion)
	if blocked != nil {
		version = profileSetVersionBlocked
	}
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(profileSetMagic); err != nil {
		return written, err
	}
	written += int64(len(profileSetMagic))
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(version); err != nil {
		return written, err
	}
	if err := put(uint32(len(cfgJSON))); err != nil {
		return written, err
	}
	if _, err := bw.Write(cfgJSON); err != nil {
		return written, err
	}
	written += int64(len(cfgJSON))
	if err := put(uint32(len(ps.Profiles))); err != nil {
		return written, err
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	for _, p := range ps.Profiles {
		n, err := p.WriteTo(w)
		written += n
		if err != nil {
			return written, fmt.Errorf("core: writing profile %q: %w", p.Language, err)
		}
	}
	if version >= profileSetVersionBlocked {
		flag := []byte{0}
		if blocked != nil {
			flag[0] = 1
		}
		if _, err := w.Write(flag); err != nil {
			return written, err
		}
		written++
		if blocked != nil {
			n, err := blocked.WriteTo(w)
			written += n
			if err != nil {
				return written, fmt.Errorf("core: writing blocked layout: %w", err)
			}
		}
	}
	return written, nil
}

// ReadProfileSet deserializes a profile set written by WriteTo or
// WriteToBlocked. For compatibility with profile files produced before
// the set format existed (bare concatenated NGPF records, as older
// cmd/langid train wrote), a stream that starts with a profile record
// instead of the set header is read as a legacy set under
// DefaultConfig adjusted to the profiles' n. Malformed input comes
// back as a wrapped ErrCorruptProfiles naming the structure that
// failed.
func ReadProfileSet(r io.Reader) (*ProfileSet, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(profileSetMagic))
	if err != nil {
		return nil, corruptf("profile data ends before the %d-byte NGPS magic (%d bytes available): file is empty or truncated", len(profileSetMagic), len(magic))
	}
	if string(magic) != profileSetMagic {
		return readLegacyProfileSet(br)
	}
	if _, err := br.Discard(len(profileSetMagic)); err != nil {
		return nil, err
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, corruptf("profile set header truncated after the magic (%v)", err)
	}
	if version != profileSetVersion && version != profileSetVersionBlocked {
		return nil, fmt.Errorf("core: unsupported profile set version %d (this build reads versions %d and %d; the file was written by a newer build or is corrupt)",
			version, profileSetVersion, profileSetVersionBlocked)
	}
	var cfgLen uint32
	if err := binary.Read(br, binary.LittleEndian, &cfgLen); err != nil {
		return nil, corruptf("profile set header truncated before the config length (%v)", err)
	}
	if cfgLen > maxConfigJSON {
		return nil, corruptf("profile set config claims %d bytes (limit %d), refusing", cfgLen, maxConfigJSON)
	}
	cfgJSON := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgJSON); err != nil {
		return nil, corruptf("profile set config truncated: wanted %d bytes (%v)", cfgLen, err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, corruptf("profile set config is not valid JSON (%v)", err)
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: profile set config invalid: %w", err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, corruptf("profile set truncated before the profile count (%v)", err)
	}
	if count > maxProfileCount {
		return nil, corruptf("profile set claims %d profiles (limit %d), refusing", count, maxProfileCount)
	}
	ps := &ProfileSet{Config: cfg, Profiles: make([]*ngram.Profile, 0, count)}
	for i := uint32(0); i < count; i++ {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			return nil, corruptf("reading profile %d of %d: %v", i+1, count, err)
		}
		if p.N != cfg.N {
			return nil, fmt.Errorf("core: profile %q has n=%d, set config has n=%d", p.Language, p.N, cfg.N)
		}
		ps.Profiles = append(ps.Profiles, p)
	}
	if version >= profileSetVersionBlocked {
		if err := ps.readBlockedSection(br, cfg); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// readBlockedSection reads the version-2 blocked-layout section and
// verifies it against the profiles just read.
func (ps *ProfileSet) readBlockedSection(br *bufio.Reader, cfg Config) error {
	var flag uint8
	if err := binary.Read(br, binary.LittleEndian, &flag); err != nil {
		return corruptf("profile set truncated before the blocked-layout flag (%v)", err)
	}
	switch flag {
	case 0:
		return nil
	case 1:
		set, err := bloom.ReadBlockedSet(br)
		if err != nil {
			return corruptf("reading embedded blocked layout: %v", err)
		}
		if err := checkBlockedLayout(cfg, ps, set); err != nil {
			return corruptf("embedded blocked layout inconsistent with profiles: %v", err)
		}
		ps.blocked = set
		return nil
	default:
		return corruptf("profile set blocked-layout flag is %d, want 0 or 1", flag)
	}
}

// readLegacyProfileSet reads bare concatenated NGPF records until EOF.
func readLegacyProfileSet(br *bufio.Reader) (*ProfileSet, error) {
	cfg := DefaultConfig()
	ps := &ProfileSet{Config: cfg}
	for {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			// A clean end of file shows up as a wrapped io.EOF from the
			// magic read; anything else is a real error.
			if errors.Is(err, io.EOF) && len(ps.Profiles) > 0 {
				break
			}
			if len(ps.Profiles) == 0 {
				return nil, corruptf("data is neither an NGPS profile set nor a legacy NGPF profile stream (%v)", err)
			}
			return nil, corruptf("legacy profile stream damaged after %d profiles (%v)", len(ps.Profiles), err)
		}
		ps.Config.N = p.N
		ps.Profiles = append(ps.Profiles, p)
	}
	return ps, nil
}

// SaveFile writes the profile set to path atomically: a temp file in
// the same directory is renamed into place, so a crash mid-write never
// leaves a truncated profile file for a daemon to trip over.
func (ps *ProfileSet) SaveFile(path string) error {
	return ps.saveFile(path, (*ProfileSet).WriteTo)
}

// SaveFileBlocked writes the profile set to path atomically in the
// version-2 format with the blocked-backend layout embedded; see
// WriteToBlocked.
func (ps *ProfileSet) SaveFileBlocked(path string) error {
	return ps.saveFile(path, (*ProfileSet).WriteToBlocked)
}

func (ps *ProfileSet) saveFile(path string, write func(*ProfileSet, io.Writer) (int64, error)) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := write(ps, tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; match the 0644-modulo-umask a plain create
	// would give, so other users (e.g. the daemon's service account)
	// can read the saved profiles.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadProfileSetFile reads a profile set from a file written by
// SaveFile or SaveFileBlocked (or a legacy bare-profile file).
func LoadProfileSetFile(path string) (*ProfileSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfileSet(f)
}
