package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bloomlang/internal/ngram"
)

// ProfileSet serialization: a trained classifier's entire state is its
// configuration plus the per-language profiles, so persisting those two
// lets a server start from a profile file instead of re-training (the
// paper's preprocessing step 1 runs offline; §2). The format is a small
// header — magic, version, JSON-encoded Config — followed by the
// profiles in the established NGPF binary format from internal/ngram,
// so profile files remain readable one profile at a time.
//
//	magic "NGPS" | version u8 | config JSON len u32 | config JSON |
//	profile count u32 | count * NGPF profile records

// profileSetMagic identifies the on-disk profile-set format.
const profileSetMagic = "NGPS"

// profileSetVersion is the current profile-set serialization version.
const profileSetVersion = 1

// maxConfigJSON bounds the config header a reader will accept.
const maxConfigJSON = 1 << 20

// maxProfileCount bounds the profile count a reader will accept; far
// beyond any real language inventory.
const maxProfileCount = 1 << 16

// WriteTo serializes the profile set, configuration included, in the
// NGPS binary format.
func (ps *ProfileSet) WriteTo(w io.Writer) (int64, error) {
	cfgJSON, err := json.Marshal(ps.Config)
	if err != nil {
		return 0, fmt.Errorf("core: encoding profile set config: %w", err)
	}
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(profileSetMagic); err != nil {
		return written, err
	}
	written += int64(len(profileSetMagic))
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(uint8(profileSetVersion)); err != nil {
		return written, err
	}
	if err := put(uint32(len(cfgJSON))); err != nil {
		return written, err
	}
	if _, err := bw.Write(cfgJSON); err != nil {
		return written, err
	}
	written += int64(len(cfgJSON))
	if err := put(uint32(len(ps.Profiles))); err != nil {
		return written, err
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	for _, p := range ps.Profiles {
		n, err := p.WriteTo(w)
		written += n
		if err != nil {
			return written, fmt.Errorf("core: writing profile %q: %w", p.Language, err)
		}
	}
	return written, nil
}

// ReadProfileSet deserializes a profile set written by WriteTo. For
// compatibility with profile files produced before the set format
// existed (bare concatenated NGPF records, as older cmd/langid train
// wrote), a stream that starts with a profile record instead of the set
// header is read as a legacy set under DefaultConfig adjusted to the
// profiles' n.
func ReadProfileSet(r io.Reader) (*ProfileSet, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(profileSetMagic))
	if err != nil {
		return nil, fmt.Errorf("core: reading profile set magic: %w", err)
	}
	if string(magic) != profileSetMagic {
		return readLegacyProfileSet(br)
	}
	if _, err := br.Discard(len(profileSetMagic)); err != nil {
		return nil, err
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != profileSetVersion {
		return nil, fmt.Errorf("core: unsupported profile set version %d", version)
	}
	var cfgLen uint32
	if err := binary.Read(br, binary.LittleEndian, &cfgLen); err != nil {
		return nil, err
	}
	if cfgLen > maxConfigJSON {
		return nil, fmt.Errorf("core: profile set config claims %d bytes, refusing", cfgLen)
	}
	cfgJSON := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgJSON); err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("core: decoding profile set config: %w", err)
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: profile set config invalid: %w", err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > maxProfileCount {
		return nil, fmt.Errorf("core: profile set claims %d profiles, refusing", count)
	}
	ps := &ProfileSet{Config: cfg, Profiles: make([]*ngram.Profile, 0, count)}
	for i := uint32(0); i < count; i++ {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading profile %d of %d: %w", i+1, count, err)
		}
		if p.N != cfg.N {
			return nil, fmt.Errorf("core: profile %q has n=%d, set config has n=%d", p.Language, p.N, cfg.N)
		}
		ps.Profiles = append(ps.Profiles, p)
	}
	return ps, nil
}

// readLegacyProfileSet reads bare concatenated NGPF records until EOF.
func readLegacyProfileSet(br *bufio.Reader) (*ProfileSet, error) {
	cfg := DefaultConfig()
	ps := &ProfileSet{Config: cfg}
	for {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			// A clean end of file shows up as a wrapped io.EOF from the
			// magic read; anything else is a real error.
			if errors.Is(err, io.EOF) && len(ps.Profiles) > 0 {
				break
			}
			return nil, err
		}
		ps.Config.N = p.N
		ps.Profiles = append(ps.Profiles, p)
	}
	return ps, nil
}

// SaveFile writes the profile set to path atomically: a temp file in
// the same directory is renamed into place, so a crash mid-write never
// leaves a truncated profile file for a daemon to trip over.
func (ps *ProfileSet) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := ps.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; match the 0644-modulo-umask a plain create
	// would give, so other users (e.g. the daemon's service account)
	// can read the saved profiles.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadProfileSetFile reads a profile set from a file written by
// SaveFile (or a legacy bare-profile file).
func LoadProfileSetFile(path string) (*ProfileSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfileSet(f)
}
