//go:build race

package core

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation adds bookkeeping allocations that break strict
// allocation accounting.
const raceEnabled = true
