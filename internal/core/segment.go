package core

// Mixed-language segmentation: instead of one label per document, the
// detector labels contiguous single-language regions — quoted replies,
// code-switched chat, bilingual pages — the traffic shapes a production
// detector meets that the paper's whole-document classifier (§2) cannot
// answer with a single language.
//
// The mechanism reuses the match-counting inner loop unchanged and runs
// it exactly once per document. The n-gram stream is cut into stride-
// sized chunks; each chunk's per-language counts are accumulated through
// the classifier's one accumulateInto pass (the fused blocked kernel
// scores all languages per n-gram in that pass, the Matcher-shaped
// backends walk their languages×grams loop) into a ring of Window/Stride
// rows. A sliding window of Window n-grams is then the rolling sum of
// the ring — adding the newest chunk row and subtracting the oldest —
// so per-window scoring costs O(L) per stride regardless of window
// size, and no n-gram is ever re-extracted or re-hashed for a second
// window. Window arg-max decisions pass through hysteresis (a new
// language must win Hysteresis consecutive windows before a boundary is
// emitted) and adjacent same-language windows merge into Spans.

import (
	"fmt"
	"io"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/ngram"
)

// Span is one contiguous single-language region of a segmented
// document: the half-open byte range [Start, End), the language called
// for it, and the mean windowed confidence behind the call. Spans
// returned for one document always tile [0, len(doc)) with no gaps or
// overlaps.
type Span struct {
	// Start is the first byte of the span.
	Start int
	// End is the byte after the last byte of the span.
	End int
	// Lang is the span's language code, or "" when Unknown.
	Lang string
	// Score is the mean normalized window score over the span's
	// windows: the fraction of window n-grams found in the span
	// language's profile, averaged across the windows that voted for
	// this span.
	Score float64
	// Margin is the mean normalized lead of the span's language over
	// the runner-up across the span's windows — the §5.1 winner margin,
	// windowed.
	Margin float64
	// Unknown reports that no language cleared the detector's
	// confidence thresholds for this region; Lang is "".
	Unknown bool
}

// Segmentation defaults: a 64-n-gram window hopping by a quarter
// window, with a two-window hysteresis before a boundary is believed.
const (
	// DefaultSegmentWindow is the default sliding-window length in
	// n-grams. At the paper's n=4 a 64-gram window is roughly ten words
	// of context — short enough to localize a language switch inside a
	// sentence, long enough that the winner margin dominates Bloom
	// false-positive noise.
	DefaultSegmentWindow = 64
	// DefaultSegmentHysteresis is how many consecutive windows a new
	// language must win before a boundary is emitted.
	DefaultSegmentHysteresis = 2
)

// SegmentConfig carries the sliding-window segmentation knobs. The
// zero value selects the defaults.
type SegmentConfig struct {
	// Window is the sliding-window length in n-grams (default 64).
	Window int
	// Stride is the window hop in n-grams; it must divide Window.
	// Default Window/4. Smaller strides localize boundaries more finely
	// at proportionally more window decisions (the counting work is
	// unchanged: every n-gram is still hashed exactly once).
	Stride int
	// Hysteresis is the number of consecutive windows a new language
	// must win before a boundary is emitted (default 2). Raising it
	// suppresses fragmentation on noisy mixed text at the cost of
	// missing genuine segments shorter than Hysteresis windows.
	Hysteresis int
	// Smoothing exponentially smooths per-language window counts
	// across successive windows: smoothed = Smoothing·previous +
	// (1−Smoothing)·current. 0 (the default) disables smoothing; values
	// toward 1 favour the incumbent language and steady boundaries.
	Smoothing float64
}

// WithDefaults returns the configuration with zero fields replaced by
// the package defaults — the effective configuration segmentation runs
// under.
func (c SegmentConfig) WithDefaults() SegmentConfig {
	if c.Window == 0 {
		c.Window = DefaultSegmentWindow
	}
	if c.Stride == 0 {
		// The default hop is a quarter window, nudged down to the
		// nearest divisor so any Window validates out of the box.
		s := c.Window / 4
		if s < 1 {
			s = 1
		}
		for c.Window%s != 0 {
			s--
		}
		c.Stride = s
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = DefaultSegmentHysteresis
	}
	return c
}

// Validate reports configuration errors early; it checks the
// defaults-applied form, so partially-zero configurations validate the
// way they will run.
func (c SegmentConfig) Validate() error {
	cfg := c.WithDefaults()
	if cfg.Window < 1 {
		return fmt.Errorf("core: segment window %d must be positive", cfg.Window)
	}
	if cfg.Stride < 1 || cfg.Stride > cfg.Window {
		return fmt.Errorf("core: segment stride %d out of range [1,%d]", cfg.Stride, cfg.Window)
	}
	if cfg.Window%cfg.Stride != 0 {
		return fmt.Errorf("core: segment stride %d must divide window %d (the window is a whole number of ring chunks)", cfg.Stride, cfg.Window)
	}
	if cfg.Hysteresis < 1 {
		return fmt.Errorf("core: segment hysteresis %d must be >= 1", cfg.Hysteresis)
	}
	if cfg.Smoothing < 0 || cfg.Smoothing >= 1 {
		return fmt.Errorf("core: segment smoothing %v out of range [0,1)", cfg.Smoothing)
	}
	return nil
}

func resolveSegmentConfig(cfg SegmentConfig) (SegmentConfig, error) {
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg.WithDefaults(), nil
}

// DetectSpans segments one document into contiguous single-language
// spans under the detector's confidence policy. The zero SegmentConfig
// selects the defaults. The returned spans tile [0, len(doc)) exactly;
// an empty document yields no spans, and a document too short for even
// one n-gram yields a single Unknown span.
func (d *Detector) DetectSpans(doc []byte, cfg SegmentConfig) ([]Span, error) {
	return d.AppendSpans(nil, doc, cfg)
}

// AppendSpans is DetectSpans appending into a caller-owned slice: with
// a reused dst (and a warm detector) the whole segmentation pass
// allocates nothing, matching the Detect hot-path discipline.
func (d *Detector) AppendSpans(dst []Span, doc []byte, cfg SegmentConfig) ([]Span, error) {
	s, err := d.borrowSpanStream(cfg)
	if err != nil {
		return dst, err
	}
	s.Write(doc)
	dst = append(dst, s.Finish()...)
	d.segPool.Put(s)
	return dst, nil
}

// DetectSpansReader segments a document streamed from r with bounded
// memory: no window ever re-reads earlier bytes, so only the ring of
// chunk counters and one partial chunk are retained.
func (d *Detector) DetectSpansReader(r io.Reader, cfg SegmentConfig) ([]Span, error) {
	s, err := d.borrowSpanStream(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(s, r); err != nil {
		d.segPool.Put(s)
		return nil, err
	}
	spans := append([]Span(nil), s.Finish()...)
	d.segPool.Put(s)
	return spans, nil
}

// borrowSpanStream checks the configuration and takes a pooled stream,
// so the one-shot paths reuse all segmentation scratch across calls.
func (d *Detector) borrowSpanStream(cfg SegmentConfig) (*SpanStream, error) {
	resolved, err := resolveSegmentConfig(cfg)
	if err != nil {
		return nil, err
	}
	s, _ := d.segPool.Get().(*SpanStream)
	if s == nil {
		s = &SpanStream{d: d}
	}
	s.configure(resolved)
	return s, nil
}

// unknownLabel marks a window (and the spans merged from it) whose
// winner did not clear the detector's confidence thresholds.
const unknownLabel = -1

// segRun accumulates one in-progress span: its label, where it starts
// in the n-gram stream, and the window-decision sums its Score and
// Margin average over.
type segRun struct {
	label     int // language index, or unknownLabel
	startGram int
	scoreSum  float64
	marginSum float64
	windows   int
}

func (r *segRun) absorb(o segRun) {
	r.windows += o.windows
	r.scoreSum += o.scoreSum
	r.marginSum += o.marginSum
}

// SpanStream segments one document incrementally: bytes arrive in
// arbitrary chunks via Write, finalized spans are available from Spans
// as boundaries are confirmed, and Finish closes the document and
// returns the complete tiling. This is the streaming variant of
// DetectSpans — identical output for identical bytes, any chunking —
// and the engine behind the one-shot paths. Like Stream, a SpanStream
// is not safe for concurrent use; create one per goroutine.
type SpanStream struct {
	d   *Detector
	cfg SegmentConfig // resolved: defaults applied, validated
	e   ngram.Extractor
	sub int // extractor subsample: gram index i starts at byte i*sub

	rows  int // ring rows = Window/Stride
	langs int

	codes     []alphabet.Code
	grams     []uint32
	chunkBuf  []uint32
	chunkFill int

	ring   []int     // rows × langs per-chunk match counts
	win    []int     // rolling window counts (sum of the ring)
	smooth []float64 // EWMA-smoothed window counts
	totals []int     // whole-document counts over completed chunks
	tmp    []int     // scratch for folding the buffered tail into totals

	bytesSeen int
	gramsSeen int
	chunks    int // completed chunks
	windows   int // completed window decisions

	started   bool
	cur       segRun
	flip      segRun
	flipStart int // window index where the pending flip began
	hasFlip   bool

	spans []Span
	done  bool
}

// NewSpanStream starts an empty segmenting stream on the detector. The
// zero SegmentConfig selects the defaults.
func (d *Detector) NewSpanStream(cfg SegmentConfig) (*SpanStream, error) {
	resolved, err := resolveSegmentConfig(cfg)
	if err != nil {
		return nil, err
	}
	s := &SpanStream{d: d}
	s.configure(resolved)
	return s, nil
}

// configure (re)arms the stream for a new document under cfg, growing
// scratch only when the geometry outgrew what a previous use left.
func (s *SpanStream) configure(cfg SegmentConfig) {
	s.cfg = cfg
	s.rows = cfg.Window / cfg.Stride
	s.langs = len(s.d.clf.langs)
	s.e = s.d.clf.extractor
	s.e.Reset()
	s.sub = s.d.clf.cfg.Subsample
	if cap(s.chunkBuf) < cfg.Stride {
		s.chunkBuf = make([]uint32, cfg.Stride)
	}
	s.chunkBuf = s.chunkBuf[:cfg.Stride]
	if n := s.rows * s.langs; cap(s.ring) < n {
		s.ring = make([]int, n)
	} else {
		s.ring = s.ring[:n]
	}
	if cap(s.win) < s.langs {
		s.win = make([]int, s.langs)
		s.smooth = make([]float64, s.langs)
		s.totals = make([]int, s.langs)
	} else {
		s.win = s.win[:s.langs]
		s.smooth = s.smooth[:s.langs]
		s.totals = s.totals[:s.langs]
	}
	for i := range s.win {
		s.win[i] = 0
		s.totals[i] = 0
	}
	s.chunkFill, s.bytesSeen, s.gramsSeen, s.chunks, s.windows = 0, 0, 0, 0, 0
	s.started, s.hasFlip, s.done = false, false, false
	s.cur, s.flip = segRun{}, segRun{}
	s.spans = s.spans[:0]
}

// Reset prepares the stream for a new document under the same
// configuration.
func (s *SpanStream) Reset() { s.configure(s.cfg) }

// Write feeds the next chunk of the document. It fails only on a
// stream already closed by Finish; the signature satisfies io.Writer.
func (s *SpanStream) Write(p []byte) (int, error) {
	if s.done {
		return 0, errSpanStreamFinished
	}
	if cap(s.codes) < len(p) {
		s.codes = make([]alphabet.Code, len(p))
	}
	alphabet.TranslateInto(s.codes[:len(p)], p)
	s.feedCodes(len(p))
	return len(p), nil
}

// WriteString is Write for string chunks without the []byte copy —
// SpanStream is an io.StringWriter, so io.WriteString segments
// JSON-decoded documents allocation-free.
func (s *SpanStream) WriteString(p string) (int, error) {
	if s.done {
		return 0, errSpanStreamFinished
	}
	if cap(s.codes) < len(p) {
		s.codes = make([]alphabet.Code, len(p))
	}
	codes := s.codes[:len(p)]
	for i := 0; i < len(p); i++ {
		codes[i] = alphabet.Translate(p[i])
	}
	s.feedCodes(len(p))
	return len(p), nil
}

var errSpanStreamFinished = fmt.Errorf("core: SpanStream written after Finish (Reset starts a new document)")

// feedCodes runs the translated first n codes through extraction and
// chunk counting. The bytes are counted before consuming: a boundary
// confirmed inside this write starts within these bytes, and gramByte
// clamps against the running total.
func (s *SpanStream) feedCodes(n int) {
	s.bytesSeen += n
	s.grams = s.e.Feed(s.grams[:0], s.codes[:n])
	s.consume(s.grams)
}

// consume cuts the incoming n-gram stream into stride-sized chunks.
// Chunks completing inside gs are counted straight out of the caller's
// slice; a trailing partial chunk is buffered for the next Write.
func (s *SpanStream) consume(gs []uint32) {
	s.gramsSeen += len(gs)
	stride := s.cfg.Stride
	for len(gs) > 0 {
		if s.chunkFill == 0 && len(gs) >= stride {
			s.completeChunk(gs[:stride])
			gs = gs[stride:]
			continue
		}
		n := copy(s.chunkBuf[s.chunkFill:stride], gs)
		s.chunkFill += n
		gs = gs[n:]
		if s.chunkFill == stride {
			s.completeChunk(s.chunkBuf[:stride])
			s.chunkFill = 0
		}
	}
}

// completeChunk scores one stride of n-grams — the single pass through
// the classifier's counting loop these grams will ever take — and
// rolls the window sum forward: the ring row being replaced leaves the
// window, the fresh row enters it.
func (s *SpanStream) completeChunk(chunk []uint32) {
	row := s.ring[(s.chunks%s.rows)*s.langs:][:s.langs]
	if s.chunks >= s.rows {
		for i, v := range row {
			s.win[i] -= v
		}
	}
	for i := range row {
		row[i] = 0
	}
	s.d.clf.accumulateInto(row, chunk)
	for i, v := range row {
		s.win[i] += v
		s.totals[i] += v
	}
	s.chunks++
	if s.chunks >= s.rows {
		s.windowDone()
	}
}

// windowDone decides the window that just completed — smoothing,
// arg-max, the detector's unknown policy — and feeds the decision to
// the hysteresis merger.
func (s *SpanStream) windowDone() {
	w := s.chunks - s.rows // index of the completed window
	alpha := s.cfg.Smoothing
	if s.windows == 0 || alpha == 0 {
		for i, v := range s.win {
			s.smooth[i] = float64(v)
		}
	} else {
		for i, v := range s.win {
			s.smooth[i] = alpha*s.smooth[i] + (1-alpha)*float64(v)
		}
	}
	s.windows++
	best, second := floatWinners(s.smooth)
	width := float64(s.cfg.Window)
	score := s.smooth[best] / width
	margin := score
	if second >= 0 {
		margin = (s.smooth[best] - s.smooth[second]) / width
	}
	label := best
	if s.cfg.Window < s.d.minNGrams || margin < s.d.minMargin {
		label = unknownLabel
	}
	s.observe(w, label, score, margin)
}

// observe runs the hysteresis state machine over successive window
// decisions: agreement extends the current run, a dissenting language
// opens (or extends) a pending flip, and a flip that persists for
// Hysteresis windows confirms a boundary. Pending windows interrupted
// before confirmation fold back into the current run, so one noisy
// window can never fragment a span.
func (s *SpanStream) observe(w, label int, score, margin float64) {
	if !s.started {
		s.started = true
		s.cur = segRun{label: label, scoreSum: score, marginSum: margin, windows: 1}
		return
	}
	if label == s.cur.label {
		s.foldFlip()
		s.cur.absorb(segRun{scoreSum: score, marginSum: margin, windows: 1})
		return
	}
	if s.hasFlip && label == s.flip.label {
		s.flip.absorb(segRun{scoreSum: score, marginSum: margin, windows: 1})
	} else {
		// Either the first dissent, or a third language interrupted the
		// pending flip (neither challenger persisted): the pending
		// windows return to the incumbent's byte range and the new
		// challenger starts fresh.
		s.foldFlip()
		s.flip = segRun{label: label, scoreSum: score, marginSum: margin, windows: 1}
		s.flipStart = w
		s.hasFlip = true
	}
	if s.flip.windows >= s.cfg.Hysteresis {
		s.confirmFlip()
	}
}

// foldFlip abandons a pending flip: its windows' byte range stays with
// the incumbent span, but their score/margin sums are discarded — they
// voted for a different language, and Span confidence averages only
// the windows that voted for the span's own language.
func (s *SpanStream) foldFlip() { s.hasFlip = false }

// confirmFlip emits the boundary for a persisted language change. The
// boundary is attributed to the center of the first window that voted
// for the new language — each window's decision describes its middle
// best — which keeps boundaries within one stride of where decisions
// actually flipped.
func (s *SpanStream) confirmFlip() {
	boundary := (s.flipStart + s.rows/2) * s.cfg.Stride
	if boundary <= s.cur.startGram {
		boundary = s.cur.startGram + s.cfg.Stride
	}
	s.emit(s.cur, boundary)
	s.flip.startGram = boundary
	s.cur = s.flip
	s.hasFlip = false
}

// emit finalizes the run as a span ending at endGram.
func (s *SpanStream) emit(r segRun, endGram int) {
	s.appendSpan(r, s.gramByte(r.startGram), s.gramByte(endGram))
}

func (s *SpanStream) appendSpan(r segRun, startByte, endByte int) {
	sp := Span{Start: startByte, End: endByte}
	if r.label == unknownLabel {
		sp.Unknown = true
	} else {
		sp.Lang = s.d.clf.langs[r.label]
	}
	if r.windows > 0 {
		sp.Score = r.scoreSum / float64(r.windows)
		sp.Margin = r.marginSum / float64(r.windows)
	}
	s.spans = append(s.spans, sp)
}

// gramByte maps an n-gram index to the byte offset where that n-gram
// starts. Alphabet translation is one code per byte, so emitted n-gram
// i begins at character — byte — i·subsample.
func (s *SpanStream) gramByte(g int) int {
	b := g * s.sub
	if b > s.bytesSeen {
		b = s.bytesSeen
	}
	return b
}

// Spans returns the spans finalized so far; the span in progress at
// the stream head is excluded until Finish confirms where it ends. The
// returned slice is valid until the next Reset.
func (s *SpanStream) Spans() []Span { return s.spans }

// Finish closes the document: the buffered tail takes its one
// counting pass into the running totals, the final span is emitted,
// and the complete tiling of [0, bytes written) is returned. A
// document that never filled one window is decided whole, exactly as
// Detect would decide it. After Finish the stream rejects further
// writes until Reset; Match and Result stay readable.
func (s *SpanStream) Finish() []Span {
	if s.done {
		return s.spans
	}
	s.done = true
	if s.chunkFill > 0 {
		tmp := s.scratchCounts()
		s.d.clf.accumulateInto(tmp, s.chunkBuf[:s.chunkFill])
		for i, v := range tmp {
			s.totals[i] += v
		}
		s.chunkFill = 0
	}
	if s.bytesSeen == 0 {
		return s.spans
	}
	if s.windows == 0 {
		// Shorter than one window: a single whole-document decision over
		// the full totals.
		m := s.d.match(s.totals, s.gramsSeen)
		s.spans = append(s.spans, Span{
			Start: 0, End: s.bytesSeen,
			Lang: m.Lang, Score: m.Score, Margin: m.Margin, Unknown: m.Unknown,
		})
		return s.spans
	}
	// An unconfirmed flip at end of document folds back into the
	// incumbent — end of input is not persistence.
	s.foldFlip()
	s.appendSpan(s.cur, s.gramByte(s.cur.startGram), s.bytesSeen)
	return s.spans
}

// Match reports the whole-document detection over everything written
// so far, under the detector's policy — the same answer Detect gives
// on the same bytes. The totals ride along with chunk counting, so a
// caller wanting both the document-level match and its spans (the
// serving layer's /stream spans mode) pays for one counting pass, not
// two.
func (s *SpanStream) Match() Match {
	counts := s.totals
	if s.chunkFill > 0 {
		// Fold the buffered tail into a scratch copy; the tail's real
		// pass happens when its chunk completes or at Finish.
		tmp := s.scratchCounts()
		s.d.clf.accumulateInto(tmp, s.chunkBuf[:s.chunkFill])
		for i, v := range s.totals {
			tmp[i] += v
		}
		counts = tmp
	}
	return s.d.match(counts, s.gramsSeen)
}

// Result returns the legacy per-language counter view of everything
// written so far, for callers that need raw counts alongside the
// spans.
func (s *SpanStream) Result() Result {
	counts := s.totals
	if s.chunkFill > 0 {
		tmp := s.scratchCounts()
		s.d.clf.accumulateInto(tmp, s.chunkBuf[:s.chunkFill])
		for i, v := range s.totals {
			tmp[i] += v
		}
		counts = tmp
	}
	r := Result{
		Counts: append([]int(nil), counts...),
		NGrams: s.gramsSeen,
		Best:   -1,
		Second: -1,
	}
	r.selectWinners()
	return r
}

// scratchCounts returns the zeroed language-count scratch row.
func (s *SpanStream) scratchCounts() []int {
	if cap(s.tmp) < s.langs {
		s.tmp = make([]int, s.langs)
	}
	s.tmp = s.tmp[:s.langs]
	for i := range s.tmp {
		s.tmp[i] = 0
	}
	return s.tmp
}

// floatWinners is winners over smoothed float counts: indices of the
// highest and second-highest values, ties towards the lower index (the
// lexicographically earlier language).
func floatWinners(scores []float64) (best, second int) {
	best, second = -1, -1
	for i, v := range scores {
		switch {
		case best == -1 || v > scores[best]:
			second = best
			best = i
		case second == -1 || v > scores[second]:
			second = i
		}
	}
	return best, second
}
