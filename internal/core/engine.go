package core

import (
	"runtime"
	"sync"
	"time"

	"bloomlang/internal/corpus"
)

// Engine fans document classification out over a pool of goroutines.
// It is the software analogue of the hardware's document-level
// parallelism ("parallel document processing", §1): each worker owns
// its extraction buffer and the classifier's membership structures are
// read-only after construction, so the hot path shares nothing mutable.
type Engine struct {
	c       *Classifier
	workers int
}

// NewEngine wraps a classifier; workers <= 0 means GOMAXPROCS.
func NewEngine(c *Classifier, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{c: c, workers: workers}
}

// Classifier returns the wrapped classifier.
func (e *Engine) Classifier() *Classifier { return e.c }

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// ClassifyAll classifies every document, preserving input order in the
// returned results.
func (e *Engine) ClassifyAll(docs []corpus.Document) []Result {
	results := make([]Result, len(docs))
	if len(docs) == 0 {
		return results
	}
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []uint32
			for i := range next {
				buf = e.c.ExtractGrams(buf[:0], docs[i].Text)
				results[i] = e.c.ClassifyGrams(buf)
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// ThroughputReport is a measured software classification run.
type ThroughputReport struct {
	// Bytes is the total input size processed.
	Bytes int64
	// Elapsed is the wall-clock time for classification only (documents
	// already in memory, matching §5.4's measurement methodology).
	Elapsed time.Duration
	// Docs is the number of documents classified.
	Docs int
}

// MBPerSec returns throughput in the paper's MB/sec (2^20 bytes).
func (r ThroughputReport) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// Measure classifies all documents and reports wall-clock throughput.
// Results are discarded; use ClassifyAll when they matter.
func (e *Engine) Measure(docs []corpus.Document) ThroughputReport {
	var bytes int64
	for _, d := range docs {
		bytes += int64(len(d.Text))
	}
	start := time.Now()
	e.ClassifyAll(docs)
	return ThroughputReport{Bytes: bytes, Elapsed: time.Since(start), Docs: len(docs)}
}

// Evaluation aggregates classification accuracy over a labelled test
// set, in the form the paper reports: per-language accuracy, the average
// across languages, and the confusion structure behind §5.2's
// observations.
type Evaluation struct {
	// Languages is the label order for the matrices below.
	Languages []string
	// PerLanguage maps language code to fraction of its test documents
	// classified correctly.
	PerLanguage map[string]float64
	// Average is the unweighted mean of PerLanguage (the paper's
	// "average accuracy").
	Average float64
	// Min and Max are the extreme per-language accuracies (the paper's
	// "varies between 99.05% and 99.76%").
	Min, Max float64
	// Confusion[truth][predicted] counts documents of language truth
	// classified as predicted.
	Confusion map[string]map[string]int
	// Docs is the number of test documents evaluated.
	Docs int
}

// Evaluate classifies the corpus test split and scores it.
func (e *Engine) Evaluate(corp *corpus.Corpus) Evaluation {
	langs := e.c.Languages()
	ev := Evaluation{
		Languages:   langs,
		PerLanguage: make(map[string]float64, len(langs)),
		Confusion:   make(map[string]map[string]int, len(langs)),
	}
	for _, truth := range corp.Languages {
		docs := corp.Test[truth]
		if len(docs) == 0 {
			continue
		}
		results := e.ClassifyAll(docs)
		row := make(map[string]int)
		correct := 0
		for _, r := range results {
			pred := r.BestLanguage(langs)
			row[pred]++
			if pred == truth {
				correct++
			}
		}
		ev.Confusion[truth] = row
		acc := float64(correct) / float64(len(docs))
		ev.PerLanguage[truth] = acc
		ev.Docs += len(docs)
	}
	first := true
	for _, acc := range ev.PerLanguage {
		ev.Average += acc
		if first || acc < ev.Min {
			ev.Min = acc
		}
		if first || acc > ev.Max {
			ev.Max = acc
		}
		first = false
	}
	if n := len(ev.PerLanguage); n > 0 {
		ev.Average /= float64(n)
	}
	return ev
}

// TopConfusion returns the most common misclassification as
// (truth, predicted, count), or ok=false if every document was correct.
func (ev Evaluation) TopConfusion() (truth, predicted string, count int, ok bool) {
	for t, row := range ev.Confusion {
		for p, n := range row {
			if p == t || p == "" {
				continue
			}
			if n > count {
				truth, predicted, count, ok = t, p, n, true
			}
		}
	}
	return truth, predicted, count, ok
}
