package vhdl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"bloomlang/internal/core"
)

func testClassifier(t *testing.T, k int, mBits uint32) *core.Classifier {
	t.Helper()
	cfg := core.Config{TopT: 200, K: k, MBits: mBits, Seed: 5}
	ps, err := core.TrainFromTexts(cfg, map[string][][]byte{
		"en": {[]byte("the quick brown fox jumps over the lazy dog repeatedly and often")},
		"fi": {[]byte("nopea ruskea kettu hyppii laiskan koiran yli usein ja uudelleen")},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(ps, core.BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func generate(t *testing.T, c *core.Classifier) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGenerateRequiresBloomBackend(t *testing.T) {
	cfg := core.Config{TopT: 100, Seed: 1}
	ps, _ := core.TrainFromTexts(cfg, map[string][][]byte{
		"en": {[]byte("sufficient training text for a small profile")},
	})
	direct, _ := core.New(ps, core.BackendDirect)
	if err := Generate(&bytes.Buffer{}, direct); err == nil {
		t.Error("Generate accepted a direct-lookup classifier")
	}
}

func TestGeneratedEntities(t *testing.T) {
	c := testClassifier(t, 4, 16*1024)
	src := generate(t, c)
	// One alphabet converter, one RAM template, one top.
	for _, entity := range []string{"alphabet_conv", "bitvector_ram", "classifier_top"} {
		if n := strings.Count(src, "entity "+entity+" is"); n != 1 {
			t.Errorf("entity %s declared %d times, want 1", entity, n)
		}
	}
	// k hash entities per language, one filter per language.
	for _, lang := range []string{"en", "fi"} {
		if n := strings.Count(src, "entity bloom_filter_"+lang+" is"); n != 1 {
			t.Errorf("bloom_filter_%s declared %d times", lang, n)
		}
		for h := 0; h < 4; h++ {
			name := fmt.Sprintf("entity h3_%s_%d is", lang, h)
			if n := strings.Count(src, name); n != 1 {
				t.Errorf("%q declared %d times", name, n)
			}
		}
	}
}

func TestGeneratedPortWidths(t *testing.T) {
	c := testClassifier(t, 4, 16*1024)
	src := generate(t, c)
	// 4-gram input: 20 bits -> "19 downto 0"; m=16Kbit -> 14-bit
	// addresses -> "13 downto 0".
	if !strings.Contains(src, "gram : in  std_logic_vector(19 downto 0)") {
		t.Error("hash input width is not 20 bits")
	}
	if !strings.Contains(src, "addr : out std_logic_vector(13 downto 0)") {
		t.Error("hash output width is not 14 bits")
	}
	if !strings.Contains(src, "generic (ADDR_W : integer := 14)") {
		t.Error("RAM address width is not 14")
	}
}

func TestGeneratedWidthsFollowConfig(t *testing.T) {
	c := testClassifier(t, 6, 4*1024)
	src := generate(t, c)
	// m=4Kbit -> 12-bit addresses; 6 hash entities per language.
	if !strings.Contains(src, "addr : out std_logic_vector(11 downto 0)") {
		t.Error("4Kbit vectors should give 12-bit addresses")
	}
	for h := 0; h < 6; h++ {
		if !strings.Contains(src, fmt.Sprintf("entity h3_en_%d is", h)) {
			t.Errorf("hash entity h3_en_%d missing", h)
		}
	}
	if strings.Contains(src, "entity h3_en_6 is") {
		t.Error("unexpected seventh hash entity")
	}
}

// Every XOR expression in a hash entity must reference exactly the
// input bits whose matrix rows have that output bit set.
func TestHashXORTermsMatchMatrix(t *testing.T) {
	c := testClassifier(t, 2, 4*1024)
	src := generate(t, c)
	f := c.Filter(0).Func(0) // language "en", hash 0
	// Count expected terms for output bit 0.
	expected := 0
	for i := uint(0); i < f.InputBits(); i++ {
		if f.Row(i)&1 != 0 {
			expected++
		}
	}
	// Find the entity body for h3_en_0 and its addr(0) line.
	start := strings.Index(src, "architecture xor_tree of h3_en_0 is")
	if start < 0 {
		t.Fatal("h3_en_0 architecture missing")
	}
	body := src[start:]
	end := strings.Index(body, "end architecture")
	body = body[:end]
	var line string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, "addr(0) <=") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatal("addr(0) assignment missing")
	}
	got := strings.Count(line, "gram(")
	if expected == 0 {
		if !strings.Contains(line, "'0'") {
			t.Errorf("empty row should assign '0', got %q", line)
		}
	} else if got != expected {
		t.Errorf("addr(0) has %d XOR terms, matrix says %d", got, expected)
	}
}

func TestGeneratedDeterministic(t *testing.T) {
	a := generate(t, testClassifier(t, 3, 8*1024))
	b := generate(t, testClassifier(t, 3, 8*1024))
	if a != b {
		t.Error("generation is not deterministic for identical classifiers")
	}
}

func TestAlphabetCaseStatement(t *testing.T) {
	c := testClassifier(t, 2, 4*1024)
	src := generate(t, c)
	// 'A' (65) and 'a' (97) fold to code 1; 'Z' (90) and 'z' (122) to 26.
	for _, want := range []string{
		"when 65 => code_out <= \"00001\";",
		"when 97 => code_out <= \"00001\";",
		"when 90 => code_out <= \"11010\";",
		"when 122 => code_out <= \"11010\";",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("alphabet table missing %q", want)
		}
	}
	// Consecutive accented bytes with the same base letter group into a
	// range: À..Å plus Æ (192..198) all fold to A.
	if !strings.Contains(src, "when 192 to 198 => code_out <= \"00001\";") {
		t.Error("accented A block not grouped to code 1")
	}
	if !strings.Contains(src, "when others => code_out <= \"00000\"") {
		t.Error("white-space default missing")
	}
}

func TestTopCountersPerLanguage(t *testing.T) {
	c := testClassifier(t, 2, 4*1024)
	src := generate(t, c)
	for _, lang := range []string{"en", "fi"} {
		if !strings.Contains(src, "count_"+lang) {
			t.Errorf("top entity missing counter for %s", lang)
		}
	}
	// Both gram slots must gate on their valid bits.
	if !strings.Contains(src, "gram_valid(0) = '1'") || !strings.Contains(src, "gram_valid(1) = '1'") {
		t.Error("counters do not gate on gram_valid")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("pt-BR") != "pt_BR" {
		t.Errorf("sanitize(pt-BR) = %q", sanitize("pt-BR"))
	}
	if sanitize("en") != "en" {
		t.Errorf("sanitize(en) = %q", sanitize("en"))
	}
}
