package registry

import (
	"sync/atomic"
	"time"

	"bloomlang/internal/core"
)

// Snapshot is one immutable (detector, version) pairing. Readers that
// need the detector and its version to agree must take one Snapshot
// and use both fields from it.
type Snapshot struct {
	// Detector serves requests for this snapshot's version.
	Detector *core.Detector
	// Version is the registry version id the detector was built from
	// ("" for a detector that did not come from a registry).
	Version string
	// SwappedAt is when this snapshot became current.
	SwappedAt time.Time
}

// Handle is the zero-downtime hot-swap point between the profile
// lifecycle and the serving path: a single atomic pointer to the
// current Snapshot. Readers load the pointer once per request — never
// blocking, never observing a torn state — and keep using the detector
// they loaded even while a swap replaces the pointer; the old detector
// stays valid for requests already holding it (the membership
// structures are immutable after construction) and becomes garbage
// once the last in-flight request drops it.
type Handle struct {
	p atomic.Pointer[Snapshot]
}

// NewHandle returns a handle serving det under the given version id.
// det must be non-nil.
func NewHandle(det *core.Detector, version string) *Handle {
	h := &Handle{}
	h.p.Store(&Snapshot{Detector: det, Version: version, SwappedAt: time.Now()})
	return h
}

// Snapshot returns the current (detector, version) pairing; never nil.
func (h *Handle) Snapshot() *Snapshot { return h.p.Load() }

// Detector returns the current detector; never nil.
func (h *Handle) Detector() *core.Detector { return h.p.Load().Detector }

// Version returns the current version id.
func (h *Handle) Version() string { return h.p.Load().Version }

// Swap atomically replaces the current snapshot and returns the
// previous one. In-flight readers holding the old snapshot are
// unaffected; every load after Swap returns observes the new one.
func (h *Handle) Swap(det *core.Detector, version string) *Snapshot {
	return h.p.Swap(&Snapshot{Detector: det, Version: version, SwappedAt: time.Now()})
}
