package registry_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/registry"
	"bloomlang/internal/train"
)

var (
	fixOnce  sync.Once
	fixCorp  *corpus.Corpus
	fixSets  []*core.ProfileSet
	fixStats []train.Stats
	fixErr   error
)

// fixtures trains two distinguishable profile sets (different TopT) to
// version against each other.
func fixtures(t testing.TB) (*corpus.Corpus, []*core.ProfileSet, []train.Stats) {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp, fixErr = corpus.Generate(corpus.Config{
			Languages:       []string{"en", "es", "fi"},
			DocsPerLanguage: 20,
			WordsPerDoc:     100,
			TrainFraction:   0.5,
			Seed:            23,
		})
		if fixErr != nil {
			return
		}
		for _, topT := range []int{1200, 600} {
			tr, err := train.New(core.Config{TopT: topT}, train.WithShards(2))
			if err != nil {
				fixErr = err
				return
			}
			for _, lang := range fixCorp.Languages {
				for _, doc := range fixCorp.Train[lang] {
					if err := tr.Add(lang, doc.Text); err != nil {
						fixErr = err
						return
					}
				}
			}
			ps, stats, err := tr.Finalize()
			if err != nil {
				fixErr = err
				return
			}
			fixSets = append(fixSets, ps)
			fixStats = append(fixStats, stats)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixCorp, fixSets, fixStats
}

// TestLifecycle drives the full train -> version -> activate -> swap
// -> rollback -> GC sequence against one on-disk registry.
func TestLifecycle(t *testing.T) {
	_, sets, stats := fixtures(t)
	reg, err := registry.Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}

	// Empty registry: nothing active, nothing listed.
	if _, err := reg.ActiveVersion(); !errors.Is(err, registry.ErrNoActive) {
		t.Fatalf("empty registry ActiveVersion err = %v, want ErrNoActive", err)
	}
	if ms, err := reg.List(); err != nil || len(ms) != 0 {
		t.Fatalf("empty registry List = %v, %v", ms, err)
	}

	// Create two versions.
	m1, err := reg.Create(sets[0], stats[0])
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != "v000001" {
		t.Errorf("first version id %q", m1.Version)
	}
	if m1.Checksum == "" || m1.ProfileBytes == 0 || m1.CreatedAt.IsZero() {
		t.Errorf("degenerate manifest %+v", m1)
	}
	if len(m1.Languages) != 3 || m1.Languages[0] != "en" {
		t.Errorf("manifest languages %v", m1.Languages)
	}
	if m1.Stats.Docs != stats[0].Docs {
		t.Errorf("manifest stats docs %d, want %d", m1.Stats.Docs, stats[0].Docs)
	}
	if m1.Config.TopT != 1200 {
		t.Errorf("manifest config %+v", m1.Config)
	}
	m2, err := reg.Create(sets[1], stats[1])
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != "v000002" {
		t.Errorf("second version id %q", m2.Version)
	}

	// Creating does not activate.
	if _, err := reg.ActiveVersion(); !errors.Is(err, registry.ErrNoActive) {
		t.Fatalf("Create activated implicitly: %v", err)
	}

	// Activate v1, then v2; rollback returns to v1.
	if err := reg.Activate(m1.Version); err != nil {
		t.Fatal(err)
	}
	if id, _ := reg.ActiveVersion(); id != m1.Version {
		t.Fatalf("active = %q, want %q", id, m1.Version)
	}
	if err := reg.Activate(m2.Version); err != nil {
		t.Fatal(err)
	}
	ps, m, err := reg.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != m2.Version || ps.Config.TopT != 600 {
		t.Fatalf("LoadActive = %s topT=%d", m.Version, ps.Config.TopT)
	}
	back, err := reg.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != m1.Version {
		t.Fatalf("rollback to %q, want %q", back, m1.Version)
	}
	if id, _ := reg.ActiveVersion(); id != m1.Version {
		t.Fatalf("active after rollback = %q", id)
	}
	if _, err := reg.Rollback(); err == nil {
		t.Fatal("second rollback succeeded with empty history")
	}

	// Activating the active version is a no-op, not a history entry.
	if err := reg.Activate(m1.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Rollback(); err == nil {
		t.Fatal("no-op activation grew the rollback history")
	}

	// List sees both versions in order.
	ms, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Version != m1.Version || ms[1].Version != m2.Version {
		t.Fatalf("List = %+v", ms)
	}

	// GC(0) removes everything but the active version.
	removed, err := reg.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != m2.Version {
		t.Fatalf("GC removed %v, want [%s]", removed, m2.Version)
	}
	if _, err := reg.Get(m2.Version); err == nil {
		t.Fatal("GC'd version still readable")
	}
	if _, err := reg.Load(m1.Version); err != nil {
		t.Fatalf("active version lost by GC: %v", err)
	}

	// New versions allocated after GC never reuse ids.
	m3, err := reg.Create(sets[1], stats[1])
	if err != nil {
		t.Fatal(err)
	}
	if m3.Version != "v000003" {
		t.Errorf("post-GC version id %q, want v000003", m3.Version)
	}
}

func TestLoadVerifiesChecksum(t *testing.T) {
	_, sets, stats := fixtures(t)
	root := filepath.Join(t.TempDir(), "registry")
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Create(sets[0], stats[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the stored profiles.
	path := filepath.Join(root, "versions", m.Version, "profiles.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load(m.Version); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted profiles loaded: err = %v", err)
	}
}

func TestActivateUnknownVersion(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate("v000042"); err == nil {
		t.Fatal("activated a version that does not exist")
	}
}

// TestReopen checks registry state is fully on disk: a fresh Registry
// over the same root sees the same versions and active pointer.
func TestReopen(t *testing.T) {
	_, sets, stats := fixtures(t)
	root := filepath.Join(t.TempDir(), "registry")
	reg, err := registry.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Create(sets[0], stats[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(m.Version); err != nil {
		t.Fatal(err)
	}

	reg2, err := registry.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	ps, m2, err := reg2.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != m.Version || len(ps.Profiles) != 3 {
		t.Fatalf("reopened registry LoadActive = %s, %d profiles", m2.Version, len(ps.Profiles))
	}
}
