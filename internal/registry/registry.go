// Package registry is the versioned on-disk profile store and the
// hot-swap mechanism of the profile lifecycle: train → version →
// activate → serve → rollback. The paper's deployment bakes profiles
// into on-chip Bloom filters offline (§2); this package is the
// software operations layer around that idea — every trained
// ProfileSet becomes an immutable, checksummed version, exactly one
// version is active at a time, and a serving process swaps to a new
// version atomically without dropping a request (see Handle).
//
// On disk a registry is a directory:
//
//	root/
//	  versions/
//	    v000001/profiles.bin   NGPS profile set (internal/core format)
//	    v000001/manifest.json  version, created_at, config, stats, checksum
//	    v000002/...
//	  CURRENT                  active version id
//	  HISTORY                  previous activations, oldest first
//
// Versions are immutable once created; CURRENT and HISTORY are updated
// by atomic rename, so a crash never leaves the registry pointing at a
// half-written state. A Registry value serializes its own operations;
// coordination between processes is the deployment's concern (run one
// writer — the trainer — per registry).
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bloomlang/internal/core"
	"bloomlang/internal/train"
)

const (
	versionsDir  = "versions"
	currentFile  = "CURRENT"
	historyFile  = "HISTORY"
	serialFile   = "SERIAL"
	profilesFile = "profiles.bin"
	manifestFile = "manifest.json"
)

// ErrNoActive reports a registry with no activated version.
var ErrNoActive = errors.New("registry: no active version")

// Manifest describes one immutable profile version.
type Manifest struct {
	// Version is the registry-assigned id, e.g. "v000003".
	Version string `json:"version"`
	// CreatedAt is the version's creation time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Config is the classifier configuration the profiles were trained
	// under; it travels with the version so serving rebuilds identical
	// filters.
	Config core.Config `json:"config"`
	// Languages is the trained language inventory, sorted.
	Languages []string `json:"languages"`
	// Stats summarizes the training corpus (documents, bytes, n-grams).
	Stats train.Stats `json:"stats"`
	// Checksum is the SHA-256 of profiles.bin, hex-encoded; Load
	// verifies it before deserializing.
	Checksum string `json:"checksum"`
	// ProfileBytes is the size of profiles.bin.
	ProfileBytes int64 `json:"profile_bytes"`
}

// Registry is a handle on one on-disk profile store.
type Registry struct {
	root string
	mu   sync.Mutex
}

// orphanTTL is how old a staging entry must be before Open treats it
// as crash debris. A live Create or Activate holds its temp entries
// for at most seconds; an hour-old one has no owner.
const orphanTTL = time.Hour

// Open opens (creating if necessary) the registry rooted at dir. It
// sweeps staging directories and temp files orphaned by a crashed
// writer; only entries older than orphanTTL are touched, so Open in a
// reader process never races a concurrent writer's in-flight staging.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, versionsDir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	sweepOrphans(dir)
	sweepOrphans(filepath.Join(dir, versionsDir))
	return &Registry{root: dir}, nil
}

// sweepOrphans removes stale ".*tmp*" staging entries in dir; every
// temp file and staging directory this package creates matches that
// shape and is meaningless outside the operation that made it.
func sweepOrphans(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < orphanTTL {
			continue
		}
		os.RemoveAll(filepath.Join(dir, name))
	}
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// Create writes ps as a new immutable version — profiles, checksum and
// manifest — and returns its manifest. The new version is not active
// until Activate is called.
func (r *Registry) Create(ps *core.ProfileSet, stats train.Stats) (*Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.nextVersionLocked()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(r.root, versionsDir, id)
	// Stage the whole version directory, then rename it into place, so
	// a half-written version is never visible under versions/.
	staging, err := os.MkdirTemp(filepath.Join(r.root, versionsDir), "."+id+".tmp")
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	defer os.RemoveAll(staging)

	profilePath := filepath.Join(staging, profilesFile)
	if err := ps.SaveFile(profilePath); err != nil {
		return nil, fmt.Errorf("registry: writing profiles: %w", err)
	}
	sum, size, err := checksumFile(profilePath)
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		Version:      id,
		CreatedAt:    time.Now().UTC().Truncate(time.Second),
		Config:       ps.Config.WithDefaults(),
		Languages:    ps.Languages(),
		Stats:        stats,
		Checksum:     sum,
		ProfileBytes: size,
	}
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(staging, manifestFile), append(mj, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := os.Chmod(staging, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	// Flush the version's contents before publishing it, so a crash
	// after the rename can never surface a truncated profile file or
	// manifest under versions/.
	if err := syncFile(profilePath); err != nil {
		return nil, err
	}
	if err := syncFile(filepath.Join(staging, manifestFile)); err != nil {
		return nil, err
	}
	if err := syncDir(staging); err != nil {
		return nil, err
	}
	if err := os.Rename(staging, dir); err != nil {
		return nil, fmt.Errorf("registry: publishing %s: %w", id, err)
	}
	return m, syncDir(filepath.Join(r.root, versionsDir))
}

// nextVersionLocked allocates the next sequential version id. The high
// water mark persists in SERIAL so ids are never reused after GC — a
// rollback history or an operator's notes must never silently point at
// a different profile set than they did when written.
func (r *Registry) nextVersionLocked() (string, error) {
	ids, err := r.versionIDsLocked()
	if err != nil {
		return "", err
	}
	max := 0
	for _, id := range ids {
		if n, ok := parseVersion(id); ok && n > max {
			max = n
		}
	}
	if data, err := os.ReadFile(filepath.Join(r.root, serialFile)); err == nil {
		if n, ok := parseVersion(strings.TrimSpace(string(data))); ok && n > max {
			max = n
		}
	} else if !os.IsNotExist(err) {
		return "", fmt.Errorf("registry: %w", err)
	}
	id := fmt.Sprintf("v%06d", max+1)
	if err := r.writeAtomicLocked(serialFile, id+"\n"); err != nil {
		return "", err
	}
	return id, nil
}

// parseVersion extracts the sequence number from a "vNNNNNN" id.
func parseVersion(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'v' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// versionIDsLocked lists version ids in ascending order.
func (r *Registry) versionIDsLocked() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.root, versionsDir))
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if _, ok := parseVersion(e.Name()); e.IsDir() && ok {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids) // zero-padded: lexicographic == numeric
	return ids, nil
}

// List returns every version's manifest in ascending version order.
func (r *Registry) List() ([]*Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids, err := r.versionIDsLocked()
	if err != nil {
		return nil, err
	}
	ms := make([]*Manifest, 0, len(ids))
	for _, id := range ids {
		m, err := r.manifestLocked(id)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// Get returns one version's manifest.
func (r *Registry) Get(version string) (*Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.manifestLocked(version)
}

func (r *Registry) manifestLocked(version string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(r.root, versionsDir, version, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("registry: unknown version %q", version)
		}
		return nil, fmt.Errorf("registry: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("registry: decoding %s manifest: %w", version, err)
	}
	return &m, nil
}

// ActiveVersion returns the active version id, or ErrNoActive.
func (r *Registry) ActiveVersion() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked()
}

func (r *Registry) activeLocked() (string, error) {
	data, err := os.ReadFile(filepath.Join(r.root, currentFile))
	if os.IsNotExist(err) {
		return "", ErrNoActive
	}
	if err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	id := strings.TrimSpace(string(data))
	if id == "" {
		return "", ErrNoActive
	}
	return id, nil
}

// Active returns the active version's manifest, or ErrNoActive.
func (r *Registry) Active() (*Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.activeLocked()
	if err != nil {
		return nil, err
	}
	return r.manifestLocked(id)
}

// Activate makes version the active one, recording the previously
// active version in the rollback history. Activating the already
// active version is a no-op.
func (r *Registry) Activate(version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.manifestLocked(version); err != nil {
		return err
	}
	prev, err := r.activeLocked()
	if err != nil && !errors.Is(err, ErrNoActive) {
		return err
	}
	if prev == version {
		return nil
	}
	if prev != "" {
		if err := r.appendHistoryLocked(prev); err != nil {
			return err
		}
	}
	return r.writeAtomicLocked(currentFile, version+"\n")
}

// Rollback reactivates the most recently superseded version, popping
// it from the history, and returns its id. It fails when there is
// nothing to roll back to.
func (r *Registry) Rollback() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hist, err := r.historyLocked()
	if err != nil {
		return "", err
	}
	// Skip history entries whose versions have been GC'd.
	for len(hist) > 0 {
		last := hist[len(hist)-1]
		hist = hist[:len(hist)-1]
		if _, err := r.manifestLocked(last); err != nil {
			continue
		}
		// CURRENT first, HISTORY trim second: if the trim is never
		// reached, a retried Rollback re-activates the same version (a
		// no-op repeat) instead of silently skipping past it.
		if err := r.writeAtomicLocked(currentFile, last+"\n"); err != nil {
			return "", err
		}
		return last, r.writeHistoryLocked(hist)
	}
	return "", errors.New("registry: no version to roll back to")
}

func (r *Registry) historyLocked() ([]string, error) {
	data, err := os.ReadFile(filepath.Join(r.root, historyFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var hist []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			hist = append(hist, line)
		}
	}
	return hist, nil
}

func (r *Registry) appendHistoryLocked(id string) error {
	hist, err := r.historyLocked()
	if err != nil {
		return err
	}
	return r.writeHistoryLocked(append(hist, id))
}

func (r *Registry) writeHistoryLocked(hist []string) error {
	var b strings.Builder
	for _, id := range hist {
		b.WriteString(id)
		b.WriteByte('\n')
	}
	return r.writeAtomicLocked(historyFile, b.String())
}

// writeAtomicLocked replaces root/name via temp file + fsync + rename
// + directory fsync, so the pointer files survive power loss with
// either the old or the new content, never a truncated one.
func (r *Registry) writeAtomicLocked(name, content string) error {
	tmp, err := os.CreateTemp(r.root, "."+name+".tmp*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := io.WriteString(tmp, content); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.root, name)); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return syncDir(r.root)
}

// syncFile fsyncs an already-written file by path (opening read-only
// is enough to flush its data on the platforms we target).
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("registry: syncing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("registry: syncing %s: %w", dir, err)
	}
	return nil
}

// GC removes old inactive versions, keeping the active version and the
// keep newest others. It returns the removed version ids; removed
// versions also disappear from the rollback history.
func (r *Registry) GC(keep int) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids, err := r.versionIDsLocked()
	if err != nil {
		return nil, err
	}
	active, err := r.activeLocked()
	if err != nil && !errors.Is(err, ErrNoActive) {
		return nil, err
	}
	var inactive []string
	for _, id := range ids {
		if id != active {
			inactive = append(inactive, id)
		}
	}
	if len(inactive) <= keep {
		return nil, nil
	}
	doomed := inactive[:len(inactive)-keep] // ascending order: oldest first
	removedSet := make(map[string]bool, len(doomed))
	for _, id := range doomed {
		if err := os.RemoveAll(filepath.Join(r.root, versionsDir, id)); err != nil {
			return nil, fmt.Errorf("registry: removing %s: %w", id, err)
		}
		removedSet[id] = true
	}
	hist, err := r.historyLocked()
	if err != nil {
		return nil, err
	}
	kept := hist[:0]
	for _, id := range hist {
		if !removedSet[id] {
			kept = append(kept, id)
		}
	}
	if len(kept) != len(hist) {
		if err := r.writeHistoryLocked(kept); err != nil {
			return nil, err
		}
	}
	return doomed, nil
}

// Load deserializes one version's profiles after verifying the
// manifest checksum, so a corrupted or tampered profile file is
// refused rather than served.
func (r *Registry) Load(version string) (*core.ProfileSet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.manifestLocked(version)
	if err != nil {
		return nil, err
	}
	return r.loadLocked(m)
}

// loadLocked reads the version's profile file once, verifies the
// manifest checksum over those exact bytes, and deserializes from the
// same buffer — the bytes served are always the bytes verified.
func (r *Registry) loadLocked(m *Manifest) (*core.ProfileSet, error) {
	path := filepath.Join(r.root, versionsDir, m.Version, profilesFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	sum := sha256.Sum256(data)
	if hexSum := hex.EncodeToString(sum[:]); hexSum != m.Checksum {
		return nil, fmt.Errorf("registry: %s profile checksum mismatch (have %s, manifest %s)", m.Version, hexSum, m.Checksum)
	}
	ps, err := core.ReadProfileSet(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("registry: loading %s: %w", m.Version, err)
	}
	return ps, nil
}

// LoadActive loads the active version's profiles and manifest.
func (r *Registry) LoadActive() (*core.ProfileSet, *Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.activeLocked()
	if err != nil {
		return nil, nil, err
	}
	m, err := r.manifestLocked(id)
	if err != nil {
		return nil, nil, err
	}
	ps, err := r.loadLocked(m)
	if err != nil {
		return nil, nil, err
	}
	return ps, m, nil
}

// checksumFile returns the hex SHA-256 and size of the file at path.
func checksumFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, fmt.Errorf("registry: checksumming %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
