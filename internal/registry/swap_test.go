package registry_test

// The zero-downtime requirement, tested at the library layer: many
// goroutines detect through a Handle while the lifecycle loop keeps
// activating, rolling back, reloading and swapping versions. Under
// `go test -race` this proves readers never block on a swap, never
// observe a nil or torn (detector, version) pairing, and never fail a
// single detection.

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/registry"
)

func TestConcurrentHotSwap(t *testing.T) {
	corp, sets, stats := fixtures(t)
	reg, err := registry.Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	versions := make([]string, len(sets))
	detectors := make(map[string]*core.Detector, len(sets))
	for i, ps := range sets {
		m, err := reg.Create(ps, stats[i])
		if err != nil {
			t.Fatal(err)
		}
		versions[i] = m.Version
	}
	if err := reg.Activate(versions[0]); err != nil {
		t.Fatal(err)
	}

	// Build the initial detector the way a daemon would: load the
	// active version back off disk.
	ps, m, err := reg.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(ps)
	if err != nil {
		t.Fatal(err)
	}
	h := registry.NewHandle(det, m.Version)
	detectors[m.Version] = det

	const swaps = 60
	var stop atomic.Bool
	var detections atomic.Int64
	var wg sync.WaitGroup

	// Readers: hammer Detect through the handle until told to stop.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lang := corp.Languages[w%len(corp.Languages)]
			doc := corp.Train[lang][w%len(corp.Train[lang])].Text
			for !stop.Load() {
				snap := h.Snapshot()
				if snap == nil || snap.Detector == nil {
					t.Error("reader observed nil snapshot")
					return
				}
				if snap.Version != versions[0] && snap.Version != versions[1] {
					t.Errorf("reader observed unknown version %q", snap.Version)
					return
				}
				m := snap.Detector.Detect(doc)
				if m.Lang != lang {
					t.Errorf("reader got %q for a %q document (version %s)", m.Lang, lang, snap.Version)
					return
				}
				detections.Add(1)
			}
		}(w)
	}

	// Lifecycle loop: alternate activate/rollback on the registry,
	// reload the active version from disk, swap it in.
	for i := 0; i < swaps && !t.Failed(); i++ {
		if i%2 == 0 {
			if err := reg.Activate(versions[1]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := reg.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
		ps, m, err := reg.LoadActive()
		if err != nil {
			t.Fatal(err)
		}
		// Cache detectors per version: rebuilding every time is what a
		// server does, but alternating between live instances stresses
		// the swap harder than always swapping a fresh pointer.
		next := detectors[m.Version]
		if next == nil {
			if next, err = core.NewDetector(ps); err != nil {
				t.Fatal(err)
			}
			detectors[m.Version] = next
		}
		prev := h.Swap(next, m.Version)
		if prev == nil || prev.Detector == nil {
			t.Fatal("swap returned nil previous snapshot")
		}
	}
	stop.Store(true)
	wg.Wait()
	if detections.Load() == 0 {
		t.Fatal("readers made no detections while swapping")
	}
	if h.Version() != versions[0] {
		// swaps is even: the loop's last act was a rollback to v1.
		t.Errorf("final version %q, want %q", h.Version(), versions[0])
	}
	if h.Detector() != detectors[versions[0]] {
		t.Error("final detector does not match final version")
	}
}
