// Package alphabet implements the character translation stage of the
// n-gram language classifier described in Jacob & Gokhale, "Language
// Classification using N-grams Accelerated by FPGA-based Bloom Filters"
// (HPRCTA'07), §3.3.
//
// The hardware's alphabet conversion module translates 8-bit extended
// ASCII (ISO-8859-1) characters into a 5-bit code: lower-case characters
// are converted to upper case, accented characters are mapped to their
// non-accented versions, and all other characters are mapped to a default
// white-space code. The module is implemented in hardware with comparator
// and muxing logic; here it is a 256-entry lookup table, which is the
// alternative implementation the paper mentions (tables stored in
// embedded RAMs).
package alphabet

// Code is a 5-bit alphabet code produced by the conversion module.
// Space is 0 and the letters A-Z are 1-26; values 27-31 are unused,
// matching the paper's 27-symbol working alphabet.
type Code uint8

const (
	// Space is the default white-space code assigned to every byte that
	// is not a (possibly accented) letter.
	Space Code = 0

	// NumCodes is the number of distinct codes the translator can emit
	// (space plus 26 letters).
	NumCodes = 27

	// Bits is the width of a translated character in the hardware
	// datapath.
	Bits = 5
)

// table maps every ISO-8859-1 byte to its 5-bit code. Built once at
// package initialization; the hardware equivalent is a 256x5 ROM.
var table [256]Code

func init() {
	for i := 0; i < 256; i++ {
		table[i] = classify(byte(i))
	}
}

// classify computes the code for one byte. It is used only to build the
// lookup table; Translate and friends use the table.
func classify(b byte) Code {
	switch {
	case b >= 'A' && b <= 'Z':
		return Code(b-'A') + 1
	case b >= 'a' && b <= 'z':
		return Code(b-'a') + 1
	}
	// ISO-8859-1 accented letters fold to their unaccented base letter.
	// 0xD7 (multiplication sign) and 0xF7 (division sign) are symbols,
	// not letters, and fall through to white space.
	if l, ok := latin1Base[b]; ok {
		return Code(l-'A') + 1
	}
	return Space
}

// latin1Base maps ISO-8859-1 accented code points to their base letter.
// Both the upper-case (0xC0-0xDE) and lower-case (0xE0-0xFE) halves are
// listed explicitly so the mapping is auditable against the standard.
var latin1Base = map[byte]byte{
	// Upper-case block.
	0xC0: 'A', 0xC1: 'A', 0xC2: 'A', 0xC3: 'A', 0xC4: 'A', 0xC5: 'A',
	0xC6: 'A', // Æ folds to A (first letter of the ligature)
	0xC7: 'C',
	0xC8: 'E', 0xC9: 'E', 0xCA: 'E', 0xCB: 'E',
	0xCC: 'I', 0xCD: 'I', 0xCE: 'I', 0xCF: 'I',
	0xD0: 'D', // Ð (Eth)
	0xD1: 'N',
	0xD2: 'O', 0xD3: 'O', 0xD4: 'O', 0xD5: 'O', 0xD6: 'O',
	0xD8: 'O', // Ø
	0xD9: 'U', 0xDA: 'U', 0xDB: 'U', 0xDC: 'U',
	0xDD: 'Y',
	0xDE: 'T', // Þ (Thorn)
	0xDF: 'S', // ß folds to S
	// Lower-case block.
	0xE0: 'A', 0xE1: 'A', 0xE2: 'A', 0xE3: 'A', 0xE4: 'A', 0xE5: 'A',
	0xE6: 'A',
	0xE7: 'C',
	0xE8: 'E', 0xE9: 'E', 0xEA: 'E', 0xEB: 'E',
	0xEC: 'I', 0xED: 'I', 0xEE: 'I', 0xEF: 'I',
	0xF0: 'D',
	0xF1: 'N',
	0xF2: 'O', 0xF3: 'O', 0xF4: 'O', 0xF5: 'O', 0xF6: 'O',
	0xF8: 'O',
	0xF9: 'U', 0xFA: 'U', 0xFB: 'U', 0xFC: 'U',
	0xFD: 'Y',
	0xFE: 'T',
	0xFF: 'Y',
}

// Translate converts a single ISO-8859-1 byte to its 5-bit code.
func Translate(b byte) Code {
	return table[b]
}

// TranslateInto translates src into dst, which must be at least
// len(src) long, and returns the number of codes written (always
// len(src): the translation is one code per input byte, exactly as in
// the hardware where the stream width is preserved). It panics if dst is
// too short, mirroring the built-in copy contract for fixed-size
// pipeline stages.
func TranslateInto(dst []Code, src []byte) int {
	if len(dst) < len(src) {
		panic("alphabet: destination shorter than source")
	}
	for i, b := range src {
		dst[i] = table[b]
	}
	return len(src)
}

// TranslateAll translates src into a freshly allocated code slice.
func TranslateAll(src []byte) []Code {
	dst := make([]Code, len(src))
	TranslateInto(dst, src)
	return dst
}

// Letter reports whether c encodes a letter (as opposed to white space).
func (c Code) Letter() bool { return c >= 1 && c <= 26 }

// Byte returns the canonical ASCII representation of the code: 'A'-'Z'
// for letters and ' ' for the white-space code. Unused code values also
// render as spaces so that corrupted streams stay printable.
func (c Code) Byte() byte {
	if c.Letter() {
		return 'A' + byte(c) - 1
	}
	return ' '
}

// String implements fmt.Stringer for diagnostics.
func (c Code) String() string { return string(c.Byte()) }
