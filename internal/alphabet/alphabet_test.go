package alphabet

import (
	"testing"
	"testing/quick"
)

func TestLetterCodes(t *testing.T) {
	for b := byte('A'); b <= 'Z'; b++ {
		want := Code(b-'A') + 1
		if got := Translate(b); got != want {
			t.Errorf("Translate(%q) = %d, want %d", b, got, want)
		}
	}
}

func TestCaseFolding(t *testing.T) {
	for b := byte('a'); b <= 'z'; b++ {
		if got, want := Translate(b), Translate(b-'a'+'A'); got != want {
			t.Errorf("Translate(%q) = %d, want %d (upper-case value)", b, got, want)
		}
	}
}

func TestAccentStripping(t *testing.T) {
	cases := []struct {
		in   byte
		want byte
	}{
		{0xC9, 'E'}, // É
		{0xE9, 'E'}, // é
		{0xE8, 'E'}, // è
		{0xE7, 'C'}, // ç
		{0xF1, 'N'}, // ñ
		{0xE3, 'A'}, // ã
		{0xF5, 'O'}, // õ
		{0xE4, 'A'}, // ä
		{0xF6, 'O'}, // ö
		{0xE5, 'A'}, // å
		{0xF8, 'O'}, // ø
		{0xFC, 'U'}, // ü
		{0xDF, 'S'}, // ß
		{0xC6, 'A'}, // Æ
	}
	for _, c := range cases {
		if got, want := Translate(c.in), Translate(c.want); got != want {
			t.Errorf("Translate(0x%02X) = %d, want %d (code of %q)", c.in, got, want, c.want)
		}
	}
}

func TestNonLettersMapToSpace(t *testing.T) {
	for _, b := range []byte{' ', '\t', '\n', '0', '9', '.', ',', ';', '!', '?', '-', '_', '(', ')', 0x00, 0x7F, 0xA9, 0xD7, 0xF7} {
		if got := Translate(b); got != Space {
			t.Errorf("Translate(0x%02X) = %d, want Space", b, got)
		}
	}
}

func TestAllBytesProduceValidCodes(t *testing.T) {
	for i := 0; i < 256; i++ {
		c := Translate(byte(i))
		if c >= NumCodes {
			t.Errorf("Translate(0x%02X) = %d, out of range [0,%d)", i, c, NumCodes)
		}
	}
}

func TestTranslateIntoMatchesTranslate(t *testing.T) {
	f := func(src []byte) bool {
		dst := make([]Code, len(src))
		n := TranslateInto(dst, src)
		if n != len(src) {
			return false
		}
		for i, b := range src {
			if dst[i] != Translate(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateAll(t *testing.T) {
	// \xF6 is ö in ISO-8859-1 (the hardware's input encoding; Go source
	// literals are UTF-8, so spell the byte out).
	got := TranslateAll([]byte("Hello, W\xF6rld!"))
	want := "HELLO  WORLD "
	if len(got) != len(want) {
		t.Fatalf("TranslateAll length = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Byte() != want[i] {
			t.Errorf("code %d renders %q, want %q", i, got[i].Byte(), want[i])
		}
	}
}

func TestTranslateIntoPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TranslateInto did not panic on short destination")
		}
	}()
	TranslateInto(make([]Code, 1), []byte("ab"))
}

// Translation must be idempotent when round-tripped through the canonical
// byte representation: translating the rendering of a code yields the
// same code.
func TestRoundTripIdempotent(t *testing.T) {
	f := func(b byte) bool {
		c := Translate(b)
		return Translate(c.Byte()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeString(t *testing.T) {
	if Code(1).String() != "A" {
		t.Errorf("Code(1).String() = %q, want A", Code(1).String())
	}
	if Space.String() != " " {
		t.Errorf("Space.String() = %q, want space", Space.String())
	}
	if Code(31).String() != " " {
		t.Errorf("unused code should render as space, got %q", Code(31).String())
	}
}

func TestLetterPredicate(t *testing.T) {
	if Space.Letter() {
		t.Error("Space.Letter() = true")
	}
	if !Code(1).Letter() || !Code(26).Letter() {
		t.Error("letter codes not recognized")
	}
	if Code(27).Letter() {
		t.Error("Code(27).Letter() = true, want false")
	}
}

func BenchmarkTranslateInto(b *testing.B) {
	src := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]Code, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TranslateInto(dst, src)
	}
}
