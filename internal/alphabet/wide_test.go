package alphabet

import "testing"

func TestTranslateWideRune(t *testing.T) {
	cases := []struct {
		in   rune
		want WideCode
	}{
		{'a', 'A'},
		{'Z', 'Z'},
		{'α', 0x0391}, // α -> Α
		{'Ω', 0x03A9}, // Ω stays
		{'д', 0x0414}, // д -> Д
		{'ї', 0x0407}, // ї -> Ї (Ukrainian)
		{'é', 0x00C9}, // é -> É (wide path preserves accents)
		{' ', WideSpace},
		{'5', WideSpace},
		{',', WideSpace},
		{'\n', WideSpace},
		{'€', WideSpace}, // currency symbol is not a letter
	}
	for _, c := range cases {
		if got := TranslateWideRune(c.in); got != c.want {
			t.Errorf("TranslateWideRune(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestTranslateWideSupplementary(t *testing.T) {
	// Letters outside the BMP fold to the single supplementary bucket.
	got := TranslateWideRune('𐐷') // Deseret long ee, U+10437
	if got != wideSupplementary {
		t.Errorf("supplementary letter = %#x, want %#x", got, wideSupplementary)
	}
}

func TestTranslateWideString(t *testing.T) {
	codes := TranslateWide("aα1")
	if len(codes) != 3 {
		t.Fatalf("got %d codes, want 3 (one per rune)", len(codes))
	}
	if codes[0] != 'A' || codes[1] != 0x0391 || codes[2] != WideSpace {
		t.Errorf("codes = %#x", codes)
	}
}

func TestTranslateWideEmpty(t *testing.T) {
	if got := TranslateWide(""); len(got) != 0 {
		t.Errorf("empty string produced %d codes", len(got))
	}
}
