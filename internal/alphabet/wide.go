package alphabet

import "unicode"

// This file implements the §3.3 extension: "While our current
// implementation is limited to common European languages representable
// with extended ASCII, it can be extended to other encodings such as
// 16-bit Unicode that have a larger alphabet."
//
// The wide converter maps Unicode text to a stream of 16-bit codes:
// letters are case-folded to upper case (the wide analogue of the 5-bit
// converter's folding), everything else becomes the white-space code,
// and code points outside the Basic Multilingual Plane fold to a single
// out-of-alphabet code. The n-gram machinery then operates on packed
// 16-bit characters, and only the hash input width changes — exactly
// the property the paper highlights over direct-lookup tables, which
// would grow exponentially with the alphabet.

// WideCode is a 16-bit alphabet code.
type WideCode uint16

// WideBits is the width of one wide character in the datapath.
const WideBits = 16

// WideSpace is the wide white-space code.
const WideSpace WideCode = 0

// wideSupplementary is the single bucket for letters outside the BMP.
const wideSupplementary WideCode = 0xFFFF

// TranslateWideRune converts one rune to its 16-bit code.
func TranslateWideRune(r rune) WideCode {
	if !unicode.IsLetter(r) {
		return WideSpace
	}
	r = unicode.ToUpper(r)
	if r > 0xFFFE {
		return wideSupplementary
	}
	return WideCode(r)
}

// TranslateWide converts a UTF-8 string to its wide code stream. One
// code is produced per rune (not per byte): the hardware analogue is a
// UTF-16 datapath fed by a decoder front-end.
func TranslateWide(s string) []WideCode {
	out := make([]WideCode, 0, len(s))
	for _, r := range s {
		out = append(out, TranslateWideRune(r))
	}
	return out
}
