package xd1000

import (
	"testing"

	"bloomlang/internal/ht"
)

func TestFaultInjectionCorruption(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("en")[:8]
	s := newSystem(t, Options{Faults: FaultConfig{CorruptEveryN: 4}})
	s.Program()
	rep, err := s.Stream(docs, ModeAsync, true)
	if err != nil {
		t.Fatal(err)
	}
	// Documents 4 and 8 were corrupted in flight: exactly two checksum
	// failures, detected by the host from the returned XOR checksum.
	if rep.ChecksumFailures != 2 {
		t.Errorf("ChecksumFailures = %d, want 2", rep.ChecksumFailures)
	}
	// The uncorrupted documents still verify and classify.
	okCount := 0
	for _, dr := range rep.Results {
		if dr.ChecksumOK {
			okCount++
		}
	}
	if okCount != 6 {
		t.Errorf("%d clean documents, want 6", okCount)
	}
	if rep.WatchdogTrips != 0 {
		t.Errorf("corruption tripped the watchdog %d times", rep.WatchdogTrips)
	}
}

func TestFaultInjectionSingleByteDoesNotFlipLanguage(t *testing.T) {
	// One flipped byte changes at most n window positions of n-grams;
	// classification is robust even though the checksum catches it.
	corp, _ := setup(t)
	docs := corp.TestDocuments("fi")[:4]
	s := newSystem(t, Options{Faults: FaultConfig{CorruptEveryN: 1}})
	s.Program()
	rep, err := s.Stream(docs, ModeAsync, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures != 4 {
		t.Errorf("ChecksumFailures = %d, want 4", rep.ChecksumFailures)
	}
	if rep.Accuracy() < 1.0 {
		t.Errorf("single-byte corruption flipped a classification: accuracy %.2f", rep.Accuracy())
	}
}

func TestFaultInjectionStall(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("es")[:6]
	s := newSystem(t, Options{
		WatchdogTimeout: 50 * ht.Microsecond,
		Faults:          FaultConfig{StallEveryN: 3},
	})
	s.Program()
	rep, err := s.Stream(docs, ModeAsync, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (docs 3 and 6)", rep.Retries)
	}
	if rep.WatchdogTrips != 2 {
		t.Errorf("WatchdogTrips = %d, want 2", rep.WatchdogTrips)
	}
	// Every document ultimately classifies with a valid checksum: the
	// retry path recovers completely.
	if rep.ChecksumFailures != 0 {
		t.Errorf("%d checksum failures after recovery", rep.ChecksumFailures)
	}
	if rep.Accuracy() < 0.8 {
		t.Errorf("post-recovery accuracy %.2f", rep.Accuracy())
	}
	// Stalls cost simulated time: the run must be slower than a clean
	// one over the same documents.
	clean := newSystem(t, Options{WatchdogTimeout: 50 * ht.Microsecond})
	clean.Program()
	cleanRep, err := clean.Stream(docs, ModeAsync, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimTime <= cleanRep.SimTime {
		t.Errorf("faulty run (%v) not slower than clean run (%v)", rep.SimTime, cleanRep.SimTime)
	}
}

func TestFaultInjectionBothModes(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("da")[:4]
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		s := newSystem(t, Options{
			WatchdogTimeout: 50 * ht.Microsecond,
			Faults:          FaultConfig{CorruptEveryN: 2, StallEveryN: 3},
		})
		s.Program()
		rep, err := s.Stream(docs, mode, false)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.ChecksumFailures != 2 {
			t.Errorf("%v: ChecksumFailures = %d, want 2", mode, rep.ChecksumFailures)
		}
		if rep.Retries != 1 {
			t.Errorf("%v: Retries = %d, want 1", mode, rep.Retries)
		}
	}
}
