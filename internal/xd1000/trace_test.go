package xd1000

import (
	"strings"
	"testing"

	"bloomlang/internal/ht"
)

func TestTraceRecordsTimeline(t *testing.T) {
	corp, _ := setup(t)
	tr := NewTrace(10000)
	s := newSystem(t, Options{Trace: tr})
	s.Program()
	docs := corp.TestDocuments("en")[:3]
	if _, err := s.Stream(docs, ModeAsync, false); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// Time must be monotone non-decreasing... per event source it is;
	// the async fold/up events interleave with the next descriptor, so
	// only require the first and last to be ordered and all non-negative.
	for i, e := range events {
		if e.At < 0 {
			t.Fatalf("event %d has negative time", i)
		}
	}
	kinds := map[TraceKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[TraceDMADown] != 3 {
		t.Errorf("dma-down events = %d, want 3", kinds[TraceDMADown])
	}
	if kinds[TraceFold] != 3 {
		t.Errorf("fold events = %d, want 3", kinds[TraceFold])
	}
	if kinds[TraceDMAUp] != 3 {
		t.Errorf("dma-up events = %d, want 3", kinds[TraceDMAUp])
	}
	// Programming left one command event per language plus the reset.
	if kinds[TraceCommand] != 11 {
		t.Errorf("command events = %d, want 11", kinds[TraceCommand])
	}
}

func TestTraceSyncIncludesInterrupts(t *testing.T) {
	corp, _ := setup(t)
	tr := NewTrace(0)
	s := newSystem(t, Options{Trace: tr})
	s.Program()
	if _, err := s.Stream(corp.TestDocuments("fi")[:2], ModeSync, false); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range tr.Events() {
		if e.Kind == TraceInterrupt {
			n++
		}
	}
	if n != 2 {
		t.Errorf("interrupt events = %d, want 2 (one per document)", n)
	}
}

func TestTraceFaultEvents(t *testing.T) {
	corp, _ := setup(t)
	tr := NewTrace(0)
	s := newSystem(t, Options{
		Trace:           tr,
		WatchdogTimeout: 50 * ht.Microsecond,
		Faults:          FaultConfig{StallEveryN: 2},
	})
	s.Program()
	if _, err := s.Stream(corp.TestDocuments("es")[:4], ModeAsync, false); err != nil {
		t.Fatal(err)
	}
	var watchdogs, retries int
	for _, e := range tr.Events() {
		switch e.Kind {
		case TraceWatchdog:
			watchdogs++
		case TraceRetry:
			retries++
		}
	}
	if watchdogs != 2 || retries != 2 {
		t.Errorf("watchdog/retry events = %d/%d, want 2/2", watchdogs, retries)
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace(2)
	tr.add(0, TracePIO, "one")
	tr.add(1, TracePIO, "two")
	tr.add(2, TracePIO, "three")
	if len(tr.Events()) != 2 {
		t.Errorf("retained %d events, want 2", len(tr.Events()))
	}
	if tr.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", tr.Dropped)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.add(0, TracePIO, "ignored")
	if tr.Events() != nil {
		t.Error("nil trace returned events")
	}
	if n, err := tr.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Error("nil trace wrote output")
	}
}

func TestTraceWriteTo(t *testing.T) {
	tr := NewTrace(1)
	tr.add(5*ht.Microsecond, TraceDMADown, "100 bytes")
	tr.add(6*ht.Microsecond, TracePIO, "dropped")
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "dma-down") || !strings.Contains(out, "100 bytes") {
		t.Errorf("timeline missing event: %q", out)
	}
	if !strings.Contains(out, "1 further events dropped") {
		t.Errorf("timeline missing drop count: %q", out)
	}
}

func TestTraceKindNames(t *testing.T) {
	names := map[TraceKind]string{
		TracePIO: "pio", TraceDMADown: "dma-down", TraceDMAUp: "dma-up",
		TraceCommand: "command", TraceDataDelivered: "data", TraceFold: "fold",
		TraceInterrupt: "interrupt", TraceWatchdog: "watchdog", TraceRetry: "retry",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(TraceKind(99).String(), "99") {
		t.Error("unknown kind not diagnostic")
	}
}
