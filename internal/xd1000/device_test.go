package xd1000

import (
	"strings"
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/ht"
)

// newTestDevice builds a device over a small two-language profile set
// programmed through the software path.
func newTestDevice(t *testing.T, watchdog ht.Time) *Device {
	t.Helper()
	ps, err := core.TrainFromTexts(core.Config{TopT: 500, Seed: 3}, map[string][][]byte{
		"en": {[]byte("the quick brown fox jumps over the lazy dog and then the fox rests")},
		"fi": {[]byte("nopea ruskea kettu hyppii laiskan koiran yli ja sitten kettu nukkuu")},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(ps, core.BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(c, 4, watchdog)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sendDoc walks a document through the protocol at the given times.
func sendDoc(d *Device, at ht.Time, doc []byte) {
	d.Command(at, ht.Command{Type: ht.CmdSize, Arg: uint64(ht.Words(int64(len(doc))))})
	d.DeliverData(at+ht.Microsecond, doc)
	d.Command(at+2*ht.Microsecond, ht.Command{Type: ht.CmdEndOfDocument})
	d.Command(at+3*ht.Microsecond, ht.Command{Type: ht.CmdQueryResult})
}

func TestNewDeviceValidation(t *testing.T) {
	ps, _ := core.TrainFromTexts(core.Config{TopT: 100, Seed: 1}, map[string][][]byte{
		"en": {[]byte("validation text that is long enough for n-grams")},
	})
	direct, _ := core.New(ps, core.BackendDirect)
	if _, err := NewDevice(direct, 4, ht.Millisecond); err == nil {
		t.Error("device accepted a non-bloom classifier")
	}
	bloom, _ := core.New(ps, core.BackendBloom)
	if _, err := NewDevice(bloom, 0, ht.Millisecond); err == nil {
		t.Error("device accepted zero copies")
	}
}

func TestDeviceBasicDocument(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte("the quick brown fox jumps over the lazy dog")
	sendDoc(d, 0, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Status != 0 {
		t.Errorf("status = %#x, want 0", qr.Status)
	}
	if qr.Checksum != ht.Checksum(doc) {
		t.Error("checksum mismatch on clean transfer")
	}
	if qr.NGrams != len(doc)-3 {
		t.Errorf("NGrams = %d, want %d", qr.NGrams, len(doc)-3)
	}
	if qr.Counts[0] <= qr.Counts[1] {
		t.Errorf("English doc counts = %v, want en > fi", qr.Counts)
	}
	if qr.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestDeviceCommandsQueueBehindData(t *testing.T) {
	// §4: commands arriving before the DMA words must wait.
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte("the quick brown fox jumps over the lazy dog")
	d.Command(0, ht.Command{Type: ht.CmdSize, Arg: uint64(ht.Words(int64(len(doc))))})
	// EOD arrives out of order, before any data.
	d.Command(ht.Microsecond, ht.Command{Type: ht.CmdEndOfDocument})
	if d.Errors != 0 {
		t.Fatal("early EOD executed instead of queueing")
	}
	// Data lands; the queued EOD should then fold the document.
	d.DeliverData(2*ht.Microsecond, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatalf("queued EOD did not execute: %v", err)
	}
	if qr.Status != 0 || qr.NGrams == 0 {
		t.Errorf("out-of-order run produced %+v", qr)
	}
}

func TestDeviceSplitDelivery(t *testing.T) {
	// DMA bursts may split a document arbitrarily.
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte("the quick brown fox jumps over the lazy dogs")
	d.Command(0, ht.Command{Type: ht.CmdSize, Arg: uint64(ht.Words(int64(len(doc))))})
	// Split on a word boundary (8 bytes), as the DMA engine does.
	d.DeliverData(ht.Microsecond, doc[:16])
	d.DeliverData(2*ht.Microsecond, doc[16:])
	d.Command(3*ht.Microsecond, ht.Command{Type: ht.CmdEndOfDocument})
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Checksum != ht.Checksum(doc) {
		t.Error("split delivery corrupted checksum")
	}
	if qr.NGrams != len(doc)-3 {
		t.Errorf("split delivery NGrams = %d, want %d", qr.NGrams, len(doc)-3)
	}
}

func TestDeviceWatchdogRecoversStalledTransfer(t *testing.T) {
	d := newTestDevice(t, 100*ht.Microsecond)
	// Announce a document but deliver only half the words.
	d.Command(0, ht.Command{Type: ht.CmdSize, Arg: 10})
	d.DeliverData(ht.Microsecond, make([]byte, 24)) // 3 of 10 words
	if !d.Watchdog().Armed() {
		t.Fatal("watchdog not armed during partial transfer")
	}
	// Far later, the host gives up and starts a fresh document; the
	// watchdog must have reset the state machine so this succeeds.
	doc := []byte("the quick brown fox jumps over the lazy dog")
	sendDoc(d, ht.Second, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatalf("device did not recover after stall: %v", err)
	}
	if d.Watchdog().Trips != 1 {
		t.Errorf("watchdog trips = %d, want 1", d.Watchdog().Trips)
	}
	if qr.Status&StatusWatchdog == 0 {
		t.Error("status does not report the watchdog trip")
	}
	if qr.Checksum != ht.Checksum(doc) {
		t.Error("post-recovery document corrupted")
	}
}

func TestDeviceChecksumDetectsCorruption(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte("the quick brown fox jumps over the lazy dog")
	corrupted := append([]byte(nil), doc...)
	corrupted[10] ^= 0xFF // a flipped byte in flight
	d.Command(0, ht.Command{Type: ht.CmdSize, Arg: uint64(ht.Words(int64(len(doc))))})
	d.DeliverData(ht.Microsecond, corrupted)
	d.Command(2*ht.Microsecond, ht.Command{Type: ht.CmdEndOfDocument})
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	// The host compares against the checksum of what it sent.
	if qr.Checksum == ht.Checksum(doc) {
		t.Error("corruption not detectable via checksum")
	}
}

func TestDeviceProtocolViolations(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	// Data without a Size command.
	d.DeliverData(0, []byte("orphan data"))
	if d.Errors == 0 {
		t.Error("orphan data not flagged")
	}
	// EOD in idle state.
	d.Command(ht.Microsecond, ht.Command{Type: ht.CmdEndOfDocument})
	if d.Errors < 2 {
		t.Error("idle EOD not flagged")
	}
	// QueryResult with nothing folded.
	d.Command(2*ht.Microsecond, ht.Command{Type: ht.CmdQueryResult})
	if d.Errors < 3 {
		t.Error("query with no result not flagged")
	}
	if _, err := d.Result(); err == nil {
		t.Error("Result succeeded with nothing folded")
	}
	// Unknown command.
	d.Command(3*ht.Microsecond, ht.Command{Type: ht.CommandType(200)})
	if d.Errors < 4 {
		t.Error("unknown command not flagged")
	}
	// A valid document must still report the protocol status bit.
	doc := []byte("the quick brown fox jumps over the lazy dog")
	sendDoc(d, ht.Millisecond, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Status&StatusProtocol == 0 {
		t.Error("protocol violations not visible in status")
	}
}

func TestDeviceDoubleSizeResets(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	d.Command(0, ht.Command{Type: ht.CmdSize, Arg: 100})
	// The host crashes and restarts the document with a new Size while
	// no data ever arrived: must be flagged but recovered.
	d.DeliverData(ht.Microsecond, make([]byte, 800))
	d.Command(2*ht.Microsecond, ht.Command{Type: ht.CmdSize, Arg: 6})
	doc := []byte("the quick brown fox jumps over the lazy dog")
	if d.Errors == 0 {
		t.Error("unexpected Size not flagged")
	}
	// Continue with a clean document.
	d.Command(ht.Millisecond, ht.Command{Type: ht.CmdReset})
	sendDoc(d, 2*ht.Millisecond, doc)
	if _, err := d.Result(); err != nil {
		t.Fatalf("device did not recover: %v", err)
	}
}

func TestDeviceResetClearsState(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte("the quick brown fox jumps over the lazy dog")
	sendDoc(d, 0, doc)
	d.Command(ht.Millisecond, ht.Command{Type: ht.CmdReset})
	if _, err := d.Result(); err == nil {
		t.Error("result survived reset")
	}
	// Filters survive reset (profiles are not reprogrammed per §4's
	// reset path), so a new document still classifies.
	sendDoc(d, 2*ht.Millisecond, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Counts[0] == 0 {
		t.Error("filters lost their profiles across reset")
	}
}

func TestDeviceSelectLanguageValidation(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	d.Command(0, ht.Command{Type: ht.CmdSelectLanguage, Arg: 99})
	if d.Errors == 0 {
		t.Error("out-of-range language select not flagged")
	}
}

func TestDevicePerCopyFoldEqualsTotal(t *testing.T) {
	// The adder tree must not lose counts: fold across copies equals a
	// single-classifier count.
	d := newTestDevice(t, ht.Millisecond)
	doc := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 10))
	sendDoc(d, 0, doc)
	qr, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := d.classifier.Classify(doc)
	for l := range want.Counts {
		if qr.Counts[l] != want.Counts[l] {
			t.Errorf("language %d: device %d != classifier %d", l, qr.Counts[l], want.Counts[l])
		}
	}
}

func TestCyclesForDoc(t *testing.T) {
	d := newTestDevice(t, ht.Millisecond)
	// 8 n-grams/clock: an 80-byte document takes 10 cycles + pipeline.
	if got := d.CyclesForDoc(80); got != 10+pipelineDepth {
		t.Errorf("CyclesForDoc(80) = %d, want %d", got, 10+pipelineDepth)
	}
	if got := d.CyclesForDoc(81); got != 11+pipelineDepth {
		t.Errorf("CyclesForDoc(81) = %d, want %d", got, 11+pipelineDepth)
	}
	if d.NGramsPerClock() != 8 {
		t.Errorf("NGramsPerClock = %d, want 8", d.NGramsPerClock())
	}
}

func TestQueryResultSize(t *testing.T) {
	qr := &QueryResult{}
	if qr.SizeBytes() != 144 {
		t.Errorf("result block = %d bytes, want 144", qr.SizeBytes())
	}
}

func TestDeviceErrorMessage(t *testing.T) {
	e := &DeviceError{Op: "query", Detail: "no document folded"}
	if !strings.Contains(e.Error(), "query") || !strings.Contains(e.Error(), "folded") {
		t.Errorf("unhelpful error: %q", e.Error())
	}
}
