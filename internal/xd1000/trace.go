package xd1000

import (
	"fmt"
	"io"

	"bloomlang/internal/ht"
)

// TraceKind labels a simulated event.
type TraceKind int

// Trace event kinds, covering the §4 protocol and §5.4 driver actions.
const (
	TracePIO TraceKind = iota
	TraceDMADown
	TraceDMAUp
	TraceCommand
	TraceDataDelivered
	TraceFold
	TraceInterrupt
	TraceWatchdog
	TraceRetry
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TracePIO:
		return "pio"
	case TraceDMADown:
		return "dma-down"
	case TraceDMAUp:
		return "dma-up"
	case TraceCommand:
		return "command"
	case TraceDataDelivered:
		return "data"
	case TraceFold:
		return "fold"
	case TraceInterrupt:
		return "interrupt"
	case TraceWatchdog:
		return "watchdog"
	case TraceRetry:
		return "retry"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TraceEvent is one timeline entry.
type TraceEvent struct {
	// At is the simulated completion time of the event.
	At ht.Time
	// Kind labels the event.
	Kind TraceKind
	// Detail is a short human-readable description.
	Detail string
}

// Trace collects a bounded timeline of simulated events. A nil *Trace
// is valid and records nothing, so tracing costs nothing when off.
type Trace struct {
	// Max bounds the number of retained events (0 = unbounded).
	Max    int
	events []TraceEvent
	// Dropped counts events discarded after Max was reached.
	Dropped int
}

// NewTrace returns a trace retaining at most max events.
func NewTrace(max int) *Trace { return &Trace{Max: max} }

// add records an event.
func (t *Trace) add(at ht.Time, kind TraceKind, format string, args ...any) {
	if t == nil {
		return
	}
	if t.Max > 0 && len(t.events) >= t.Max {
		t.Dropped++
		return
	}
	t.events = append(t.events, TraceEvent{At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the recorded timeline.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteTo renders the timeline, one event per line.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	var total int64
	for _, e := range t.events {
		n, err := fmt.Fprintf(w, "%12s  %-9s  %s\n", e.At, e.Kind, e.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if t.Dropped > 0 {
		n, err := fmt.Fprintf(w, "(%d further events dropped)\n", t.Dropped)
		total += int64(n)
		return total, err
	}
	return total, nil
}
