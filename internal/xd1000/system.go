package xd1000

import (
	"fmt"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/fpga"
	"bloomlang/internal/ht"
)

// Options configures a simulated XD1000 system.
type Options struct {
	// Copies is the classifier replication factor; 4 copies accept
	// 8 n-grams per clock (§3.3).
	Copies int
	// Link is the fabric model; zero value means the paper's measured
	// platform (ht.XD1000Config).
	Link ht.LinkConfig
	// WatchdogTimeout guards stalled transfers; zero means 1 ms.
	WatchdogTimeout ht.Time
	// FreqMHz overrides the modelled clock; zero uses the fpga package
	// estimate for the build.
	FreqMHz float64
	// Faults optionally injects transfer errors, exercising the §4
	// error-handling paths (XOR checksum, watchdog reset).
	Faults FaultConfig
	// Trace, when non-nil, records a timeline of simulated events
	// (PIO writes, DMA transfers, folds, interrupts, recoveries).
	Trace *Trace
}

// FaultConfig injects deterministic transfer faults.
type FaultConfig struct {
	// CorruptEveryN flips one byte of every Nth document while it
	// crosses the link (0 disables). The hardware classifies the
	// corrupted bytes; the host detects the damage by comparing the
	// returned XOR checksum (§4) against its own.
	CorruptEveryN int
	// StallEveryN delivers only half of every Nth document's words and
	// then goes silent (0 disables). The device's watchdog resets the
	// state machine; the host retries the document.
	StallEveryN int
}

func (o *Options) applyDefaults() {
	if o.Copies == 0 {
		o.Copies = 4
	}
	if o.Link.PeakBytesPerSec == 0 {
		o.Link = ht.XD1000Config()
	}
	if o.WatchdogTimeout == 0 {
		o.WatchdogTimeout = ht.Millisecond
	}
}

// System is the complete simulated machine: host driver, timed link and
// FPGA device.
type System struct {
	dev        *Device
	link       *ht.TimedLink
	opts       Options
	build      fpga.SystemReport
	profileSet *core.ProfileSet
	now        ht.Time
	// procFree is when the datapath finishes its current document.
	procFree ht.Time
	// programTime is the simulated cost of the preprocessing step.
	programTime ht.Time
	programmed  bool
}

// New builds a simulated system for a trained profile set. The Bloom
// filters start empty; call Program (or stream with programming
// included) before classifying.
func New(ps *core.ProfileSet, opts Options) (*System, error) {
	opts.applyDefaults()
	// The device classifier starts with empty filters: build it from an
	// empty-but-configured profile set, then Program() fills it through
	// the command interface exactly as the hardware is filled.
	c, err := core.New(ps, core.BackendBloom)
	if err != nil {
		return nil, err
	}
	// Clear the filters; Program re-fills them through CmdProgram.
	for i := range c.Languages() {
		c.Filter(i).Reset()
	}
	dev, err := NewDevice(c, opts.Copies, opts.WatchdogTimeout)
	if err != nil {
		return nil, err
	}
	link, err := ht.NewLink(opts.Link)
	if err != nil {
		return nil, err
	}
	build, err := Fits(c, opts.Copies)
	if err != nil {
		return nil, err
	}
	if opts.FreqMHz > 0 {
		build.FreqMHz = opts.FreqMHz
	}
	if !build.Fits {
		return nil, fmt.Errorf("xd1000: configuration does not fit the EP2S180 (%d languages, k=%d, m=%d bits: %d M4Ks)",
			len(c.Languages()), ps.Config.K, ps.Config.MBits, build.M4Ks)
	}
	return &System{dev: dev, link: link, opts: opts, build: build, profileSet: ps}, nil
}

// Device exposes the FPGA model (tests, examples).
func (s *System) Device() *Device { return s.dev }

// Build returns the modelled device build report.
func (s *System) Build() fpga.SystemReport { return s.build }

// Link exposes the timed link.
func (s *System) Link() *ht.TimedLink { return s.link }

// Now returns the current simulated time.
func (s *System) Now() ht.Time { return s.now }

// cycleTime returns one datapath clock period.
func (s *System) cycleTime() ht.Time {
	return ht.Time(float64(ht.Second) / (s.build.FreqMHz * 1e6))
}

// Program performs the preprocessing step (§4): clears the bit-vectors
// and programs every language profile through the command interface.
// Each n-gram costs a command/acknowledge handshake on the register
// path (calibrated so ten 5,000-n-gram profiles cost ≈0.25 s, the gap
// between the paper's 470 and 378 MB/s figures).
func (s *System) Program() ht.Time {
	start := s.now
	now := s.now
	now = s.link.PIOWrite(now)
	s.dev.Command(now, ht.Command{Type: ht.CmdReset})
	s.opts.Trace.add(now, TraceCommand, "reset, begin programming")
	for li, p := range s.profileSet.Profiles {
		now = s.link.PIOWrite(now)
		s.dev.Command(now, ht.Command{Type: ht.CmdSelectLanguage, Arg: uint64(li)})
		for _, g := range p.Grams {
			// Command word, data word, acknowledge poll: three register
			// operations per programmed n-gram.
			now = s.link.PIOWrite(now)
			now = s.link.PIOWrite(now)
			now = s.link.PIOWrite(now)
			s.dev.Command(now, ht.Command{Type: ht.CmdProgram, Arg: uint64(g)})
		}
		s.opts.Trace.add(now, TraceCommand, "programmed %q (%d n-grams)", p.Language, p.Size())
	}
	s.now = now
	s.programTime = now - start
	s.programmed = true
	return s.programTime
}

// Programmed reports whether Program has run.
func (s *System) Programmed() bool { return s.programmed }

// ProgramTime returns the simulated preprocessing cost.
func (s *System) ProgramTime() ht.Time { return s.programTime }

// DocResult pairs a document with its hardware classification.
type DocResult struct {
	Doc    corpus.Document
	Result QueryResult
	// ChecksumOK is the host-side verification of the XOR checksum.
	ChecksumOK bool
}

// RunReport summarizes a streaming run, in the units of Figure 4 and
// §5.4.
type RunReport struct {
	// Docs is the number of documents streamed.
	Docs int
	// Bytes is the total document volume.
	Bytes int64
	// SimTime is the simulated wall-clock for transfer + classification
	// (excluding programming, like the paper's headline numbers).
	SimTime ht.Time
	// ProgramTime is the separately-tracked preprocessing cost.
	ProgramTime ht.Time
	// Correct counts documents classified as their true language.
	Correct int
	// ChecksumFailures counts result blocks whose XOR checksum did not
	// match the host's copy.
	ChecksumFailures int
	// Retries counts documents re-sent after a stalled transfer.
	Retries int
	// WatchdogTrips counts device watchdog recoveries during the run.
	WatchdogTrips int
	// Results holds per-document outcomes (nil unless requested).
	Results []DocResult
}

// MBPerSec returns throughput in MB/sec (2^20), excluding programming.
func (r RunReport) MBPerSec() float64 {
	s := r.SimTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / s
}

// MBPerSecWithProgramming includes the preprocessing cost, the §5.4
// "drops to 378 MB/sec" accounting.
func (r RunReport) MBPerSecWithProgramming() float64 {
	s := (r.SimTime + r.ProgramTime).Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / s
}

// Accuracy returns the fraction of documents classified correctly.
func (r RunReport) Accuracy() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Docs)
}

// Mode selects the host driver of §5.4.
type Mode int

const (
	// ModeSync is the first software version: tight synchronization,
	// a hardware interrupt after every document before results are
	// read ("interrupt based synchronization produces detrimental
	// performance for a streaming architecture").
	ModeSync Mode = iota
	// ModeAsync is the second version: no interrupts; one thread
	// streams documents while another collects FPGA-initiated result
	// DMAs.
	ModeAsync
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSync {
		return "synchronous"
	}
	return "asynchronous"
}

// Stream pushes a labelled document set through the system in the given
// mode and returns the run report. keepResults retains per-document
// outcomes.
func (s *System) Stream(docs []corpus.Document, mode Mode, keepResults bool) (RunReport, error) {
	if !s.programmed {
		return RunReport{}, fmt.Errorf("xd1000: stream before Program")
	}
	rep := RunReport{Docs: len(docs), ProgramTime: s.programTime}
	start := s.now
	langs := s.dev.classifier.Languages()
	cycle := s.cycleTime()
	trips0 := s.dev.Watchdog().Trips
	for i, d := range docs {
		rep.Bytes += int64(len(d.Text))
		payload := d.Text
		faults := s.opts.Faults
		if faults.StallEveryN > 0 && (i+1)%faults.StallEveryN == 0 {
			s.stallAndRecover(payload)
			rep.Retries++
		}
		if faults.CorruptEveryN > 0 && (i+1)%faults.CorruptEveryN == 0 && len(payload) > 0 {
			corrupted := append([]byte(nil), payload...)
			corrupted[len(corrupted)/2] ^= 0xA5
			payload = corrupted
		}
		var qr QueryResult
		var err error
		switch mode {
		case ModeSync:
			qr, err = s.sendDocSync(payload, cycle)
		case ModeAsync:
			qr, err = s.sendDocAsync(payload, cycle)
		default:
			return rep, fmt.Errorf("xd1000: unknown mode %d", mode)
		}
		if err != nil {
			return rep, err
		}
		// The host verifies against the checksum of what it intended to
		// send; link corruption shows up as a mismatch.
		ok := qr.Checksum == ht.Checksum(d.Text)
		if !ok {
			rep.ChecksumFailures++
		}
		if best(qr.Counts) >= 0 && langs[best(qr.Counts)] == d.Language {
			rep.Correct++
		}
		if keepResults {
			rep.Results = append(rep.Results, DocResult{Doc: d, Result: qr, ChecksumOK: ok})
		}
	}
	rep.WatchdogTrips = s.dev.Watchdog().Trips - trips0
	// Drain: wait for the datapath to finish the final document.
	if s.procFree > s.now {
		s.now = s.procFree
	}
	rep.SimTime = s.now - start
	return rep, nil
}

// stallAndRecover models a stalled transfer: the host announces the
// document and delivers only half its words, then goes silent. The
// device watchdog expires, the state machine resets, and the host —
// noticing no result arrived — waits out its own timeout and retries
// (the retry itself is issued by the caller, which re-sends the
// document normally).
func (s *System) stallAndRecover(doc []byte) {
	words := ht.Words(int64(len(doc)))
	now := s.link.PIOWrite(s.now)
	s.dev.Command(now, ht.Command{Type: ht.CmdSize, Arg: uint64(words)})
	half := len(doc) / 2
	now = s.link.DMADown(now, int64(half))
	s.dev.DeliverData(now, doc[:half])
	// Host-side timeout: wait past the device watchdog, then issue a
	// Reset to be safe (the §4 recovery path) before retrying.
	now += s.opts.WatchdogTimeout + 10*ht.Microsecond
	s.opts.Trace.add(now, TraceWatchdog, "transfer stalled at %d/%d bytes", half, len(doc))
	now = s.link.PIOWrite(now)
	s.dev.Command(now, ht.Command{Type: ht.CmdReset})
	s.opts.Trace.add(now, TraceRetry, "host reset, retrying document")
	s.now = now
}

func best(counts []int) int {
	bi := -1
	for i, n := range counts {
		if bi == -1 || n > counts[bi] {
			bi = i
		}
	}
	return bi
}

// sendDocSync is the §5.4 first version: separate PIO commands around
// the DMA, a Query Result request, and a hardware interrupt as the
// synchronization point before the host reads the counters.
func (s *System) sendDocSync(doc []byte, cycle ht.Time) (QueryResult, error) {
	// Size command.
	now := s.link.PIOWrite(s.now)
	s.dev.Command(now, ht.Command{Type: ht.CmdSize, Arg: uint64(ht.Words(int64(len(doc))))})
	s.opts.Trace.add(now, TracePIO, "size=%d words", ht.Words(int64(len(doc))))
	// Document DMA.
	now = s.link.DMADown(now, int64(len(doc)))
	s.dev.DeliverData(now, doc)
	s.opts.Trace.add(now, TraceDMADown, "%d bytes", len(doc))
	// Processing overlaps the transfer; it finishes pipelineDepth-plus
	// cycles after the last word.
	procEnd := now + ht.Time(s.dev.CyclesForDoc(int64(len(doc))))*cycle
	if prev := s.procFree; prev > now {
		procEnd = prev + ht.Time(s.dev.CyclesForDoc(int64(len(doc))))*cycle
	}
	s.procFree = procEnd
	// End of document + query result commands.
	now = s.link.PIOWrite(now)
	s.dev.Command(now, ht.Command{Type: ht.CmdEndOfDocument})
	now = s.link.PIOWrite(now)
	s.dev.Command(now, ht.Command{Type: ht.CmdQueryResult})
	if procEnd > now {
		now = procEnd
	}
	qr, err := s.dev.Result()
	if err != nil {
		return qr, err
	}
	// Result DMA back to the host, then the interrupt round trip.
	now = s.link.DMAUp(now, qr.SizeBytes())
	s.opts.Trace.add(now, TraceDMAUp, "query result (%d bytes)", qr.SizeBytes())
	now = s.link.Interrupt(now)
	s.opts.Trace.add(now, TraceInterrupt, "host resumed")
	s.now = now
	return qr, nil
}

// sendDocAsync is the §5.4 second version: the size command, document
// words and end-of-document marker ride a single DMA descriptor; the
// hardware stops accepting commands until the document is fully read,
// so no synchronization is needed, and results return by FPGA-initiated
// DMA that overlaps the next document's transfer.
func (s *System) sendDocAsync(doc []byte, cycle ht.Time) (QueryResult, error) {
	words := ht.Words(int64(len(doc)))
	// One descriptor carries command word + document + EOD word.
	payload := (words + 2) * ht.WordBytes
	now := s.link.DMADown(s.now, payload)
	s.dev.Command(now, ht.Command{Type: ht.CmdSize, Arg: uint64(words)})
	s.dev.DeliverData(now, doc)
	s.dev.Command(now, ht.Command{Type: ht.CmdEndOfDocument})
	s.opts.Trace.add(now, TraceDMADown, "descriptor: size+%d bytes+eod", len(doc))

	procStart := now
	if s.procFree > procStart {
		procStart = s.procFree
	}
	procEnd := procStart + ht.Time(s.dev.CyclesForDoc(int64(len(doc))))*cycle
	s.procFree = procEnd

	qr, err := s.dev.Result()
	if err != nil {
		return qr, err
	}
	// FPGA-initiated result DMA rides the independent uplink; the
	// collector thread consumes it without stalling the sender. The
	// sender's clock only advances by the downlink time.
	upEnd := s.link.DMAUp(procEnd, qr.SizeBytes())
	s.opts.Trace.add(procEnd, TraceFold, "document folded (%d n-grams)", qr.NGrams)
	s.opts.Trace.add(upEnd, TraceDMAUp, "fpga-initiated result")
	s.now = now
	return qr, nil
}

// PeakMBPerSec returns the theoretical datapath rate (§5.4): clock ×
// n-grams/clock bytes.
func (s *System) PeakMBPerSec() float64 {
	return fpga.PeakThroughputMBps(s.build.FreqMHz, s.dev.NGramsPerClock())
}
