// Package xd1000 simulates the paper's complete hardware/software
// system: the parallel multi-language classifier on the Stratix II FPGA
// of the XtremeData XD1000, driven by an Opteron host over
// HyperTransport (§3.3, §4, Figure 2b).
//
// The simulation has two layers:
//
//   - a functional layer — the device classifies documents with the
//     same Parallel Bloom Filter code the software classifier uses, so
//     simulated hardware results and software results agree exactly;
//   - a timing layer — DMA transfers, PIO command writes, interrupts
//     and datapath cycles advance a deterministic simulated clock, from
//     which the throughput figures of Figure 4 and Table 4 are derived.
package xd1000

import (
	"fmt"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/core"
	"bloomlang/internal/fpga"
	"bloomlang/internal/ht"
	"bloomlang/internal/ngram"
)

// deviceState enumerates the protocol state machine of §4.
type deviceState int

const (
	// stateIdle: no document announced.
	stateIdle deviceState = iota
	// stateReceiving: a Size command set an expectation; data words are
	// still outstanding, and commands queue until they all arrive.
	stateReceiving
	// stateDocReady: all words arrived; EndOfDocument may be processed.
	stateDocReady
)

// DeviceError is a protocol error detected by the device model; the
// hardware equivalent raises a status bit read back with Query Result.
type DeviceError struct {
	Op     string
	Detail string
}

func (e *DeviceError) Error() string {
	return fmt.Sprintf("xd1000: %s: %s", e.Op, e.Detail)
}

// Device is the FPGA-side model: command decoding, DMA reassembly,
// per-copy match counters and the adder tree.
type Device struct {
	classifier *core.Classifier
	copies     int
	extractor  *ngram.Extractor
	watchdog   *ht.Watchdog

	state       deviceState
	expectWords int64
	gotWords    int64
	docBuf      []byte
	checksum    uint64
	pending     []pendingCommand

	// perCopy[c][l] is classifier copy c's match counter for language l
	// (§3.3: "An adder tree aggregates the match counts from the
	// individual classifier modules after the final n-gram in a
	// document is processed").
	perCopy [][]int

	selectedLang int

	// result of the last EndOfDocument fold, returned by Query Result.
	lastResult *QueryResult

	// Errors counts protocol violations (status bits in hardware).
	Errors int
}

type pendingCommand struct {
	cmd ht.Command
	at  ht.Time
}

// QueryResult is the block the hardware DMAs back to the host: match
// counters, the XOR data checksum and status bits (§4).
type QueryResult struct {
	// Counts are the folded per-language match counts.
	Counts []int
	// NGrams is the number of n-grams tested for the document.
	NGrams int
	// Checksum is the XOR of the received document words.
	Checksum uint64
	// Status is zero for a clean transfer; bits record watchdog trips
	// or protocol violations.
	Status uint32
	// Cycles is the datapath cycle count consumed by the document.
	Cycles int64
}

// Status bits.
const (
	StatusWatchdog uint32 = 1 << iota
	StatusProtocol
)

// SizeBytes is the result block's transfer size: 32 languages × 32-bit
// counters plus checksum, status and n-gram count words.
func (q *QueryResult) SizeBytes() int64 { return 32*4 + 8 + 4 + 4 }

// NewDevice builds the device model around a Bloom-backed classifier.
// The classifier's filters are shared, not copied: programming either
// side programs both, which is exactly the property the integration
// tests rely on.
func NewDevice(c *core.Classifier, copies int, watchdogTimeout ht.Time) (*Device, error) {
	if c.Backend() != core.BackendBloom {
		return nil, fmt.Errorf("xd1000: device requires the parallel-bloom backend, got %v", c.Backend())
	}
	if copies < 1 {
		return nil, fmt.Errorf("xd1000: copies=%d must be positive", copies)
	}
	e, err := ngram.NewExtractor(c.Config().N)
	if err != nil {
		return nil, err
	}
	if s := c.Config().Subsample; s > 1 {
		if err := e.SetSubsample(s); err != nil {
			return nil, err
		}
	}
	d := &Device{
		classifier: c,
		copies:     copies,
		extractor:  e,
		watchdog:   ht.NewWatchdog(watchdogTimeout),
	}
	d.resetCounters()
	return d, nil
}

func (d *Device) resetCounters() {
	d.perCopy = make([][]int, d.copies)
	for i := range d.perCopy {
		d.perCopy[i] = make([]int, len(d.classifier.Languages()))
	}
}

// NGramsPerClock returns the datapath input rate (two n-grams per copy,
// §3.2).
func (d *Device) NGramsPerClock() int { return 2 * d.copies }

// Watchdog exposes the watchdog for tests and drivers.
func (d *Device) Watchdog() *ht.Watchdog { return d.watchdog }

// Command delivers one control-register write at simulated time now.
// Commands other than Reset queue while document words are outstanding
// (§4: "Subsequent commands are only processed once all the words
// expected have been received via DMA").
func (d *Device) Command(now ht.Time, cmd ht.Command) {
	if d.watchdog.Check(now) {
		d.watchdogReset()
	}
	if cmd.Type == ht.CmdReset {
		d.reset()
		return
	}
	if d.state == stateReceiving && d.gotWords < d.expectWords {
		d.pending = append(d.pending, pendingCommand{cmd: cmd, at: now})
		return
	}
	d.execute(now, cmd)
}

// DeliverData delivers a DMA burst of document bytes that completed at
// simulated time now. Out-of-order arrival relative to commands is the
// caller's (driver's) responsibility to model; the device just counts
// words against the announced size.
func (d *Device) DeliverData(now ht.Time, data []byte) {
	if d.watchdog.Check(now) {
		d.watchdogReset()
	}
	if d.state != stateReceiving {
		// Data with no announced document: protocol violation.
		d.Errors++
		return
	}
	d.docBuf = append(d.docBuf, data...)
	d.gotWords += ht.Words(int64(len(data)))
	d.checksum ^= ht.Checksum(data)
	if d.gotWords >= d.expectWords {
		d.watchdog.Disarm()
		d.state = stateDocReady
		// Drain commands that queued behind the data.
		pending := d.pending
		d.pending = nil
		for _, p := range pending {
			t := p.at
			if now > t {
				t = now
			}
			d.execute(t, p.cmd)
		}
	} else {
		d.watchdog.Arm(now)
	}
}

// execute runs one command immediately.
func (d *Device) execute(now ht.Time, cmd ht.Command) {
	switch cmd.Type {
	case ht.CmdSize:
		if d.state != stateIdle {
			d.Errors++
			d.protocolReset()
		}
		d.expectWords = int64(cmd.Arg)
		d.gotWords = 0
		d.docBuf = d.docBuf[:0]
		d.checksum = 0
		d.state = stateReceiving
		d.watchdog.Arm(now)
	case ht.CmdEndOfDocument:
		if d.state != stateDocReady {
			d.Errors++
			d.protocolReset()
			return
		}
		d.fold()
		d.state = stateIdle
	case ht.CmdQueryResult:
		// Result latching is handled by fold(); nothing to do in the
		// model beyond validating state.
		if d.lastResult == nil {
			d.Errors++
		}
	case ht.CmdSelectLanguage:
		if int(cmd.Arg) >= len(d.classifier.Languages()) {
			d.Errors++
			return
		}
		d.selectedLang = int(cmd.Arg)
	case ht.CmdProgram:
		f := d.classifier.Filter(d.selectedLang)
		f.Program(uint32(cmd.Arg))
	default:
		d.Errors++
	}
}

// fold processes the buffered document through the datapath model:
// alphabet conversion, n-gram extraction, round-robin distribution over
// the classifier copies, per-copy Bloom tests, and the adder-tree fold.
func (d *Device) fold() {
	codes := alphabet.TranslateAll(d.docBuf)
	d.extractor.Reset()
	grams := d.extractor.Feed(nil, codes)

	for i := range d.perCopy {
		for j := range d.perCopy[i] {
			d.perCopy[i][j] = 0
		}
	}
	langs := d.classifier.Languages()
	// Each copy tests two consecutive n-grams per clock; the stream is
	// dealt to copies in blocks of two, matching the hardware's input
	// word fan-out.
	for i, g := range grams {
		copyIdx := (i / 2) % d.copies
		for l := range langs {
			if d.classifier.Filter(l).Test(g) {
				d.perCopy[copyIdx][l]++
			}
		}
	}
	// Adder tree: fold per-copy counters pairwise (log2(copies) levels
	// in hardware; associative sum here).
	counts := make([]int, len(langs))
	for _, copyCounts := range d.perCopy {
		for l, n := range copyCounts {
			counts[l] += n
		}
	}
	var status uint32
	if d.watchdog.Trips > 0 {
		status |= StatusWatchdog
	}
	if d.Errors > 0 {
		status |= StatusProtocol
	}
	d.lastResult = &QueryResult{
		Counts:   counts,
		NGrams:   len(grams),
		Checksum: d.checksum,
		Status:   status,
		Cycles:   d.CyclesForDoc(int64(len(d.docBuf))),
	}
}

// pipelineDepth is the datapath's fill/drain cost in cycles: alphabet
// conversion, n-gram assembly, hash, RAM read, AND-reduce, counter and
// adder-tree stages.
const pipelineDepth = 24

// CyclesForDoc returns the datapath cycles to classify a document of n
// bytes: the stream feeds NGramsPerClock characters per cycle, plus the
// pipeline fill/drain.
func (d *Device) CyclesForDoc(n int64) int64 {
	per := int64(d.NGramsPerClock())
	return (n+per-1)/per + pipelineDepth
}

// Result returns the last folded result, or an error status result if
// the protocol went wrong.
func (d *Device) Result() (QueryResult, error) {
	if d.lastResult == nil {
		return QueryResult{Status: StatusProtocol}, &DeviceError{Op: "query", Detail: "no document folded"}
	}
	return *d.lastResult, nil
}

// reset implements CmdReset and the watchdog reset: the full §4 "reset
// the state machine" path. Bloom filter contents are preserved (the
// hardware clears them only when reprogramming).
func (d *Device) reset() {
	d.state = stateIdle
	d.expectWords = 0
	d.gotWords = 0
	d.docBuf = d.docBuf[:0]
	d.checksum = 0
	d.pending = nil
	d.lastResult = nil
	d.watchdog.Disarm()
	d.resetCounters()
}

// watchdogReset is the recovery path when a transfer stalls.
func (d *Device) watchdogReset() {
	d.state = stateIdle
	d.expectWords = 0
	d.gotWords = 0
	d.docBuf = d.docBuf[:0]
	d.checksum = 0
	d.pending = nil
}

// protocolReset recovers from an out-of-order command.
func (d *Device) protocolReset() {
	d.state = stateIdle
	d.expectWords = 0
	d.gotWords = 0
	d.docBuf = d.docBuf[:0]
	d.checksum = 0
	d.pending = nil
}

// Fits verifies the classifier configuration fits the device and
// returns the modelled build report (§5.3).
func Fits(c *core.Classifier, copies int) (fpga.SystemReport, error) {
	cfg := c.Config()
	return fpga.EstimateSystem(fpga.ModuleConfig{
		K:         cfg.K,
		MBits:     cfg.MBits,
		Languages: len(c.Languages()),
		Copies:    copies,
	}, fpga.EP2S180())
}
