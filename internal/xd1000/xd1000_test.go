package xd1000

import (
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/ht"
)

// testCorpus generates a paper-shaped corpus (10 languages, 1300-word
// documents ≈ 10 KB files) once per test binary; several tests share it.
var (
	sharedCorpus *corpus.Corpus
	sharedSet    *core.ProfileSet
)

func setup(t testing.TB) (*corpus.Corpus, *core.ProfileSet) {
	t.Helper()
	if sharedCorpus == nil {
		cfg := corpus.Config{
			DocsPerLanguage: 12,
			WordsPerDoc:     1300,
			TrainFraction:   0.25,
			Seed:            11,
		}
		c, err := corpus.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := core.Train(core.DefaultConfig(), c)
		if err != nil {
			t.Fatal(err)
		}
		sharedCorpus, sharedSet = c, ps
	}
	return sharedCorpus, sharedSet
}

func newSystem(t testing.TB, opts Options) *System {
	t.Helper()
	_, ps := setup(t)
	s, err := New(ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesFit(t *testing.T) {
	_, ps := setup(t)
	// 10 languages at k=4/m=16Kbit fits (Table 3 row 1)...
	if _, err := New(ps, Options{}); err != nil {
		t.Fatalf("paper configuration rejected: %v", err)
	}
	// ...but 10 languages at k=8/m=64Kbit needs 5120 M4Ks and must not.
	big := *ps
	big.Config.K = 8
	big.Config.MBits = 64 * 1024
	bigPS, err := core.TrainFromTexts(big.Config, map[string][][]byte{
		"aa": {[]byte("some training text for a fake language")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-train is cheap for one language but the language count matters:
	// use the paper corpus languages instead by reusing profiles.
	bigPS.Profiles = ps.Profiles
	bigPS.Config.K = 8
	bigPS.Config.MBits = 64 * 1024
	if _, err := New(bigPS, Options{}); err == nil {
		t.Error("oversized configuration accepted")
	}
}

func TestStreamRequiresProgramming(t *testing.T) {
	corp, _ := setup(t)
	s := newSystem(t, Options{})
	if _, err := s.Stream(corp.TestDocuments("en"), ModeAsync, false); err == nil {
		t.Error("Stream before Program succeeded")
	}
}

func TestProgramTime(t *testing.T) {
	corp, ps := setup(t)
	_ = corp
	s := newSystem(t, Options{})
	pt := s.Program()
	if !s.Programmed() {
		t.Fatal("Programmed() false after Program")
	}
	// Each programmed n-gram costs three PIO writes (command, data,
	// acknowledge); check the simulated time matches that model within
	// 10%, and that the full-scale arithmetic (10 × 5,000 n-grams)
	// reproduces the §5.4 programming amortization of about 0.25 s.
	total := 0
	for _, p := range ps.Profiles {
		total += p.Size()
	}
	pio := s.Link().Config().PIOWriteLatency
	want := ht.Time(total) * 3 * pio
	if pt < want || pt > want+want/10+ht.Millisecond {
		t.Errorf("programming time %v, want about %v for %d n-grams", pt, want, total)
	}
	fullScale := (ht.Time(10*5000) * 3 * pio).Seconds()
	if fullScale < 0.2 || fullScale > 0.3 {
		t.Errorf("full-scale programming model = %.3fs, want about 0.25", fullScale)
	}
}

// The headline Figure 4 shape: the asynchronous driver reaches ≈470
// MB/s (decimal, as the paper counts) and the synchronous driver about
// half that.
func TestFigure4ThroughputShape(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("")

	async := newSystem(t, Options{})
	async.Program()
	aRep, err := async.Stream(docs, ModeAsync, false)
	if err != nil {
		t.Fatal(err)
	}
	aDec := float64(aRep.Bytes) / aRep.SimTime.Seconds() / 1e6

	sync := newSystem(t, Options{})
	sync.Program()
	sRep, err := sync.Stream(docs, ModeSync, false)
	if err != nil {
		t.Fatal(err)
	}
	sDec := float64(sRep.Bytes) / sRep.SimTime.Seconds() / 1e6

	t.Logf("async %.1f MB/s, sync %.1f MB/s (decimal); paper: 470 / 228", aDec, sDec)
	if aDec < 440 || aDec > 500 {
		t.Errorf("async throughput %.1f MB/s outside [440,500] (paper: 470)", aDec)
	}
	if sDec < 200 || sDec > 260 {
		t.Errorf("sync throughput %.1f MB/s outside [200,260] (paper: 228)", sDec)
	}
	ratio := aDec / sDec
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("async/sync ratio %.2f, paper shows about 2x", ratio)
	}
	// Programming amortization: including it must land near 378 MB/s
	// when the streamed volume matches the paper's scale; at our test
	// scale it simply must reduce throughput.
	if aRep.MBPerSecWithProgramming() >= aRep.MBPerSec() {
		t.Error("programming time did not reduce effective throughput")
	}
}

func TestAccuracyThroughHardwarePath(t *testing.T) {
	corp, _ := setup(t)
	s := newSystem(t, Options{})
	s.Program()
	rep, err := s.Stream(corp.TestDocuments(""), ModeAsync, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy() < 0.9 {
		t.Errorf("hardware-path accuracy %.3f below 0.9", rep.Accuracy())
	}
	if rep.ChecksumFailures != 0 {
		t.Errorf("%d checksum failures on clean link", rep.ChecksumFailures)
	}
}

// The integration guarantee: the simulated hardware datapath and the
// pure-software classifier produce identical match counts, because they
// share the same Bloom filter state.
func TestHardwareMatchesSoftwareExactly(t *testing.T) {
	corp, ps := setup(t)
	s := newSystem(t, Options{})
	s.Program()

	sw, err := core.New(ps, core.BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	docs := corp.TestDocuments("")[:12]
	rep, err := s.Stream(docs, ModeAsync, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, dr := range rep.Results {
		want := sw.Classify(docs[i].Text)
		got := dr.Result
		if got.NGrams != want.NGrams {
			t.Fatalf("doc %d: hardware tested %d n-grams, software %d", i, got.NGrams, want.NGrams)
		}
		for l := range want.Counts {
			if got.Counts[l] != want.Counts[l] {
				t.Fatalf("doc %d language %d: hardware count %d != software %d",
					i, l, got.Counts[l], want.Counts[l])
			}
		}
	}
}

func TestSyncAndAsyncAgreeFunctionally(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("fi")[:4]

	a := newSystem(t, Options{})
	a.Program()
	ra, err := a.Stream(docs, ModeAsync, true)
	if err != nil {
		t.Fatal(err)
	}
	b := newSystem(t, Options{})
	b.Program()
	rb, err := b.Stream(docs, ModeSync, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Results {
		ca, cb := ra.Results[i].Result.Counts, rb.Results[i].Result.Counts
		for l := range ca {
			if ca[l] != cb[l] {
				t.Fatalf("doc %d: sync/async counts differ at language %d", i, l)
			}
		}
	}
}

func TestImprovedLinkApproachesPeak(t *testing.T) {
	corp, _ := setup(t)
	docs := corp.TestDocuments("")
	s := newSystem(t, Options{Link: ht.ImprovedConfig()})
	s.Program()
	rep, err := s.Stream(docs, ModeAsync, false)
	if err != nil {
		t.Fatal(err)
	}
	mbps := rep.MBPerSec()
	peak := s.PeakMBPerSec()
	t.Logf("improved-link throughput %.0f MB/s, datapath peak %.0f MB/s", mbps, peak)
	// §5.5: with the cap removed the system should run at GB/s scale,
	// several times the capped 470 and within reach of the peak.
	if mbps < 1000 {
		t.Errorf("improved-link throughput %.0f MB/s below 1000", mbps)
	}
	if mbps > peak {
		t.Errorf("throughput %.0f exceeds datapath peak %.0f", mbps, peak)
	}
	if peak < 1400 || peak > 1500 {
		t.Errorf("peak %.0f MB/s, want about 1480 (194 MHz × 8)", peak)
	}
}

func TestPeakMatchesPaperArithmetic(t *testing.T) {
	s := newSystem(t, Options{})
	// 194 MHz × 8 n-grams/clock = 1,552 million n-grams/sec.
	perSec := s.Build().FreqMHz * 1e6 * float64(s.Device().NGramsPerClock())
	if perSec != 1552e6 {
		t.Errorf("n-grams/sec = %g, want 1.552e9", perSec)
	}
}

func TestBuildReport(t *testing.T) {
	s := newSystem(t, Options{})
	b := s.Build()
	if !b.Calibrated {
		t.Error("10-language paper build not served from Table 3 calibration")
	}
	if b.M4Ks != 680 || b.FreqMHz != 194 {
		t.Errorf("build = %d M4Ks at %.0f MHz, want 680 at 194", b.M4Ks, b.FreqMHz)
	}
}

func TestFreqOverride(t *testing.T) {
	s := newSystem(t, Options{FreqMHz: 100})
	if s.Build().FreqMHz != 100 {
		t.Errorf("override ignored: %v", s.Build().FreqMHz)
	}
}
