package serve_test

// Admin-plane tests: the registry-backed profile lifecycle exposed
// over HTTP — /admin/profiles, /admin/reload, the /statsz
// profile_version — and the zero-downtime guarantee under concurrent
// traffic while versions activate and roll back (run with -race).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bloomlang/internal/core"
	"bloomlang/internal/registry"
	"bloomlang/internal/serve"
	"bloomlang/internal/train"
)

// newTestRegistry builds a registry holding two versions of the
// fixture profiles (different TopT so the detectors are
// distinguishable), with v000001 active.
func newTestRegistry(t testing.TB) (*registry.Registry, []string) {
	t.Helper()
	corp, _ := fixtures(t)
	reg, err := registry.Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	var versions []string
	for _, topT := range []int{1500, 700} {
		tr, err := train.New(core.Config{TopT: topT}, train.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, lang := range testLangs {
			for _, doc := range corp.Train[lang] {
				if err := tr.Add(lang, doc.Text); err != nil {
					t.Fatal(err)
				}
			}
		}
		ps, stats, err := tr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		m, err := reg.Create(ps, stats)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, m.Version)
	}
	if err := reg.Activate(versions[0]); err != nil {
		t.Fatal(err)
	}
	return reg, versions
}

func newRegistryServer(t testing.TB, cfg serve.Config) (*httptest.Server, *serve.Server, *registry.Registry, []string) {
	t.Helper()
	reg, versions := newTestRegistry(t)
	srv, err := serve.NewFromRegistry(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, reg, versions
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postReload(t testing.TB, ts *httptest.Server) serve.ReloadStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/admin/reload: %d %s", resp.StatusCode, body)
	}
	var status serve.ReloadStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

// TestAdminAbsentWithoutRegistry: servers built straight from profiles
// have no admin plane at all.
func TestAdminAbsentWithoutRegistry(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	for _, path := range []string{"/admin/profiles", "/admin/reload"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on registry-less server: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestAdminLifecycleOverHTTP walks the whole lifecycle through the
// admin plane: serve v1, activate v2 in the registry, observe
// serving/active divergence on /admin/profiles, reload, observe the
// swap on /statsz, and confirm a second reload is a no-op.
func TestAdminLifecycleOverHTTP(t *testing.T) {
	ts, _, reg, versions := newRegistryServer(t, serve.Config{})

	var snap serve.Snapshot
	getJSON(t, ts.URL+"/statsz", &snap)
	if snap.ProfileVersion != versions[0] {
		t.Fatalf("serving %q at startup, want %q", snap.ProfileVersion, versions[0])
	}

	// The registry moves ahead of the server until a reload.
	if err := reg.Activate(versions[1]); err != nil {
		t.Fatal(err)
	}
	var ps serve.ProfilesStatus
	getJSON(t, ts.URL+"/admin/profiles", &ps)
	if ps.Serving != versions[0] || ps.Active != versions[1] {
		t.Fatalf("profiles status serving=%q active=%q, want %q/%q", ps.Serving, ps.Active, versions[0], versions[1])
	}
	if len(ps.Versions) != 2 || ps.Versions[0].Version != versions[0] || ps.Versions[0].Checksum == "" {
		t.Fatalf("profiles status versions = %+v", ps.Versions)
	}

	status := postReload(t, ts)
	if !status.Changed || status.Previous != versions[0] || status.Active != versions[1] {
		t.Fatalf("reload status = %+v", status)
	}
	if len(status.Languages) != len(testLangs) {
		t.Fatalf("reload languages = %v", status.Languages)
	}
	getJSON(t, ts.URL+"/statsz", &snap)
	if snap.ProfileVersion != versions[1] {
		t.Fatalf("serving %q after reload, want %q", snap.ProfileVersion, versions[1])
	}
	if _, ok := snap.Endpoints["/admin/reload"]; !ok {
		t.Fatal("statsz has no /admin/reload counters")
	}

	// Reloading the already-active version changes nothing.
	status = postReload(t, ts)
	if status.Changed || status.Active != versions[1] {
		t.Fatalf("no-op reload status = %+v", status)
	}

	// Detection still works after the swap.
	corp, _ := fixtures(t)
	d := postDetect(t, ts, corp.Test["es"][0].Text)
	if d.Language != "es" {
		t.Fatalf("post-swap detection = %+v", d)
	}
}

// TestConcurrentHotSwapOverHTTP is the zero-downtime satellite: many
// clients hammer /detect, /batch and /stream while the lifecycle loop
// activates and rolls back versions and reloads the server. Every
// request must succeed with the right language, and every observed
// profile_version must be a known version — no request may see a torn
// or nil detector.
func TestConcurrentHotSwapOverHTTP(t *testing.T) {
	ts, _, reg, versions := newRegistryServer(t, serve.Config{Workers: 2})
	corp, _ := fixtures(t)
	known := map[string]bool{versions[0]: true, versions[1]: true}

	var stop atomic.Bool
	var requests atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lang := testLangs[c%len(testLangs)]
			doc := corp.Test[lang][c%len(corp.Test[lang])].Text
			for !stop.Load() {
				// /detect
				d := struct{ Language string }{}
				resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(doc))
				if err != nil {
					report(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					report(fmt.Errorf("/detect during swap: %d %s", resp.StatusCode, body))
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
					resp.Body.Close()
					report(err)
					return
				}
				resp.Body.Close()
				if d.Language != lang {
					report(fmt.Errorf("/detect got %q for a %q document", d.Language, lang))
					return
				}
				// /batch of 2
				body, _ := json.Marshal([]string{string(doc), string(doc)})
				resp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					report(err)
					return
				}
				var dets []serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&dets)
				resp.Body.Close()
				if err != nil || len(dets) != 2 || dets[0].Language != lang {
					report(fmt.Errorf("/batch during swap: %v %+v", err, dets))
					return
				}
				// /stream of 1
				line, _ := json.Marshal(map[string]string{"text": string(doc)})
				resp, err = http.Post(ts.URL+"/stream", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
				if err != nil {
					report(err)
					return
				}
				var sd serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&sd)
				resp.Body.Close()
				if err != nil || sd.Language != lang {
					report(fmt.Errorf("/stream during swap: %v %+v", err, sd))
					return
				}
				// /statsz version sanity
				var snap serve.Snapshot
				resp, err = http.Get(ts.URL + "/statsz")
				if err != nil {
					report(err)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil {
					report(err)
					return
				}
				if !known[snap.ProfileVersion] {
					report(fmt.Errorf("observed unknown profile version %q", snap.ProfileVersion))
					return
				}
				requests.Add(3)
			}
		}(c)
	}

	// Lifecycle loop: flip between the two versions via activate and
	// rollback, reloading the server each time.
	for i := 0; i < 25; i++ {
		if i%2 == 0 {
			if err := reg.Activate(versions[1]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := reg.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
		status := postReload(t, ts)
		if !status.Changed {
			t.Fatalf("swap %d did not change the detector: %+v", i, status)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if requests.Load() == 0 {
		t.Fatal("no client requests completed during the swap storm")
	}
}

// TestErrorsAreJSON checks every failure path answers with the JSON
// error envelope carrying the matching status.
func TestErrorsAreJSON(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{MaxBodyBytes: 512, MaxBatchDocs: 2})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"wrong method", func() (*http.Response, error) {
			return http.Get(ts.URL + "/detect")
		}, http.StatusMethodNotAllowed},
		{"oversized body", func() (*http.Response, error) {
			return http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(bytes.Repeat([]byte("x"), 4096)))
		}, http.StatusRequestEntityTooLarge},
		{"empty document", func() (*http.Response, error) {
			return http.Post(ts.URL+"/detect", "text/plain", strings.NewReader(""))
		}, http.StatusUnprocessableEntity},
		{"malformed batch", func() (*http.Response, error) {
			return http.Post(ts.URL+"/batch", "application/json", strings.NewReader("{nope"))
		}, http.StatusBadRequest},
		{"over-limit batch", func() (*http.Response, error) {
			body, _ := json.Marshal([]string{"a", "b", "c"})
			return http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
		}, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", c.name, ct)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: error body %q is not JSON: %v", c.name, body, err)
			continue
		}
		if e.Status != c.status || e.Error == "" {
			t.Errorf("%s: error envelope %+v, want status %d", c.name, e, c.status)
		}
	}
}

// TestReadTimeoutAnswers408 runs the hardened HTTPServer with a short
// read timeout and stalls mid-body; the server must answer with the
// 408 JSON error rather than silently dropping the connection.
func TestReadTimeoutAnswers408(t *testing.T) {
	_, ps := fixtures(t)
	srv, err := serve.New(ps, serve.Config{ReadTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := srv.HTTPServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", httpSrv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	t.Cleanup(func() { httpSrv.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise 1000 body bytes, send 4, then stall past the deadline.
	fmt.Fprintf(conn, "POST /detect HTTP/1.1\r\nHost: test\r\nContent-Length: 1000\r\nContent-Type: text/plain\r\n\r\nabcd")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no response after read timeout: %v", err)
	}
	head := string(buf[:n])
	if !strings.Contains(head, "408") {
		t.Fatalf("stalled body response = %q, want 408", head)
	}
	if !strings.Contains(head, `"error"`) {
		t.Fatalf("408 response carries no JSON error body: %q", head)
	}
}
