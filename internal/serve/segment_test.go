package serve_test

// Integration tests for the /segment endpoint and the /stream spans
// mode: mixed-language documents over real HTTP, concurrent clients
// across profile hot swaps (run with -race), the JSON error envelope
// on oversized input, and the /statsz segment counters.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/serve"
)

func postSegment(t testing.TB, ts *httptest.Server, doc []byte) serve.Segmentation {
	t.Helper()
	resp, err := http.Post(ts.URL+"/segment", "text/plain", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/segment status %d", resp.StatusCode)
	}
	var seg serve.Segmentation
	if err := json.NewDecoder(resp.Body).Decode(&seg); err != nil {
		t.Fatal(err)
	}
	return seg
}

// checkSpansTile asserts the wire-level structural guarantee clients
// rely on: spans tile [0, bytes) in order.
func checkSpansTile(t testing.TB, spans []serve.SpanDetection, docLen int) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatalf("no spans for %d bytes", docLen)
	}
	if spans[0].Start != 0 || spans[len(spans)-1].End != docLen {
		t.Fatalf("spans do not cover [0,%d): %+v", docLen, spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("span %d leaves a gap or overlap: %+v", i, spans)
		}
	}
}

// TestSegmentEndpoint is the acceptance path: a two-language
// concatenation posted to /segment comes back as spans in reading
// order, labelled with both languages, tiling the document.
func TestSegmentEndpoint(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	a, b := corp.Test["en"][0].Text, corp.Test["fi"][0].Text
	doc := append(append([]byte{}, a...), b...)
	seg := postSegment(t, ts, doc)
	if seg.Bytes != len(doc) {
		t.Fatalf("segmentation bytes = %d, want %d", seg.Bytes, len(doc))
	}
	if seg.Window <= 0 || seg.Stride <= 0 {
		t.Fatalf("segmentation geometry missing: %+v", seg)
	}
	checkSpansTile(t, seg.Spans, len(doc))
	langs := map[string]bool{}
	for _, sp := range seg.Spans {
		langs[sp.Language] = true
	}
	if !langs["en"] || !langs["fi"] {
		t.Errorf("segmentation found languages %v, want en and fi: %+v", langs, seg.Spans)
	}
	if first := seg.Spans[0]; first.Language != "en" || first.Name != "English" {
		t.Errorf("first span = %+v, want English", first)
	}
}

// TestSegmentSingleLanguage: plain single-language traffic comes back
// as one whole-document span. The languages exercised are en and fi —
// the fixture also trains the es↔pt sibling pair, whose "pure"
// synthetic documents genuinely borrow each other's words and may
// legitimately segment.
func TestSegmentSingleLanguage(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	for _, lang := range []string{"en", "fi"} {
		doc := corp.Test[lang][0].Text
		seg := postSegment(t, ts, doc)
		checkSpansTile(t, seg.Spans, len(doc))
		if len(seg.Spans) != 1 || seg.Spans[0].Language != lang {
			t.Errorf("single-language segmentation = %+v, want one %s span", seg.Spans, lang)
		}
	}
}

// TestSegmentConfiguredGeometry: a custom window/stride flows from the
// server config to the response echo.
func TestSegmentConfiguredGeometry(t *testing.T) {
	_, ps := fixtures(t)
	srv, err := serve.New(ps, serve.Config{Segment: core.SegmentConfig{Window: 128, Stride: 32}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	corp, _ := fixtures(t)
	seg := postSegment(t, ts, corp.Test["en"][0].Text)
	if seg.Window != 128 || seg.Stride != 32 {
		t.Errorf("geometry echo = %d/%d, want 128/32", seg.Window, seg.Stride)
	}
	// Invalid geometry fails server construction, not request time.
	if _, err := serve.New(ps, serve.Config{Segment: core.SegmentConfig{Window: 64, Stride: 24}}); err == nil {
		t.Error("server accepted a stride that does not divide the window")
	}
}

// TestSegmentErrorEnvelope: oversized, empty, and wrong-method
// requests answer with the JSON error envelope and the right status.
func TestSegmentErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{MaxBodyBytes: 512})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"oversized body", func() (*http.Response, error) {
			return http.Post(ts.URL+"/segment", "text/plain", bytes.NewReader(bytes.Repeat([]byte("x"), 4096)))
		}, http.StatusRequestEntityTooLarge},
		{"empty document", func() (*http.Response, error) {
			return http.Post(ts.URL+"/segment", "text/plain", strings.NewReader(""))
		}, http.StatusUnprocessableEntity},
		{"wrong method", func() (*http.Response, error) {
			return http.Get(ts.URL + "/segment")
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		if decodeErr != nil || e.Status != c.status || e.Error == "" {
			t.Errorf("%s: error envelope %+v (%v)", c.name, e, decodeErr)
		}
	}
}

// TestStreamSpansMode: /stream?spans=1 attaches each document's span
// tiling to its NDJSON result line; without the flag no spans appear.
// Lengths are asserted self-consistently rather than against the
// original bytes: NDJSON transport re-encodes non-UTF-8 ISO-8859-1
// bytes, so the server legitimately sees a longer document.
func TestStreamSpansMode(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	mixed := string(corp.Test["en"][0].Text) + string(corp.Test["fi"][0].Text)
	var in bytes.Buffer
	for _, doc := range []string{string(corp.Test["en"][1].Text), mixed} {
		line, _ := json.Marshal(map[string]string{"text": doc})
		in.Write(line)
		in.WriteByte('\n')
	}
	body := in.Bytes()

	resp, err := http.Post(ts.URL+"/stream?spans=1", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []serve.Detection
	for sc.Scan() {
		var d serve.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		got = append(got, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d lines, want 2", len(got))
	}
	if len(got[0].Spans) != 1 || got[0].Spans[0].Language != "en" {
		t.Errorf("single-language line spans = %+v", got[0].Spans)
	}
	spans := got[1].Spans
	if len(spans) < 2 {
		t.Errorf("mixed line spans = %+v, want at least 2", spans)
	}
	checkSpansTile(t, spans, spans[len(spans)-1].End)
	if spans[0].Language != "en" || spans[len(spans)-1].Language != "fi" {
		t.Errorf("mixed line languages %q..%q, want en..fi", spans[0].Language, spans[len(spans)-1].Language)
	}

	// Without the flag, result lines carry no spans.
	resp, err = http.Post(ts.URL+"/stream", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d serve.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		if d.Spans != nil {
			t.Errorf("spans present without ?spans=1: %+v", d.Spans)
		}
	}
}

// TestStatszSegmentCounters: /segment traffic ticks its own endpoint
// counters, spans included.
func TestStatszSegmentCounters(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	doc := append(append([]byte{}, corp.Test["en"][0].Text...), corp.Test["fi"][0].Text...)
	seg1 := postSegment(t, ts, doc)
	seg2 := postSegment(t, ts, corp.Test["en"][1].Text)
	resp, err := http.Post(ts.URL+"/segment", "text/plain", strings.NewReader("")) // 422
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var snap serve.Snapshot
	getJSON(t, ts.URL+"/statsz", &snap)
	st, ok := snap.Endpoints["/segment"]
	if !ok {
		t.Fatal("statsz has no /segment counters")
	}
	if st.Requests != 3 || st.Docs != 2 || st.Errors != 1 {
		t.Errorf("segment counters = %+v, want 3 requests, 2 docs, 1 error", st)
	}
	if wantSpans := int64(len(seg1.Spans) + len(seg2.Spans)); st.Spans != wantSpans {
		t.Errorf("segment spans counter = %d, want %d", st.Spans, wantSpans)
	}
	if st.Bytes == 0 {
		t.Error("segment bytes counter did not move")
	}
}

// TestSegmentConcurrentAcrossHotSwap is the race satellite: clients
// hammer /segment (and /stream?spans=1) while the registry activates
// and rolls back versions and the server reloads. Every response must
// be a well-formed tiling with the right languages; no request may
// observe a torn detector.
func TestSegmentConcurrentAcrossHotSwap(t *testing.T) {
	ts, _, reg, versions := newRegistryServer(t, serve.Config{Workers: 2})
	corp, _ := fixtures(t)
	mixedDoc := append(append([]byte{}, corp.Test["en"][0].Text...), corp.Test["fi"][0].Text...)

	var stop atomic.Bool
	var requests atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Pure-traffic single-span assertions use en and fi only: the
			// fixture trains the es↔pt sibling pair, whose documents may
			// legitimately segment.
			lang := []string{"en", "fi"}[c%2]
			pure := corp.Test[lang][c%len(corp.Test[lang])].Text
			for !stop.Load() {
				// /segment on single-language traffic.
				resp, err := http.Post(ts.URL+"/segment", "text/plain", bytes.NewReader(pure))
				if err != nil {
					report(err)
					return
				}
				var seg serve.Segmentation
				err = json.NewDecoder(resp.Body).Decode(&seg)
				resp.Body.Close()
				if err != nil {
					report(err)
					return
				}
				if len(seg.Spans) != 1 || seg.Spans[0].Language != lang {
					report(fmt.Errorf("client %d: segment during swap = %+v, want one %s span", c, seg.Spans, lang))
					return
				}
				// /segment on mixed traffic: structural checks only (the
				// exact boundary may shift between profile versions).
				resp, err = http.Post(ts.URL+"/segment", "text/plain", bytes.NewReader(mixedDoc))
				if err != nil {
					report(err)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&seg)
				resp.Body.Close()
				if err != nil {
					report(err)
					return
				}
				if seg.Bytes != len(mixedDoc) || len(seg.Spans) == 0 ||
					seg.Spans[0].Start != 0 || seg.Spans[len(seg.Spans)-1].End != len(mixedDoc) {
					report(fmt.Errorf("client %d: mixed segmentation does not tile: %+v", c, seg))
					return
				}
				// /stream?spans=1 of one document.
				line, _ := json.Marshal(map[string]string{"text": string(pure)})
				resp, err = http.Post(ts.URL+"/stream?spans=1", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
				if err != nil {
					report(err)
					return
				}
				var d serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&d)
				resp.Body.Close()
				if err != nil || d.Language != lang || len(d.Spans) == 0 {
					report(fmt.Errorf("client %d: stream spans during swap: %v %+v", c, err, d))
					return
				}
				requests.Add(3)
			}
		}(c)
	}

	for i := 0; i < 25; i++ {
		if i%2 == 0 {
			if err := reg.Activate(versions[1]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := reg.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
		status := postReload(t, ts)
		if !status.Changed {
			t.Fatalf("swap %d did not change the detector: %+v", i, status)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if requests.Load() == 0 {
		t.Fatal("no client requests completed during the swap storm")
	}
}
