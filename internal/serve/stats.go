package serve

import "sync/atomic"

// endpointStats holds one endpoint's counters. All fields are atomics:
// handlers on every connection update them concurrently and /statsz
// reads them without locks, mirroring how the classifier itself shares
// nothing mutable on the hot path.
type endpointStats struct {
	requests  atomic.Int64
	docs      atomic.Int64
	bytes     atomic.Int64
	errors    atomic.Int64
	unknown   atomic.Int64
	spans     atomic.Int64
	latencyNS atomic.Int64
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests: e.requests.Load(),
		Docs:     e.docs.Load(),
		Bytes:    e.bytes.Load(),
		Errors:   e.errors.Load(),
		Unknown:  e.unknown.Load(),
		Spans:    e.spans.Load(),
	}
	if s.Requests > 0 {
		s.AvgLatencyMicros = float64(e.latencyNS.Load()) / float64(s.Requests) / 1e3
	}
	return s
}

// EndpointSnapshot is one endpoint's counters at a point in time.
type EndpointSnapshot struct {
	// Requests is the number of requests handled, including failed ones.
	Requests int64 `json:"requests"`
	// Docs is the number of documents classified.
	Docs int64 `json:"docs"`
	// Bytes is the total document payload consumed.
	Bytes int64 `json:"bytes"`
	// Errors is the number of requests answered with a 4xx/5xx status.
	Errors int64 `json:"errors"`
	// Unknown is the number of documents answered with an unknown
	// (below-threshold) classification — counted separately so operators
	// can watch confidence drift without parsing responses.
	Unknown int64 `json:"unknown"`
	// Spans is the number of segmentation spans emitted (/segment, and
	// /stream in spans mode) — span volume per document is the
	// operator's view of how mixed the traffic is.
	Spans int64 `json:"spans,omitempty"`
	// AvgLatencyMicros is the mean request latency in microseconds.
	AvgLatencyMicros float64 `json:"avg_latency_micros"`
}

// Snapshot is the full /statsz payload: a consistent-enough view of
// the server's counters (each counter is individually atomic).
type Snapshot struct {
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Backend names the membership backend serving requests.
	Backend string `json:"backend"`
	// Workers is the detector pool size used by /batch.
	Workers int `json:"workers"`
	// MinMargin is the configured unknown-thresholding margin floor.
	MinMargin float64 `json:"min_margin"`
	// MinNGrams is the configured minimum n-grams for a known outcome.
	MinNGrams int `json:"min_ngrams"`
	// ProfileVersion is the registry version id currently serving, or
	// "" when the profiles did not come from a registry.
	ProfileVersion string `json:"profile_version,omitempty"`
	// Languages is the served language inventory.
	Languages []string `json:"languages"`
	// Endpoints maps endpoint path to its counters.
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
}
