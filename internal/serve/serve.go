// Package serve is the network-facing serving subsystem: an
// http.Handler that exposes a trained classifier as the
// language-detection service the paper positions the hardware behind —
// a search-engine or filtering front-end fielding a heavy stream of
// documents (§1, §5.4).
//
// Endpoints:
//
//	POST /detect   body = one raw document        -> one JSON Detection
//	POST /batch    body = JSON array of documents -> JSON array of Detections
//	POST /stream   body = NDJSON documents        -> NDJSON Detections, incremental
//	GET  /healthz  liveness probe                 -> 200 "ok"
//	GET  /statsz   request/byte/latency counters  -> JSON Snapshot
//
// All endpoints route through one core.Detector: batch requests fan
// out over its worker pool (document-level parallelism, the software
// analogue of the paper's parallel document processing), stream
// requests are classified incrementally with bounded memory via its
// stream path, and every response carries the detector's normalized
// score, winner margin, and explicit unknown outcome. The membership
// structures are read-only after construction, so all endpoints serve
// concurrent traffic without locking.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
)

// Config carries the serving-layer knobs.
type Config struct {
	// Backend selects the membership structure; default BackendBloom.
	Backend core.Backend
	// Workers bounds /batch fan-out; 0 means GOMAXPROCS.
	Workers int
	// MinMargin is the normalized winner-margin floor below which a
	// document is answered as unknown (language ""); default 0 accepts
	// everything but exact-empty documents.
	MinMargin float64
	// MinNGrams is the minimum testable n-grams for a known outcome;
	// effective minimum 1.
	MinNGrams int
	// MaxBodyBytes caps /detect and /batch request bodies; default 10 MiB.
	// /stream is unbounded in total size by design and bounded per line
	// instead.
	MaxBodyBytes int64
	// MaxBatchDocs caps the number of documents in one /batch request;
	// default 1024.
	MaxBatchDocs int
	// MaxLineBytes caps one NDJSON line on /stream; default 1 MiB.
	MaxLineBytes int
	// IncludeCounts adds per-language match counts to every Detection
	// (always included on /detect).
	IncludeCounts bool
}

func (c *Config) applyDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 10 << 20
	}
	if c.MaxBatchDocs <= 0 {
		c.MaxBatchDocs = 1024
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
}

// Server owns a detector and the serving counters. It is safe for
// concurrent use by any number of connections.
type Server struct {
	cfg   Config
	det   *core.Detector
	start time.Time

	detect  endpointStats
	batch   endpointStats
	stream  endpointStats
	healthz endpointStats
	statsz  endpointStats
}

// New builds a server from trained profiles.
func New(ps *core.ProfileSet, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	clf, err := core.New(ps, cfg.Backend)
	if err != nil {
		return nil, err
	}
	return NewFromClassifier(clf, cfg), nil
}

// NewFromClassifier wraps an existing classifier; cfg.Backend is
// ignored in favour of the classifier's own.
func NewFromClassifier(clf *core.Classifier, cfg Config) *Server {
	cfg.applyDefaults()
	cfg.Backend = clf.Backend()
	return &Server{
		cfg: cfg,
		det: core.NewDetectorFromClassifier(clf,
			core.WithWorkers(cfg.Workers),
			core.WithMinMargin(cfg.MinMargin),
			core.WithMinNGrams(cfg.MinNGrams)),
		start: time.Now(),
	}
}

// Detector returns the detector serving requests.
func (s *Server) Detector() *core.Detector { return s.det }

// Classifier returns the classifier serving requests.
func (s *Server) Classifier() *core.Classifier { return s.det.Classifier() }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/detect", s.measure(&s.detect, http.MethodPost, s.handleDetect))
	mux.Handle("/batch", s.measure(&s.batch, http.MethodPost, s.handleBatch))
	mux.Handle("/stream", s.measure(&s.stream, http.MethodPost, s.handleStream))
	mux.Handle("/healthz", s.measure(&s.healthz, http.MethodGet, s.handleHealthz))
	mux.Handle("/statsz", s.measure(&s.statsz, http.MethodGet, s.handleStatsz))
	return mux
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Snapshot {
	return Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Backend:       s.det.Backend().String(),
		Workers:       s.det.Workers(),
		MinMargin:     s.det.MinMargin(),
		MinNGrams:     s.det.MinNGrams(),
		Languages:     s.det.Languages(),
		Endpoints: map[string]EndpointSnapshot{
			"/detect":  s.detect.snapshot(),
			"/batch":   s.batch.snapshot(),
			"/stream":  s.stream.snapshot(),
			"/healthz": s.healthz.snapshot(),
			"/statsz":  s.statsz.snapshot(),
		},
	}
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so /stream can push each
// result line as it is produced.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the real writer for
// full-duplex control.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *Server) measure(st *endpointStats, method string, h func(http.ResponseWriter, *http.Request, *endpointStats)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if r.Method != method {
			rec.Header().Set("Allow", method)
			http.Error(rec, fmt.Sprintf("%s requires %s", r.URL.Path, method), http.StatusMethodNotAllowed)
		} else {
			h(rec, r, st)
		}
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		st.latencyNS.Add(time.Since(start).Nanoseconds())
	})
}

// Detection is one classified document, the unit of every response.
type Detection struct {
	// ID echoes the request document's id, when one was given.
	ID string `json:"id,omitempty"`
	// Language is the winning language code, or "" when the detection
	// is unknown (no n-grams, or below the confidence thresholds).
	Language string `json:"language"`
	// Name is the English language name, when known.
	Name string `json:"name,omitempty"`
	// NGrams is the number of n-grams tested.
	NGrams int `json:"ngrams"`
	// Count is the winner's raw match count.
	Count int `json:"count"`
	// Score is the normalized confidence Count/NGrams in [0,1].
	Score float64 `json:"score"`
	// Margin is the winner's normalized lead over the runner-up.
	Margin float64 `json:"margin"`
	// Unknown reports that no language cleared the confidence
	// thresholds; Language is "" and the numbers describe the would-be
	// winner.
	Unknown bool `json:"unknown,omitempty"`
	// Counts holds per-language match counts, when requested.
	Counts map[string]int `json:"counts,omitempty"`
	// Error reports a per-document failure on /stream.
	Error string `json:"error,omitempty"`
}

// detection converts a Match into the wire shape, attaching per-language
// counts when given and bumping the endpoint's unknown counter.
func (s *Server) detection(id string, m core.Match, counts []int, st *endpointStats) Detection {
	d := Detection{
		ID:       id,
		Language: m.Lang,
		Name:     corpus.Name(m.Lang),
		NGrams:   m.NGrams,
		Count:    m.Count,
		Score:    m.Score,
		Margin:   m.Margin,
		Unknown:  m.Unknown,
	}
	if counts != nil {
		langs := s.det.Languages()
		d.Counts = make(map[string]int, len(langs))
		for i, l := range langs {
			d.Counts[l] = counts[i]
		}
	}
	if m.Unknown {
		st.unknown.Add(1)
	}
	return d
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpReadError(w, err)
		return
	}
	st.bytes.Add(int64(len(body)))
	// /detect always reports per-language counts, so it takes the
	// Result-carrying path and scores it under the detector's policy.
	res := s.det.Classifier().Classify(body)
	m := s.det.MatchResult(res)
	if m.NGrams == 0 {
		http.Error(w, "document too short to classify", http.StatusUnprocessableEntity)
		return
	}
	st.docs.Add(1)
	writeJSON(w, s.detection("", m, res.Counts, st))
}

// batchDoc accepts either a bare JSON string or {"id": ..., "text": ...}.
type batchDoc struct {
	ID   string
	Text string
}

func (d *batchDoc) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &d.Text)
	}
	var obj struct {
		ID   string `json:"id"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	d.ID, d.Text = obj.ID, obj.Text
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpReadError(w, err)
		return
	}
	var reqDocs []batchDoc
	if err := json.Unmarshal(body, &reqDocs); err != nil {
		http.Error(w, "body must be a JSON array of documents: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(reqDocs) > s.cfg.MaxBatchDocs {
		http.Error(w, fmt.Sprintf("batch of %d documents exceeds limit %d", len(reqDocs), s.cfg.MaxBatchDocs), http.StatusRequestEntityTooLarge)
		return
	}
	docs := make([]corpus.Document, len(reqDocs))
	var bytes int64
	for i, d := range reqDocs {
		docs[i].Text = []byte(d.Text)
		bytes += int64(len(d.Text))
	}
	st.bytes.Add(bytes)
	st.docs.Add(int64(len(docs)))
	out := make([]Detection, len(docs))
	if s.cfg.IncludeCounts {
		// Counts requested: run the Result-carrying engine path and
		// score each result under the detector's policy.
		results := core.NewEngine(s.det.Classifier(), s.det.Workers()).ClassifyAll(docs)
		for i, res := range results {
			out[i] = s.detection(reqDocs[i].ID, s.det.MatchResult(res), res.Counts, st)
		}
	} else {
		for i, m := range s.det.DetectBatch(docs) {
			out[i] = s.detection(reqDocs[i].ID, m, nil, st)
		}
	}
	writeJSON(w, out)
}

// handleStream reads NDJSON documents (one JSON string or {id, text}
// object per line) and writes one NDJSON Detection per line, flushed as
// produced. The whole exchange uses bounded memory regardless of how
// many documents flow through: one line buffer, one DocumentStream
// reset at each document boundary — the software mirror of the
// hardware's End-of-Document marker in the DMA stream (§3.3).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Result lines go out while request lines are still coming in; for
	// HTTP/1 the server would otherwise cut off the request body at the
	// first flush.
	http.NewResponseController(w).EnableFullDuplex()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ds := s.det.NewStream()
	sc := bufio.NewScanner(r.Body)
	// Scanner's effective cap is max(cap(buf), max), so the initial
	// buffer must not exceed the configured line limit.
	bufCap := 64 << 10
	if s.cfg.MaxLineBytes < bufCap {
		bufCap = s.cfg.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, bufCap), s.cfg.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var doc batchDoc
		if err := json.Unmarshal(line, &doc); err != nil {
			enc.Encode(Detection{Error: "bad document line: " + err.Error()})
			continue
		}
		st.bytes.Add(int64(len(doc.Text)))
		ds.Reset()
		io.WriteString(ds, doc.Text)
		st.docs.Add(1)
		var counts []int
		if s.cfg.IncludeCounts {
			counts = ds.Result().Counts
		}
		enc.Encode(s.detection(doc.ID, ds.Match(), counts, st))
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		// Headers are long gone; report the failure in-band and stop.
		msg := err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("document line exceeds %d bytes", s.cfg.MaxLineBytes)
		}
		enc.Encode(Detection{Error: msg})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpReadError maps body-read failures to statuses: the MaxBytesReader
// limit becomes 413, everything else 400.
func httpReadError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}
