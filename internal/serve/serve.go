// Package serve is the network-facing serving subsystem: an
// http.Handler that exposes a trained classifier as the
// language-detection service the paper positions the hardware behind —
// a search-engine or filtering front-end fielding a heavy stream of
// documents (§1, §5.4).
//
// Endpoints:
//
//	POST /detect          body = one raw document        -> one JSON Detection
//	POST /batch           body = JSON array of documents -> JSON array of Detections
//	POST /stream          body = NDJSON documents        -> NDJSON Detections, incremental
//	                      (?spans=1 adds the per-document mixed-language spans)
//	POST /segment         body = one raw document        -> JSON Segmentation (spans)
//	GET  /healthz         liveness probe                 -> 200 "ok"
//	GET  /statsz          request/byte/latency counters  -> JSON Snapshot
//	GET  /admin/profiles  profile versions + active      -> JSON ProfilesStatus (registry-backed servers)
//	POST /admin/reload    hot-swap to the active version -> JSON ReloadStatus   (registry-backed servers)
//
// All endpoints route through one core.Detector, reached through a
// registry.Handle: every request atomically loads the current
// (detector, version) snapshot once and uses it throughout, so a
// profile hot swap is zero-downtime — in-flight requests keep the
// detector they loaded, requests arriving after the swap see the new
// one, and no request ever blocks on or observes a torn swap. Failed
// requests are answered with a JSON error body ({"error": ...,
// "status": ...}): oversized bodies as 413, request-body read
// timeouts as 408.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/registry"
)

// Config carries the serving-layer knobs.
type Config struct {
	// Backend selects the membership structure; default BackendBloom.
	Backend core.Backend
	// Workers bounds /batch fan-out; 0 means GOMAXPROCS.
	Workers int
	// MinMargin is the normalized winner-margin floor below which a
	// document is answered as unknown (language ""); default 0 accepts
	// everything but exact-empty documents.
	MinMargin float64
	// MinNGrams is the minimum testable n-grams for a known outcome;
	// effective minimum 1.
	MinNGrams int
	// MaxBodyBytes caps /detect and /batch request bodies; default 10 MiB.
	// /stream is unbounded in total size by design and bounded per line
	// instead.
	MaxBodyBytes int64
	// MaxBatchDocs caps the number of documents in one /batch request;
	// default 1024.
	MaxBatchDocs int
	// MaxLineBytes caps one NDJSON line on /stream; default 1 MiB.
	MaxLineBytes int
	// IncludeCounts adds per-language match counts to every Detection
	// (always included on /detect).
	IncludeCounts bool
	// Segment carries the sliding-window geometry /segment and the
	// /stream spans mode run under; the zero value selects the core
	// defaults. Invalid geometry fails server construction.
	Segment core.SegmentConfig
	// ReadTimeout bounds reading a whole request (header + body) on
	// servers built by HTTPServer; 0 means no limit. A tripped read
	// deadline surfaces as a 408 JSON error. Long-lived /stream uploads
	// need this generous or zero.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response on servers built by
	// HTTPServer; 0 means no limit.
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness on servers built by
	// HTTPServer; 0 means no limit.
	IdleTimeout time.Duration
	// Registry, when set, enables the /admin/profiles and /admin/reload
	// endpoints and SIGHUP-style Reload against this profile store.
	Registry *registry.Registry
}

func (c *Config) applyDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 10 << 20
	}
	if c.MaxBatchDocs <= 0 {
		c.MaxBatchDocs = 1024
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
}

// Server owns the hot-swappable detector handle and the serving
// counters. It is safe for concurrent use by any number of
// connections, including concurrent profile reloads.
type Server struct {
	cfg    Config
	handle *registry.Handle
	reg    *registry.Registry
	start  time.Time

	reloadMu sync.Mutex // serializes Reload; request paths never take it

	detect        endpointStats
	batch         endpointStats
	stream        endpointStats
	segment       endpointStats
	healthz       endpointStats
	statsz        endpointStats
	adminProfiles endpointStats
	adminReload   endpointStats
}

// New builds a server from trained profiles. The profiles serve under
// the empty version id unless the server is registry-backed and later
// reloaded.
func New(ps *core.ProfileSet, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if err := cfg.Segment.Validate(); err != nil {
		return nil, err
	}
	clf, err := core.New(ps, cfg.Backend)
	if err != nil {
		return nil, err
	}
	return NewFromClassifier(clf, cfg), nil
}

// NewFromClassifier wraps an existing classifier; cfg.Backend is
// ignored in favour of the classifier's own.
func NewFromClassifier(clf *core.Classifier, cfg Config) *Server {
	cfg.applyDefaults()
	cfg.Backend = clf.Backend()
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Registry,
		start: time.Now(),
	}
	s.handle = registry.NewHandle(s.buildDetector(clf), "")
	return s
}

// NewFromRegistry builds a server from the registry's active profile
// version; cfg.Registry is overridden with reg. The server then serves
// that version until Reload (or /admin/reload) swaps in a newer one.
func NewFromRegistry(reg *registry.Registry, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	cfg.Registry = reg
	ps, m, err := reg.LoadActive()
	if err != nil {
		return nil, err
	}
	s, err := New(ps, cfg)
	if err != nil {
		return nil, err
	}
	s.handle.Swap(s.handle.Detector(), m.Version)
	return s, nil
}

// buildDetector applies the server's detection policy to a classifier.
func (s *Server) buildDetector(clf *core.Classifier) *core.Detector {
	return core.NewDetectorFromClassifier(clf,
		core.WithWorkers(s.cfg.Workers),
		core.WithMinMargin(s.cfg.MinMargin),
		core.WithMinNGrams(s.cfg.MinNGrams))
}

// Detector returns the detector currently serving requests. Callers
// needing the detector and its version to agree should use Snapshot.
func (s *Server) Detector() *core.Detector { return s.handle.Detector() }

// Classifier returns the classifier currently serving requests.
func (s *Server) Classifier() *core.Classifier { return s.handle.Detector().Classifier() }

// Snapshot returns the current (detector, version) pairing.
func (s *Server) Snapshot() *registry.Snapshot { return s.handle.Snapshot() }

// SwapDetector atomically replaces the serving detector — the
// registry-less hot-swap path for embedders that manage their own
// profile lifecycle. It returns the previously served version id.
// SwapDetector serializes with Reload, so a concurrent /admin/reload
// cannot interleave with (and silently clobber) an embedder's swap.
func (s *Server) SwapDetector(det *core.Detector, version string) string {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.handle.Swap(det, version).Version
}

// ReloadStatus reports one Reload outcome.
type ReloadStatus struct {
	// Previous is the version serving before the reload.
	Previous string `json:"previous"`
	// Active is the version serving after the reload (the registry's
	// active version).
	Active string `json:"active"`
	// Changed reports whether the reload actually swapped detectors;
	// reloading an unchanged active version is a no-op.
	Changed bool `json:"changed"`
	// Languages is the served language inventory after the reload.
	Languages []string `json:"languages"`
}

// Reload loads the registry's active profile version and hot-swaps it
// into the serving path. Requests in flight finish on the detector
// they started with; requests arriving after Reload returns see the
// new version. Reloading while the served version is already the
// active one is a cheap no-op.
func (s *Server) Reload() (ReloadStatus, error) {
	if s.reg == nil {
		return ReloadStatus{}, errors.New("serve: no registry configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	prev := s.handle.Version()
	activeID, err := s.reg.ActiveVersion()
	if err != nil {
		return ReloadStatus{}, err
	}
	if activeID == prev {
		det := s.handle.Detector()
		return ReloadStatus{Previous: prev, Active: prev, Languages: det.Languages()}, nil
	}
	ps, m, err := s.reg.LoadActive()
	if err != nil {
		return ReloadStatus{}, err
	}
	clf, err := core.New(ps, s.cfg.Backend)
	if err != nil {
		return ReloadStatus{}, err
	}
	det := s.buildDetector(clf)
	s.handle.Swap(det, m.Version)
	return ReloadStatus{Previous: prev, Active: m.Version, Changed: true, Languages: det.Languages()}, nil
}

// Handler returns the service mux. The admin endpoints are mounted
// only on registry-backed servers; deployments should keep /admin
// reachable by operators only.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/detect", s.measure(&s.detect, http.MethodPost, s.handleDetect))
	mux.Handle("/batch", s.measure(&s.batch, http.MethodPost, s.handleBatch))
	mux.Handle("/stream", s.measure(&s.stream, http.MethodPost, s.handleStream))
	mux.Handle("/segment", s.measure(&s.segment, http.MethodPost, s.handleSegment))
	mux.Handle("/healthz", s.measure(&s.healthz, http.MethodGet, s.handleHealthz))
	mux.Handle("/statsz", s.measure(&s.statsz, http.MethodGet, s.handleStatsz))
	if s.reg != nil {
		mux.Handle("/admin/profiles", s.measure(&s.adminProfiles, http.MethodGet, s.handleAdminProfiles))
		mux.Handle("/admin/reload", s.measure(&s.adminReload, http.MethodPost, s.handleAdminReload))
	}
	return mux
}

// HTTPServer wraps the handler in an http.Server with the configured
// read/write/idle timeouts — the hardened listener cmd/langidd runs.
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Snapshot {
	snap := s.handle.Snapshot()
	det := snap.Detector
	out := Snapshot{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Backend:        det.Backend().String(),
		Workers:        det.Workers(),
		MinMargin:      det.MinMargin(),
		MinNGrams:      det.MinNGrams(),
		ProfileVersion: snap.Version,
		Languages:      det.Languages(),
		Endpoints: map[string]EndpointSnapshot{
			"/detect":  s.detect.snapshot(),
			"/batch":   s.batch.snapshot(),
			"/stream":  s.stream.snapshot(),
			"/segment": s.segment.snapshot(),
			"/healthz": s.healthz.snapshot(),
			"/statsz":  s.statsz.snapshot(),
		},
	}
	if s.reg != nil {
		out.Endpoints["/admin/profiles"] = s.adminProfiles.snapshot()
		out.Endpoints["/admin/reload"] = s.adminReload.snapshot()
	}
	return out
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so /stream can push each
// result line as it is produced.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the real writer for
// full-duplex control.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *Server) measure(st *endpointStats, method string, h func(http.ResponseWriter, *http.Request, *endpointStats)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if r.Method != method {
			rec.Header().Set("Allow", method)
			jsonError(rec, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires %s", r.URL.Path, method))
		} else {
			h(rec, r, st)
		}
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		st.latencyNS.Add(time.Since(start).Nanoseconds())
	})
}

// Detection is one classified document, the unit of every response.
type Detection struct {
	// ID echoes the request document's id, when one was given.
	ID string `json:"id,omitempty"`
	// Language is the winning language code, or "" when the detection
	// is unknown (no n-grams, or below the confidence thresholds).
	Language string `json:"language"`
	// Name is the English language name, when known.
	Name string `json:"name,omitempty"`
	// NGrams is the number of n-grams tested.
	NGrams int `json:"ngrams"`
	// Count is the winner's raw match count.
	Count int `json:"count"`
	// Score is the normalized confidence Count/NGrams in [0,1].
	Score float64 `json:"score"`
	// Margin is the winner's normalized lead over the runner-up.
	Margin float64 `json:"margin"`
	// Unknown reports that no language cleared the confidence
	// thresholds; Language is "" and the numbers describe the would-be
	// winner.
	Unknown bool `json:"unknown,omitempty"`
	// Counts holds per-language match counts, when requested.
	Counts map[string]int `json:"counts,omitempty"`
	// Spans holds the document's mixed-language segmentation, when
	// requested (/stream with ?spans=1).
	Spans []SpanDetection `json:"spans,omitempty"`
	// Error reports a per-document failure on /stream.
	Error string `json:"error,omitempty"`
}

// SpanDetection is one contiguous single-language region in a
// segmentation response: the half-open byte range [start, end) of the
// request document and the language called for it.
type SpanDetection struct {
	// Start is the first byte of the span.
	Start int `json:"start"`
	// End is the byte after the last byte of the span.
	End int `json:"end"`
	// Language is the span's language code, or "" when unknown.
	Language string `json:"language"`
	// Name is the English language name, when known.
	Name string `json:"name,omitempty"`
	// Score is the mean windowed confidence over the span.
	Score float64 `json:"score"`
	// Margin is the mean windowed winner margin over the span.
	Margin float64 `json:"margin"`
	// Unknown reports that no language cleared the confidence
	// thresholds for this region.
	Unknown bool `json:"unknown,omitempty"`
}

// Segmentation is the /segment response: the document's span tiling
// under the server's segmentation geometry.
type Segmentation struct {
	// Bytes is the length of the segmented document.
	Bytes int `json:"bytes"`
	// Window and Stride echo the effective segmentation geometry in
	// n-grams, so clients can interpret boundary granularity.
	Window int `json:"window"`
	Stride int `json:"stride"`
	// Spans tile [0, Bytes) in order.
	Spans []SpanDetection `json:"spans"`
}

// spanDetections converts core spans to the wire shape, counting them
// on the endpoint's span counter.
func spanDetections(spans []core.Span, st *endpointStats) []SpanDetection {
	out := make([]SpanDetection, len(spans))
	for i, sp := range spans {
		out[i] = SpanDetection{
			Start:    sp.Start,
			End:      sp.End,
			Language: sp.Lang,
			Name:     corpus.Name(sp.Lang),
			Score:    sp.Score,
			Margin:   sp.Margin,
			Unknown:  sp.Unknown,
		}
	}
	st.spans.Add(int64(len(spans)))
	return out
}

// detection converts a Match into the wire shape, attaching per-language
// counts when given and bumping the endpoint's unknown counter. det
// must be the detector that produced m, so language order agrees.
func (s *Server) detection(det *core.Detector, id string, m core.Match, counts []int, st *endpointStats) Detection {
	d := Detection{
		ID:       id,
		Language: m.Lang,
		Name:     corpus.Name(m.Lang),
		NGrams:   m.NGrams,
		Count:    m.Count,
		Score:    m.Score,
		Margin:   m.Margin,
		Unknown:  m.Unknown,
	}
	if counts != nil {
		langs := det.Languages()
		d.Counts = make(map[string]int, len(langs))
		for i, l := range langs {
			d.Counts[l] = counts[i]
		}
	}
	if m.Unknown {
		st.unknown.Add(1)
	}
	return d
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	// One snapshot per request: a concurrent hot swap must not change
	// the detector under a request that already started.
	det := s.handle.Detector()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpReadError(w, err)
		return
	}
	st.bytes.Add(int64(len(body)))
	// /detect always reports per-language counts, so it takes the
	// Result-carrying path and scores it under the detector's policy.
	res := det.Classifier().Classify(body)
	m := det.MatchResult(res)
	if m.NGrams == 0 {
		jsonError(w, http.StatusUnprocessableEntity, "document too short to classify")
		return
	}
	st.docs.Add(1)
	writeJSON(w, s.detection(det, "", m, res.Counts, st))
}

// handleSegment segments one raw document into contiguous
// single-language spans under the server's segmentation geometry —
// the mixed-language answer /detect cannot give. Like every endpoint
// it runs against one detector snapshot, so segmentation is stable
// across concurrent profile hot swaps.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	det := s.handle.Detector()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpReadError(w, err)
		return
	}
	st.bytes.Add(int64(len(body)))
	if len(body) == 0 {
		jsonError(w, http.StatusUnprocessableEntity, "document is empty")
		return
	}
	spans, err := det.DetectSpans(body, s.cfg.Segment)
	if err != nil {
		// Geometry is validated at construction on the New path; an
		// error here means an embedder handed NewFromClassifier a bad
		// config.
		jsonError(w, http.StatusInternalServerError, "segmentation misconfigured: "+err.Error())
		return
	}
	st.docs.Add(1)
	eff := s.cfg.Segment.WithDefaults()
	writeJSON(w, Segmentation{
		Bytes:  len(body),
		Window: eff.Window,
		Stride: eff.Stride,
		Spans:  spanDetections(spans, st),
	})
}

// batchDoc accepts either a bare JSON string or {"id": ..., "text": ...}.
type batchDoc struct {
	ID   string
	Text string
}

func (d *batchDoc) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &d.Text)
	}
	var obj struct {
		ID   string `json:"id"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	d.ID, d.Text = obj.ID, obj.Text
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	det := s.handle.Detector()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpReadError(w, err)
		return
	}
	var reqDocs []batchDoc
	if err := json.Unmarshal(body, &reqDocs); err != nil {
		jsonError(w, http.StatusBadRequest, "body must be a JSON array of documents: "+err.Error())
		return
	}
	if len(reqDocs) > s.cfg.MaxBatchDocs {
		jsonError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d documents exceeds limit %d", len(reqDocs), s.cfg.MaxBatchDocs))
		return
	}
	docs := make([]corpus.Document, len(reqDocs))
	var bytes int64
	for i, d := range reqDocs {
		docs[i].Text = []byte(d.Text)
		bytes += int64(len(d.Text))
	}
	st.bytes.Add(bytes)
	st.docs.Add(int64(len(docs)))
	out := make([]Detection, len(docs))
	if s.cfg.IncludeCounts {
		// Counts requested: run the Result-carrying engine path and
		// score each result under the detector's policy.
		results := core.NewEngine(det.Classifier(), det.Workers()).ClassifyAll(docs)
		for i, res := range results {
			out[i] = s.detection(det, reqDocs[i].ID, det.MatchResult(res), res.Counts, st)
		}
	} else {
		for i, m := range det.DetectBatch(docs) {
			out[i] = s.detection(det, reqDocs[i].ID, m, nil, st)
		}
	}
	writeJSON(w, out)
}

// handleStream reads NDJSON documents (one JSON string or {id, text}
// object per line) and writes one NDJSON Detection per line, flushed as
// produced. The whole exchange uses bounded memory regardless of how
// many documents flow through: one line buffer, one DocumentStream
// reset at each document boundary — the software mirror of the
// hardware's End-of-Document marker in the DMA stream (§3.3). The
// stream keeps its request-start detector for its whole life, even
// across hot swaps. With ?spans=1 every result line also carries the
// document's mixed-language segmentation, produced by one SpanStream
// reset per document; the stream's running totals double as the
// document-level detection, so spans mode still extracts and hashes
// each n-gram exactly once and makes no per-line copies.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	det := s.handle.Detector()
	var spanStream *core.SpanStream
	if queryFlag(r, "spans") {
		var err error
		if spanStream, err = det.NewSpanStream(s.cfg.Segment); err != nil {
			// Geometry is validated at construction on the New path; an
			// error here means an embedder handed NewFromClassifier a bad
			// config.
			jsonError(w, http.StatusInternalServerError, "segmentation misconfigured: "+err.Error())
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Result lines go out while request lines are still coming in; for
	// HTTP/1 the server would otherwise cut off the request body at the
	// first flush.
	http.NewResponseController(w).EnableFullDuplex()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var ds *core.Stream
	if spanStream == nil {
		ds = det.NewStream()
	}
	sc := bufio.NewScanner(r.Body)
	// Scanner's effective cap is max(cap(buf), max), so the initial
	// buffer must not exceed the configured line limit.
	bufCap := 64 << 10
	if s.cfg.MaxLineBytes < bufCap {
		bufCap = s.cfg.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, bufCap), s.cfg.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var doc batchDoc
		if err := json.Unmarshal(line, &doc); err != nil {
			enc.Encode(Detection{Error: "bad document line: " + err.Error()})
			continue
		}
		st.bytes.Add(int64(len(doc.Text)))
		st.docs.Add(1)
		var m core.Match
		var result func() core.Result
		var spans []core.Span
		if spanStream != nil {
			spanStream.Reset()
			io.WriteString(spanStream, doc.Text)
			spans = spanStream.Finish()
			m, result = spanStream.Match(), spanStream.Result
		} else {
			ds.Reset()
			io.WriteString(ds, doc.Text)
			m, result = ds.Match(), ds.Result
		}
		var counts []int
		if s.cfg.IncludeCounts {
			counts = result().Counts
		}
		d := s.detection(det, doc.ID, m, counts, st)
		if spanStream != nil {
			d.Spans = spanDetections(spans, st)
		}
		enc.Encode(d)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		// Headers are long gone; report the failure in-band and stop.
		msg := err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("document line exceeds %d bytes", s.cfg.MaxLineBytes)
		}
		enc.Encode(Detection{Error: msg})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	writeJSON(w, s.Stats())
}

// ProfilesStatus is the /admin/profiles payload.
type ProfilesStatus struct {
	// Serving is the version the handle serves right now.
	Serving string `json:"serving"`
	// Active is the registry's active version — it differs from
	// Serving between an Activate and the next reload.
	Active string `json:"active,omitempty"`
	// Versions lists every version manifest in ascending order.
	Versions []*registry.Manifest `json:"versions"`
}

func (s *Server) handleAdminProfiles(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	versions, err := s.reg.List()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	active, err := s.reg.ActiveVersion()
	if err != nil && !errors.Is(err, registry.ErrNoActive) {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, ProfilesStatus{
		Serving:  s.handle.Version(),
		Active:   active,
		Versions: versions,
	})
}

func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request, st *endpointStats) {
	status, err := s.Reload()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, status)
}

// queryFlag reports whether a boolean query parameter is set truthy
// ("1", "true", "t", ...).
func queryFlag(r *http.Request, name string) bool {
	v, err := strconv.ParseBool(r.URL.Query().Get(name))
	return err == nil && v
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON envelope every failed request is answered
// with.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// jsonError writes a JSON error response with the given status.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Status: status})
}

// httpReadError maps body-read failures to statuses: the MaxBytesReader
// limit becomes 413, a tripped read deadline (Config.ReadTimeout)
// becomes 408, everything else 400.
func httpReadError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		jsonError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		return
	}
	var netErr net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &netErr) && netErr.Timeout()) {
		jsonError(w, http.StatusRequestTimeout, "timed out reading request body")
		return
	}
	jsonError(w, http.StatusBadRequest, err.Error())
}
