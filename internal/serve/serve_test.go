package serve_test

// Integration tests for the serving subsystem: a classifier trained on
// a small synthetic corpus, persisted and reloaded through the profile
// serialization path (the restart a production daemon takes), mounted
// under httptest, and exercised over real HTTP — including concurrent
// clients, so `go test -race` sweeps the whole serving data path.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/serve"
)

// testLangs are the languages the fixture trains; tests classify
// documents from all four.
var testLangs = []string{"en", "es", "fi", "pt"}

var (
	fixOnce   sync.Once
	fixCorpus *corpus.Corpus
	fixSet    *core.ProfileSet
	fixErr    error
)

// fixtures trains once per test binary, then saves and reloads the
// profiles so every test runs against deserialized state.
func fixtures(t testing.TB) (*corpus.Corpus, *core.ProfileSet) {
	t.Helper()
	fixOnce.Do(func() {
		corp, err := corpus.Generate(corpus.Config{
			Languages:       testLangs,
			DocsPerLanguage: 30,
			WordsPerDoc:     150,
			TrainFraction:   0.3,
			Seed:            11,
		})
		if err != nil {
			fixErr = err
			return
		}
		trained, err := core.Train(core.Config{TopT: 1500}, corp)
		if err != nil {
			fixErr = err
			return
		}
		path := filepath.Join(t.TempDir(), "profiles.bin")
		if err := trained.SaveFile(path); err != nil {
			fixErr = err
			return
		}
		fixCorpus = corp
		fixSet, fixErr = core.LoadProfileSetFile(path)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixCorpus, fixSet
}

func newTestServer(t testing.TB, cfg serve.Config) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	corp, ps := fixtures(t)
	srv, err := serve.New(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, corp
}

func postDetect(t testing.TB, ts *httptest.Server, doc []byte) serve.Detection {
	t.Helper()
	resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/detect status %d: %s", resp.StatusCode, body)
	}
	var d serve.Detection
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDetectAcrossLanguages is the acceptance path: documents in four
// languages, each classified correctly via /detect against profiles
// that went through a save/reload round-trip.
func TestDetectAcrossLanguages(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	for _, lang := range testLangs {
		doc := corp.Test[lang][0].Text
		d := postDetect(t, ts, doc)
		if d.Language != lang {
			t.Errorf("%s document detected as %q", lang, d.Language)
		}
		if d.NGrams == 0 || d.Counts == nil {
			t.Errorf("%s: degenerate detection %+v", lang, d)
		}
		if d.Name != corpus.Name(lang) {
			t.Errorf("%s: name %q, want %q", lang, d.Name, corpus.Name(lang))
		}
	}
}

func TestBatchPreservesOrderAcrossLanguages(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	type reqDoc struct {
		ID   string `json:"id"`
		Text string `json:"text"`
	}
	var docs []reqDoc
	var wantLangs []string
	// Interleave languages so order mistakes cannot hide.
	for i := 0; i < 3; i++ {
		for _, lang := range testLangs {
			docs = append(docs, reqDoc{
				ID:   fmt.Sprintf("%s-%d", lang, i),
				Text: string(corp.Test[lang][i].Text),
			})
			wantLangs = append(wantLangs, lang)
		}
	}
	body, _ := json.Marshal(docs)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dets []serve.Detection
	if err := json.NewDecoder(resp.Body).Decode(&dets); err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(docs) {
		t.Fatalf("got %d detections for %d documents", len(dets), len(docs))
	}
	for i, d := range dets {
		if d.ID != docs[i].ID {
			t.Errorf("position %d: id %q, want %q (order not preserved)", i, d.ID, docs[i].ID)
		}
		if d.Language != wantLangs[i] {
			t.Errorf("position %d: language %q, want %q", i, d.Language, wantLangs[i])
		}
	}
}

func TestBatchAcceptsBareStrings(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	body, _ := json.Marshal([]string{
		string(corp.Test["es"][0].Text),
		string(corp.Test["fi"][0].Text),
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dets []serve.Detection
	if err := json.NewDecoder(resp.Body).Decode(&dets); err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 || dets[0].Language != "es" || dets[1].Language != "fi" {
		t.Errorf("bare-string batch = %+v", dets)
	}
}

func TestStreamNDJSONRoundTrip(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	var in bytes.Buffer
	var wantIDs, wantLangs []string
	for i := 0; i < 2; i++ {
		for _, lang := range testLangs {
			id := fmt.Sprintf("%s-%d", lang, i)
			line, _ := json.Marshal(map[string]string{
				"id": id, "text": string(corp.Test[lang][i].Text),
			})
			in.Write(line)
			in.WriteByte('\n')
			wantIDs = append(wantIDs, id)
			wantLangs = append(wantLangs, lang)
		}
		// Blank lines between documents are tolerated.
		in.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/stream", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var got []serve.Detection
	for sc.Scan() {
		var d serve.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		got = append(got, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantIDs) {
		t.Fatalf("got %d result lines for %d documents", len(got), len(wantIDs))
	}
	for i, d := range got {
		if d.ID != wantIDs[i] || d.Language != wantLangs[i] || d.Error != "" {
			t.Errorf("line %d: %+v, want id %q lang %q", i, d, wantIDs[i], wantLangs[i])
		}
	}
}

func TestStreamReportsBadLinesInBand(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	goodLine, _ := json.Marshal(map[string]string{
		"id": "good", "text": string(corp.Test["en"][0].Text),
	})
	in := "this is not json\n" + string(goodLine) + "\n"
	resp, err := http.Post(ts.URL+"/stream", "application/x-ndjson", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []serve.Detection
	for sc.Scan() {
		var d serve.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		got = append(got, d)
	}
	if len(got) != 2 {
		t.Fatalf("got %d lines, want 2: %+v", len(got), got)
	}
	if got[0].Error == "" {
		t.Error("malformed line produced no in-band error")
	}
	if got[1].ID != "good" || got[1].Language != "en" {
		t.Errorf("stream did not recover after bad line: %+v", got[1])
	}
}

func TestStreamLineTooLong(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{MaxLineBytes: 256})
	line, _ := json.Marshal(map[string]string{"text": strings.Repeat("abcdefg ", 200)})
	resp, err := http.Post(ts.URL+"/stream", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d serve.Detection
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Error, "exceeds 256 bytes") {
		t.Errorf("oversized line error = %+v", d)
	}
}

func TestOversizedBodies(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{MaxBodyBytes: 1024})
	big := bytes.Repeat([]byte("word "), 1024)
	for _, path := range []string{"/detect", "/batch"} {
		resp, err := http.Post(ts.URL+path, "text/plain", bytes.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestWrongMethods(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	cases := []struct{ method, path string }{
		{http.MethodGet, "/detect"},
		{http.MethodGet, "/batch"},
		{http.MethodGet, "/stream"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/statsz"},
		{http.MethodDelete, "/detect"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("x"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("%s %s: no Allow header", c.method, c.path)
		}
	}
}

func TestBatchErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{MaxBatchDocs: 4})
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	// Too many documents.
	body, _ := json.Marshal(make([]string, 5))
	resp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit batch: status %d, want 413", resp.StatusCode)
	}
}

func TestDetectUnclassifiable(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	resp, err := http.Post(ts.URL+"/detect", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("empty document: status %d, want 422", resp.StatusCode)
	}
}

// TestDetectReportsConfidenceFields checks /detect carries the new
// score/margin/count fields alongside the language call.
func TestDetectReportsConfidenceFields(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	d := postDetect(t, ts, corp.Test["es"][0].Text)
	if d.Language != "es" || d.Unknown {
		t.Fatalf("detection = %+v", d)
	}
	if d.Count <= 0 || d.Count > d.NGrams {
		t.Errorf("count %d outside (0, %d]", d.Count, d.NGrams)
	}
	if d.Score <= 0 || d.Score > 1 {
		t.Errorf("score %v outside (0,1]", d.Score)
	}
	if d.Margin < 0 || d.Margin > 1 {
		t.Errorf("margin %v outside [0,1]", d.Margin)
	}
	if got := float64(d.Count) / float64(d.NGrams); d.Score != got {
		t.Errorf("score %v != count/ngrams %v", d.Score, got)
	}
}

// TestUnknownThresholding runs a server with an unattainable margin
// floor: every document comes back unknown with language "", and the
// unknown counters on /statsz tick separately per endpoint.
func TestUnknownThresholding(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{MinMargin: 0.99})
	doc := corp.Test["en"][0].Text

	d := postDetect(t, ts, doc)
	if !d.Unknown || d.Language != "" {
		t.Errorf("/detect below margin floor = %+v, want unknown", d)
	}
	if d.NGrams == 0 || d.Score <= 0 {
		t.Errorf("unknown detection lost its diagnostics: %+v", d)
	}

	body, _ := json.Marshal([]string{string(doc), string(doc)})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var dets []serve.Detection
	err = json.NewDecoder(resp.Body).Decode(&dets)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i, bd := range dets {
		if !bd.Unknown || bd.Language != "" {
			t.Errorf("/batch doc %d = %+v, want unknown", i, bd)
		}
	}

	line, _ := json.Marshal(map[string]string{"text": string(doc)})
	resp, err = http.Post(ts.URL+"/stream", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	var sd serve.Detection
	err = json.NewDecoder(resp.Body).Decode(&sd)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !sd.Unknown || sd.Language != "" {
		t.Errorf("/stream = %+v, want unknown", sd)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.MinMargin != 0.99 || snap.MinNGrams != 1 {
		t.Errorf("statsz thresholds = %v/%d, want 0.99/1", snap.MinMargin, snap.MinNGrams)
	}
	if got := snap.Endpoints["/detect"].Unknown; got != 1 {
		t.Errorf("detect unknown = %d, want 1", got)
	}
	if got := snap.Endpoints["/batch"].Unknown; got != 2 {
		t.Errorf("batch unknown = %d, want 2", got)
	}
	if got := snap.Endpoints["/stream"].Unknown; got != 1 {
		t.Errorf("stream unknown = %d, want 1", got)
	}
}

// TestConfidentTrafficCountsNoUnknowns is the counter's negative case.
func TestConfidentTrafficCountsNoUnknowns(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{})
	postDetect(t, ts, corp.Test["fi"][0].Text)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Endpoints["/detect"].Unknown; got != 0 {
		t.Errorf("detect unknown = %d, want 0", got)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestConcurrentClients hammers /detect, /batch and /stream from many
// goroutines at once — the scenario the race detector needs to see —
// then checks the /statsz counters add up exactly.
func TestConcurrentClients(t *testing.T) {
	ts, corp := newTestServer(t, serve.Config{Workers: 4})
	const clients = 8
	const perClient = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*3)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lang := testLangs[c%len(testLangs)]
			doc := corp.Test[lang][c%len(corp.Test[lang])].Text
			for i := 0; i < perClient; i++ {
				// /detect
				resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(doc))
				if err != nil {
					errs <- err
					return
				}
				var d serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&d)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if d.Language != lang {
					errs <- fmt.Errorf("client %d: detect %q, want %q", c, d.Language, lang)
					return
				}
				// /batch of 2
				body, _ := json.Marshal([]string{string(doc), string(doc)})
				resp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var dets []serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&dets)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(dets) != 2 || dets[0].Language != lang || dets[1].Language != lang {
					errs <- fmt.Errorf("client %d: batch %+v", c, dets)
					return
				}
				// /stream of 1
				line, _ := json.Marshal(map[string]string{"text": string(doc)})
				resp, err = http.Post(ts.URL+"/stream", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
				if err != nil {
					errs <- err
					return
				}
				var sd serve.Detection
				err = json.NewDecoder(resp.Body).Decode(&sd)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if sd.Language != lang {
					errs <- fmt.Errorf("client %d: stream %q, want %q", c, sd.Language, lang)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(clients * perClient)
	if got := snap.Endpoints["/detect"].Docs; got != want {
		t.Errorf("detect docs = %d, want %d", got, want)
	}
	if got := snap.Endpoints["/batch"].Docs; got != 2*want {
		t.Errorf("batch docs = %d, want %d", got, 2*want)
	}
	if got := snap.Endpoints["/stream"].Docs; got != want {
		t.Errorf("stream docs = %d, want %d", got, want)
	}
	if snap.Endpoints["/detect"].Bytes == 0 || snap.Endpoints["/detect"].AvgLatencyMicros <= 0 {
		t.Errorf("degenerate detect stats: %+v", snap.Endpoints["/detect"])
	}
	if len(snap.Languages) != len(testLangs) {
		t.Errorf("statsz languages = %v", snap.Languages)
	}
}

// TestStatszCountsErrors checks failed requests land in the error
// counters.
func TestStatszCountsErrors(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/detect") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/detect", "text/plain", strings.NewReader("")) // 422
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Endpoints["/detect"].Errors; got != 2 {
		t.Errorf("detect errors = %d, want 2", got)
	}
	if got := snap.Endpoints["/detect"].Requests; got != 2 {
		t.Errorf("detect requests = %d, want 2", got)
	}
}

// TestBlockedBackendServesIdentically mounts the server on the fused
// blocked backend — with profiles reloaded from an NGPS v2 file
// carrying the embedded blocked layout, the restart path a production
// daemon takes — and checks that HTTP detections agree with the
// default parallel-bloom server on every test language, and that
// /statsz names the backend.
func TestBlockedBackendServesIdentically(t *testing.T) {
	_, ps := fixtures(t)
	path := filepath.Join(t.TempDir(), "profiles_blocked.bin")
	if err := ps.SaveFileBlocked(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadProfileSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasBlockedLayout() {
		t.Fatal("reloaded v2 profile file lost the blocked layout")
	}
	srv, err := serve.New(loaded, serve.Config{Backend: core.BackendBlocked})
	if err != nil {
		t.Fatal(err)
	}
	blockedTS := httptest.NewServer(srv.Handler())
	t.Cleanup(blockedTS.Close)
	baselineTS, corp := newTestServer(t, serve.Config{})
	for _, lang := range testLangs {
		for i := 0; i < 3; i++ {
			doc := corp.Test[lang][i].Text
			want := postDetect(t, baselineTS, doc)
			got := postDetect(t, blockedTS, doc)
			if got.Language != want.Language {
				t.Errorf("%s doc %d: blocked served %q, parallel-bloom served %q",
					lang, i, got.Language, want.Language)
			}
			if got.NGrams != want.NGrams {
				t.Errorf("%s doc %d: blocked tested %d n-grams, parallel-bloom %d",
					lang, i, got.NGrams, want.NGrams)
			}
		}
	}
	resp, err := http.Get(blockedTS.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Backend != "blocked-bloom" {
		t.Errorf("statsz backend = %q, want %q", snap.Backend, "blocked-bloom")
	}
}
