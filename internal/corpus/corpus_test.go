package corpus

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestLanguagesListsAllTen(t *testing.T) {
	langs := Languages()
	want := []string{"cs", "da", "en", "es", "et", "fi", "fr", "pt", "sk", "sv"}
	if len(langs) != len(want) {
		t.Fatalf("Languages() = %v, want %v", langs, want)
	}
	for i := range want {
		if langs[i] != want[i] {
			t.Errorf("Languages()[%d] = %q, want %q", i, langs[i], want[i])
		}
	}
}

func TestByCode(t *testing.T) {
	s, err := ByCode("es")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Spanish" {
		t.Errorf("es Name = %q", s.Name)
	}
	if _, err := ByCode("xx"); err == nil {
		t.Error("ByCode(xx) succeeded")
	}
	if Name("fi") != "Finnish" {
		t.Errorf("Name(fi) = %q", Name("fi"))
	}
	if Name("zz") != "zz" {
		t.Errorf("Name(zz) = %q, want passthrough", Name("zz"))
	}
}

func TestSpecsWellFormed(t *testing.T) {
	for _, code := range Languages() {
		s, _ := ByCode(code)
		if len(s.Words) < 100 {
			t.Errorf("%s: only %d vocabulary words, want >= 100", code, len(s.Words))
		}
		if len(s.Suffixes) == 0 {
			t.Errorf("%s: no suffixes", code)
		}
		if s.SuffixRate <= 0 || s.SuffixRate >= 1 {
			t.Errorf("%s: suffix rate %v out of (0,1)", code, s.SuffixRate)
		}
		seen := map[string]bool{}
		for _, w := range s.Words {
			if len(w) == 0 {
				t.Errorf("%s: empty vocabulary word", code)
			}
			if seen[string(w)] {
				t.Errorf("%s: duplicate vocabulary word %q", code, w)
			}
			seen[string(w)] = true
			for _, b := range w {
				// Every byte must be a letter the alphabet module maps to
				// a letter code (ISO-8859-1 lower-case or accented).
				if b < 0x80 && !(b >= 'a' && b <= 'z') {
					t.Errorf("%s: word %q contains non-letter ASCII byte %#x", code, w, b)
				}
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec, _ := ByCode("fr")
	a := NewGenerator(spec, 42).Document(100)
	b := NewGenerator(spec, 42).Document(100)
	if !bytes.Equal(a, b) {
		t.Error("same seed generated different documents")
	}
	c := NewGenerator(spec, 43).Document(100)
	if bytes.Equal(a, c) {
		t.Error("different seeds generated identical documents")
	}
}

func TestGeneratorDocumentShape(t *testing.T) {
	spec, _ := ByCode("en")
	doc := NewGenerator(spec, 7).Document(200)
	if len(doc) == 0 {
		t.Fatal("empty document")
	}
	if doc[len(doc)-1] != '\n' {
		t.Error("document does not end with newline")
	}
	words := bytes.Fields(doc)
	// Log-normal length jitter: the bulk of documents lands within a
	// factor of a few of the target.
	if len(words) < 20 || len(words) > 1200 {
		t.Errorf("document has %d fields, want within a few x of 200", len(words))
	}
	if !bytes.Contains(doc, []byte(".")) {
		t.Error("document has no sentence breaks")
	}
}

func TestGeneratorTinyDocument(t *testing.T) {
	spec, _ := ByCode("en")
	doc := NewGenerator(spec, 7).Document(0)
	if len(doc) == 0 {
		t.Error("Document(0) produced no text, want at least one word")
	}
}

func TestGeneratorLanguagesDiffer(t *testing.T) {
	// Documents in different languages must have visibly different
	// 4-gram inventories; this is the property classification rests on.
	esDoc := NewGenerator(mustSpec(t, "es"), 1).Document(500)
	fiDoc := NewGenerator(mustSpec(t, "fi"), 1).Document(500)
	esSet := gramSet(esDoc)
	fiSet := gramSet(fiDoc)
	inter, union := 0, len(fiSet)
	for g := range esSet {
		if fiSet[g] {
			inter++
		} else {
			union++
		}
	}
	j := float64(inter) / float64(union)
	if j > 0.5 {
		t.Errorf("es/fi 4-gram Jaccard similarity %.2f too high; languages indistinguishable", j)
	}
}

func TestRelatedLanguagesOverlapMore(t *testing.T) {
	// es↔pt must overlap more than es↔fi: that asymmetry produces the
	// paper's observed confusion pattern.
	es := gramSet(NewGenerator(mustSpec(t, "es"), 1).Document(2000))
	pt := gramSet(NewGenerator(mustSpec(t, "pt"), 1).Document(2000))
	fi := gramSet(NewGenerator(mustSpec(t, "fi"), 1).Document(2000))
	esPt := jaccard(es, pt)
	esFi := jaccard(es, fi)
	if esPt <= esFi {
		t.Errorf("Jaccard(es,pt)=%.3f not greater than Jaccard(es,fi)=%.3f", esPt, esFi)
	}
}

func mustSpec(t *testing.T, code string) *Spec {
	t.Helper()
	s, err := ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func gramSet(text []byte) map[uint32]bool {
	set := map[uint32]bool{}
	var window uint32
	filled := 0
	for _, b := range text {
		c := translate(b)
		window = (window<<5 | uint32(c)) & 0xFFFFF
		if filled < 3 {
			filled++
			continue
		}
		set[window] = true
	}
	return set
}

// translate is a local mirror of alphabet.Translate to keep this
// package's tests free of the dependency direction question; it only
// needs to agree on case folding for ASCII.
func translate(b byte) uint8 {
	switch {
	case b >= 'A' && b <= 'Z':
		return b - 'A' + 1
	case b >= 'a' && b <= 'z':
		return b - 'a' + 1
	case b >= 0xC0 && b < 0xFF:
		return 1 // crude accent bucket; fine for overlap measurement
	}
	return 0
}

func jaccard(a, b map[uint32]bool) float64 {
	inter := 0
	for g := range a {
		if b[g] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func TestGenerateCorpus(t *testing.T) {
	cfg := TestConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Languages) != 10 {
		t.Fatalf("corpus has %d languages, want 10", len(c.Languages))
	}
	for _, lang := range c.Languages {
		nTrain := len(c.Train[lang])
		nTest := len(c.Test[lang])
		if nTrain+nTest != cfg.DocsPerLanguage {
			t.Errorf("%s: %d+%d docs, want %d", lang, nTrain, nTest, cfg.DocsPerLanguage)
		}
		if nTrain != 10 { // 25% of 40
			t.Errorf("%s: %d training docs, want 10", lang, nTrain)
		}
		for _, d := range c.Train[lang] {
			if d.Language != lang {
				t.Errorf("train doc labelled %q under %q", d.Language, lang)
			}
			if len(d.Text) == 0 {
				t.Errorf("%s: empty training document %d", lang, d.ID)
			}
		}
	}
}

func TestGenerateDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := TestConfig()
	cfg.DocsPerLanguage = 8
	cfg.Languages = []string{"en", "fi"}
	cfg.Workers = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lang := range a.Languages {
		for i := range a.Test[lang] {
			if !bytes.Equal(a.Test[lang][i].Text, b.Test[lang][i].Text) {
				t.Fatalf("%s test doc %d differs between worker counts", lang, i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := TestConfig()
	cfg.Languages = []string{"xx"}
	if _, err := Generate(cfg); err == nil {
		t.Error("Generate with unknown language succeeded")
	}
	cfg = TestConfig()
	cfg.DocsPerLanguage = 1 // the minimum one train doc leaves no test docs
	if _, err := Generate(cfg); err == nil {
		t.Error("Generate with no test docs succeeded")
	}
}

func TestTestDocumentsAllInterleaves(t *testing.T) {
	cfg := TestConfig()
	cfg.Languages = []string{"en", "fr"}
	cfg.DocsPerLanguage = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := c.TestDocuments("")
	if len(all) != len(c.Test["en"])+len(c.Test["fr"]) {
		t.Fatalf("All split has %d docs", len(all))
	}
	// Round-robin: first two docs must be one of each language.
	if all[0].Language == all[1].Language {
		t.Errorf("interleaving broken: first two docs both %q", all[0].Language)
	}
}

func TestSizes(t *testing.T) {
	cfg := TestConfig()
	cfg.Languages = []string{"en"}
	cfg.DocsPerLanguage = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, d := range c.Test["en"] {
		want += int64(len(d.Text))
	}
	if got := c.TestSize("en"); got != want {
		t.Errorf("TestSize = %d, want %d", got, want)
	}
	if got := c.TestSize(""); got != want {
		t.Errorf("TestSize(all) = %d, want %d", got, want)
	}
	if c.TrainSize() <= 0 {
		t.Error("TrainSize not positive")
	}
}

func TestWriteReadDirRoundTrip(t *testing.T) {
	cfg := TestConfig()
	cfg.Languages = []string{"da", "sv"}
	cfg.DocsPerLanguage = 6
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(t.TempDir(), "corpus")
	if err := c.WriteDir(root); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Languages) != 2 {
		t.Fatalf("reloaded %d languages, want 2", len(back.Languages))
	}
	for _, lang := range back.Languages {
		if len(back.Train[lang]) != len(c.Train[lang]) {
			t.Errorf("%s: reloaded %d train docs, want %d", lang, len(back.Train[lang]), len(c.Train[lang]))
		}
		for i := range back.Train[lang] {
			if !bytes.Equal(back.Train[lang][i].Text, c.Train[lang][i].Text) {
				t.Errorf("%s train doc %d corrupted in round trip", lang, i)
			}
		}
	}
}

func TestReadDirErrors(t *testing.T) {
	if _, err := ReadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("ReadDir of missing directory succeeded")
	}
	empty := t.TempDir()
	if _, err := ReadDir(empty); err == nil {
		t.Error("ReadDir of empty directory succeeded")
	}
}

func TestDocSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for id := 0; id < 1000; id++ {
		s := docSeed(1, "en", id)
		if seen[s] {
			t.Fatalf("docSeed collision at id %d", id)
		}
		seen[s] = true
	}
	if docSeed(1, "en", 0) == docSeed(1, "fr", 0) {
		t.Error("docSeed ignores language")
	}
	if docSeed(1, "en", 0) == docSeed(2, "en", 0) {
		t.Error("docSeed ignores corpus seed")
	}
}

func BenchmarkGenerateDocument1300Words(b *testing.B) {
	spec, _ := ByCode("en")
	g := NewGenerator(spec, 1)
	b.ReportAllocs()
	var bytesTotal int64
	for i := 0; i < b.N; i++ {
		doc := g.Document(1300)
		bytesTotal += int64(len(doc))
	}
	b.SetBytes(bytesTotal / int64(b.N))
}
