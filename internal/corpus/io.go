package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The on-disk layout mirrors how the paper's team prepared the corpus:
// "we parsed a subset of the corpus with only the text body saved to
// individual files" (§5). Each language gets a directory of numbered
// .txt files split into train/ and test/:
//
//	root/
//	  es/train/000000.txt ...
//	  es/test/000570.txt ...
//	  pt/...

// WriteDir writes the corpus under root, creating directories as
// needed.
func (c *Corpus) WriteDir(root string) error {
	write := func(split string, docs []Document) error {
		for _, d := range docs {
			dir := filepath.Join(root, d.Language, split)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			name := filepath.Join(dir, fmt.Sprintf("%06d.txt", d.ID))
			if err := os.WriteFile(name, d.Text, 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	for _, lang := range c.Languages {
		if err := write("train", c.Train[lang]); err != nil {
			return err
		}
		if err := write("test", c.Test[lang]); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir loads a corpus previously written by WriteDir (or prepared by
// hand in the same layout). Unknown language directories are accepted:
// the reader does not require languages to be among the built-in specs.
func ReadDir(root string) (*Corpus, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("corpus: reading %s: %w", root, err)
	}
	c := &Corpus{
		Train: make(map[string][]Document),
		Test:  make(map[string][]Document),
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		lang := e.Name()
		train, err := readSplit(root, lang, "train")
		if err != nil {
			return nil, err
		}
		test, err := readSplit(root, lang, "test")
		if err != nil {
			return nil, err
		}
		if len(train) == 0 && len(test) == 0 {
			continue
		}
		c.Languages = append(c.Languages, lang)
		c.Train[lang] = train
		c.Test[lang] = test
	}
	sort.Strings(c.Languages)
	if len(c.Languages) == 0 {
		return nil, fmt.Errorf("corpus: no language directories under %s", root)
	}
	return c, nil
}

func readSplit(root, lang, split string) ([]Document, error) {
	dir := filepath.Join(root, lang, split)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: reading %s: %w", dir, err)
	}
	var docs []Document
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		docs = append(docs, Document{Language: lang, ID: len(docs), Text: text})
	}
	return docs, nil
}
