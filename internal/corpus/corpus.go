package corpus

import (
	"fmt"
	"runtime"
	"sync"
)

// Config describes a corpus to generate. The defaults mirror the paper's
// evaluation setup (§5): 10 languages, an average of 5,700 documents per
// language with an average of 1,300 words per document, 10% of the
// corpus used as the training set.
type Config struct {
	// Languages is the set of language codes; nil means all ten of the
	// paper's languages.
	Languages []string
	// DocsPerLanguage is the number of documents generated per language.
	DocsPerLanguage int
	// WordsPerDoc is the mean document length in words.
	WordsPerDoc int
	// TrainFraction is the fraction of documents put in the training
	// split (the paper used 10%).
	TrainFraction float64
	// Seed makes generation reproducible. Two corpora generated with
	// equal Config are byte-identical regardless of GOMAXPROCS.
	Seed int64
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// PaperConfig returns the full-scale configuration matching the paper's
// corpus statistics. Note this generates roughly 450 MB of text.
func PaperConfig() Config {
	return Config{
		DocsPerLanguage: 5700,
		WordsPerDoc:     1300,
		TrainFraction:   0.10,
		Seed:            1,
	}
}

// TestConfig returns a miniature configuration for unit tests.
func TestConfig() Config {
	return Config{
		DocsPerLanguage: 40,
		WordsPerDoc:     120,
		TrainFraction:   0.25,
		Seed:            1,
	}
}

func (c *Config) applyDefaults() {
	if len(c.Languages) == 0 {
		c.Languages = Languages()
	}
	if c.DocsPerLanguage <= 0 {
		c.DocsPerLanguage = 5700
	}
	if c.WordsPerDoc <= 0 {
		c.WordsPerDoc = 1300
	}
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		c.TrainFraction = 0.10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Document is one generated text with its true language label.
type Document struct {
	// Language is the ground-truth language code.
	Language string
	// ID is the document's index within its language set.
	ID int
	// Text is the ISO-8859-1 document body.
	Text []byte
}

// Corpus is a generated multilingual document collection with a
// train/test split per language.
type Corpus struct {
	// Languages lists the language codes in sorted order.
	Languages []string
	// Train maps language code to its training documents.
	Train map[string][]Document
	// Test maps language code to its held-out test documents.
	Test map[string][]Document
}

// Generate builds the corpus described by cfg. Documents are generated
// in parallel but each document's bytes depend only on (Seed, language,
// document index), so output is reproducible.
func Generate(cfg Config) (*Corpus, error) {
	cfg.applyDefaults()
	c := &Corpus{
		Train: make(map[string][]Document, len(cfg.Languages)),
		Test:  make(map[string][]Document, len(cfg.Languages)),
	}
	for _, code := range cfg.Languages {
		if _, err := ByCode(code); err != nil {
			return nil, err
		}
		c.Languages = append(c.Languages, code)
	}

	nTrain := int(float64(cfg.DocsPerLanguage) * cfg.TrainFraction)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= cfg.DocsPerLanguage {
		return nil, fmt.Errorf("corpus: train fraction %.2f leaves no test documents", cfg.TrainFraction)
	}

	type job struct {
		lang string
		id   int
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	results := make(map[string][]Document, len(cfg.Languages))
	for _, code := range cfg.Languages {
		results[code] = make([]Document, cfg.DocsPerLanguage)
	}

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec, _ := ByCode(j.lang)
				gen := NewGenerator(spec, docSeed(cfg.Seed, j.lang, j.id))
				// Each job owns its slot, so the write below is race-free;
				// wg.Wait establishes happens-before for the reads that follow.
				results[j.lang][j.id] = Document{Language: j.lang, ID: j.id, Text: gen.Document(cfg.WordsPerDoc)}
			}
		}()
	}
	for _, code := range cfg.Languages {
		for id := 0; id < cfg.DocsPerLanguage; id++ {
			jobs <- job{lang: code, id: id}
		}
	}
	close(jobs)
	wg.Wait()

	for _, code := range cfg.Languages {
		docs := results[code]
		c.Train[code] = docs[:nTrain]
		c.Test[code] = docs[nTrain:]
	}
	return c, nil
}

// docSeed derives a per-document seed from the corpus seed, language
// and index with an integer hash (splitmix64 finalizer) so that
// neighbouring documents get well-separated RNG streams.
func docSeed(seed int64, lang string, id int) int64 {
	x := uint64(seed)
	for _, b := range []byte(lang) {
		x = (x ^ uint64(b)) * 0x9E3779B97F4A7C15
	}
	x ^= uint64(id) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// TrainTexts returns the training documents of one language as raw
// byte slices, the shape profile training consumes.
func (c *Corpus) TrainTexts(lang string) [][]byte {
	docs := c.Train[lang]
	texts := make([][]byte, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	return texts
}

// TestDocuments returns the test documents of one language, or every
// language's test documents interleaved when lang is "" (the "All" bar
// of Figure 4).
func (c *Corpus) TestDocuments(lang string) []Document {
	if lang != "" {
		return c.Test[lang]
	}
	var all []Document
	// Interleave round-robin so a streaming consumer sees mixed
	// languages, as the combined 52,581-document run in §5.4 did.
	maxLen := 0
	for _, code := range c.Languages {
		if n := len(c.Test[code]); n > maxLen {
			maxLen = n
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, code := range c.Languages {
			if i < len(c.Test[code]) {
				all = append(all, c.Test[code][i])
			}
		}
	}
	return all
}

// TestSize returns the total byte size of the test split for one
// language ("" for all).
func (c *Corpus) TestSize(lang string) int64 {
	var total int64
	for _, d := range c.TestDocuments(lang) {
		total += int64(len(d.Text))
	}
	return total
}

// TrainSize returns the total byte size of the training split across
// all languages.
func (c *Corpus) TrainSize() int64 {
	var total int64
	for _, docs := range c.Train {
		for _, d := range docs {
			total += int64(len(d.Text))
		}
	}
	return total
}
