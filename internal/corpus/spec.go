// Package corpus generates a synthetic stand-in for the JRC-ACQUIS
// Multilingual Parallel Corpus v3.0 used in the paper's evaluation (§5):
// the body of European Union law in the 10 languages the authors
// selected — Czech, Slovak, Danish, Swedish, Spanish, Portuguese,
// Finnish, Estonian, French and English.
//
// The real corpus is not redistributable inside this repository, so each
// language is modelled by a frequency-ranked vocabulary of genuine
// high-frequency and EU-legal-domain words plus a set of real
// inflectional suffixes. Documents are drawn from a Zipf distribution
// over that vocabulary with seeded randomness, producing ISO-8859-1
// text whose 4-gram statistics overlap across related languages the way
// the real corpus does (Spanish↔Portuguese, Czech↔Slovak,
// Finnish↔Estonian, Danish↔Swedish) — the property that drives the
// paper's accuracy results and observed confusions (§5.1–5.2).
package corpus

import (
	"fmt"
	"sort"
	"unicode/utf8"
)

// Spec describes one language's generative model.
type Spec struct {
	// Code is the two-letter language code, e.g. "es".
	Code string
	// Name is the English language name, e.g. "Spanish".
	Name string
	// Words is the vocabulary in descending frequency rank; the
	// generator applies a Zipf law over this order. Entries are stored
	// as ISO-8859-1 bytes (converted from the UTF-8 literals below at
	// package initialization).
	Words [][]byte
	// Suffixes are inflectional endings occasionally appended to a
	// sampled word, injecting morphological n-grams.
	Suffixes [][]byte
	// SuffixRate is the probability a sampled word receives a suffix.
	SuffixRate float64
	// SharedRate is the probability a sampled token comes from the
	// shared international pool instead of the language's vocabulary.
	// JRC-Acquis is a parallel corpus: institution names, treaty
	// keywords, latinisms and codes appear untranslated in every
	// language version, which is what compresses the match-count margin
	// between related languages and lets Bloom false positives flip
	// borderline documents (the Table 1 accuracy mechanism).
	SharedRate float64
	// Sibling names a closely related language whose wordforms this
	// language shares (cs↔sk, es↔pt, da↔sv, fi↔et); BorrowRate is the
	// probability a token is drawn from the sibling's vocabulary.
	// Czech and Slovak legal text genuinely share a large fraction of
	// identical high-frequency forms; this is what produced the paper's
	// §5.2 observation that "consistently more Spanish documents were
	// misclassified as Portuguese, and Estonian documents as Finnish".
	Sibling    string
	BorrowRate float64

	// cum is the cumulative Zipf weight table over Words, built once at
	// registration and shared (read-only) by all generators.
	cum []float64
}

// sharedWords is the pan-language token pool: terms EU legal text
// carries untranslated across all 22 language versions.
var sharedWords = [][]byte{}

var sharedCum []float64

func init() {
	for _, w := range []string{
		"eu", "ec", "eec", "euratom", "europol", "eurojust", "eurostat",
		"schengen", "erasmus", "interreg", "tempus", "phare", "sapard",
		"ispa", "natura", "galileo", "leader", "urban", "emas", "reach",
		"euro", "ecu", "nace", "taric", "combined", "nomenclature",
		"acquis", "communautaire", "ad", "hoc", "de", "facto", "mutatis",
		"mutandis", "a", "priori", "in", "vitro", "inter", "alia",
		"kyoto", "doha", "basel", "dublin", "helsinki", "lisboa",
		"maastricht", "amsterdam", "nice", "bologna", "cedefop", "cen",
		"cenelec", "etsi", "iso", "oecd", "unesco", "nato", "gatt", "wto",
	} {
		sharedWords = append(sharedWords, latin1(w))
	}
	sharedCum = buildCumulative(sharedWords)
}

// Languages returns the codes of all modelled languages in sorted
// order — the 10 languages of the paper's evaluation.
func Languages() []string {
	codes := make([]string, 0, len(specs))
	for code := range specs {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	return codes
}

// ByCode returns the Spec for a language code.
func ByCode(code string) (*Spec, error) {
	s, ok := specs[code]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown language %q (have %v)", code, Languages())
	}
	return s, nil
}

// Name returns the English name for a language code, or the code itself
// if unknown.
func Name(code string) string {
	if s, ok := specs[code]; ok {
		return s.Name
	}
	return code
}

// specs is populated by init from the UTF-8 word tables below.
var specs = map[string]*Spec{}

// foldNonLatin1 maps letters outside ISO-8859-1 (e.g. Czech č, ř, š)
// to their closest base letter, matching how such corpora were commonly
// transliterated for 8-bit processing. Letters inside ISO-8859-1 are
// preserved so the alphabet converter sees genuine accented bytes.
var foldNonLatin1 = map[rune]byte{
	'č': 'c', 'Č': 'C',
	'ď': 'd', 'Ď': 'D',
	'ě': 'e', 'Ě': 'E',
	'ľ': 'l', 'Ľ': 'L',
	'ĺ': 'l', 'Ĺ': 'L',
	'ň': 'n', 'Ň': 'N',
	'ř': 'r', 'Ř': 'R',
	'š': 's', 'Š': 'S',
	'ť': 't', 'Ť': 'T',
	'ů': 'u', 'Ů': 'U',
	'ž': 'z', 'Ž': 'Z',
	'ő': 'o', 'ű': 'u',
	'ā': 'a', 'ē': 'e', 'ī': 'i', 'ū': 'u',
	'ą': 'a', 'ę': 'e', 'ė': 'e', 'į': 'i',
	'ś': 's', 'ź': 'z', 'ż': 'z', 'ć': 'c', 'ń': 'n', 'ł': 'l',
}

// latin1 converts a UTF-8 literal to ISO-8859-1 bytes, folding letters
// that ISO-8859-1 cannot represent. It panics on anything else: the
// tables below are static data and must be clean.
func latin1(s string) []byte {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch {
		case r == utf8.RuneError:
			panic(fmt.Sprintf("corpus: invalid UTF-8 in spec literal %q", s))
		case r < 0x100:
			out = append(out, byte(r))
		default:
			b, ok := foldNonLatin1[r]
			if !ok {
				panic(fmt.Sprintf("corpus: rune %q in %q has no ISO-8859-1 folding", r, s))
			}
			out = append(out, b)
		}
	}
	return out
}

// sharedRate is the fraction of tokens drawn from the shared pool. In
// JRC-Acquis roughly one token in six or seven is a name, code, number
// or untranslated term common to all language versions.
const sharedRate = 0.15

func register(code, name string, suffixRate float64, suffixes []string, words []string) {
	s := &Spec{Code: code, Name: name, SuffixRate: suffixRate, SharedRate: sharedRate}
	s.Words = make([][]byte, len(words))
	for i, w := range words {
		s.Words[i] = latin1(w)
	}
	s.Suffixes = make([][]byte, len(suffixes))
	for i, w := range suffixes {
		s.Suffixes[i] = latin1(w)
	}
	s.cum = buildCumulative(s.Words)
	specs[code] = s
}

// wireSiblings connects the related-language pairs after all specs are
// registered. Rates reflect real lexical closeness: Czech/Slovak are
// mutually intelligible, Spanish/Portuguese and Danish/Swedish very
// close, Finnish/Estonian related but farther apart.
func wireSiblings() {
	pair := func(a, b string, rate float64) {
		specs[a].Sibling, specs[a].BorrowRate = b, rate
		specs[b].Sibling, specs[b].BorrowRate = a, rate
	}
	pair("cs", "sk", 0.17)
	pair("es", "pt", 0.14)
	pair("da", "sv", 0.11)
	pair("fi", "et", 0.08)
}

func init() {
	register("en", "English", 0.05,
		[]string{"s", "ed", "ing", "ly", "tion", "ment"},
		[]string{
			"the", "of", "to", "and", "in", "a", "is", "that", "for", "be",
			"by", "shall", "this", "with", "regulation", "member", "states", "on", "as", "not",
			"or", "it", "are", "from", "which", "commission", "european", "council", "directive", "article",
			"such", "has", "have", "an", "may", "should", "their", "any", "its", "at",
			"decision", "measures", "provisions", "market", "products", "within", "union", "treaty", "application", "authorities",
			"committee", "procedure", "community", "accordance", "national", "where", "between", "conditions", "information", "other",
			"than", "under", "all", "been", "will", "these", "when", "also", "adopted", "following",
			"period", "referred", "paragraph", "annex", "concerning", "laid", "down", "rules", "necessary", "appropriate",
			"particular", "account", "taking", "having", "regard", "whereas", "thereof", "amended", "agreement", "countries",
			"third", "state", "law", "case", "court", "justice", "official", "journal", "force", "entry",
			"date", "applicable", "pursuant", "established", "ensure", "order", "certain", "specific", "relevant", "respect",
			"request", "competent", "authority", "financial", "economic", "social", "development", "protection", "environment", "health",
			"safety", "standards", "requirements", "common", "policy", "agricultural", "fisheries", "transport", "energy", "research",
			"technology", "internal", "trade", "customs", "duties", "import", "export", "quota", "aid", "support",
			"programme", "budget", "expenditure", "revenue", "value", "added", "tax", "goods", "services", "persons",
		})

	register("es", "Spanish", 0.07,
		[]string{"s", "es", "ción", "mente", "ado", "ada", "idad"},
		[]string{
			"de", "la", "que", "el", "en", "y", "a", "los", "del", "se",
			"las", "por", "un", "para", "con", "no", "una", "su", "al", "lo",
			"como", "más", "pero", "sus", "le", "ya", "o", "este", "porque", "esta",
			"entre", "cuando", "muy", "sin", "sobre", "también", "hasta", "hay", "donde", "quien",
			"desde", "todo", "nos", "durante", "todos", "uno", "les", "ni", "contra", "otros",
			"ese", "eso", "ante", "ellos", "esto", "antes", "algunos", "unos", "otro", "otras",
			"otra", "tanto", "esa", "estos", "mucho", "cual", "poco", "ella", "estar", "estas",
			"reglamento", "comisión", "europea", "consejo", "directiva", "artículo", "estados", "miembros", "disposiciones", "aplicación",
			"mercado", "productos", "medidas", "procedimiento", "comunidad", "comité", "decisión", "acuerdo", "tratado", "derecho",
			"información", "condiciones", "autoridades", "nacional", "conforme", "presente", "deberá", "deberán", "así", "según",
			"caso", "fecha", "vigor", "diario", "oficial", "apartado", "anexo", "normas", "necesarias", "particular",
			"respecto", "países", "terceros", "protección", "medio", "ambiente", "salud", "seguridad", "política", "común",
			"agrícola", "pesca", "transporte", "energía", "investigación", "desarrollo", "económico", "social", "financiero", "presupuesto",
			"impuesto", "valor", "añadido", "mercancías", "servicios", "personas", "será", "serán", "haya", "sido",
			"dicho", "dicha", "deben", "debe", "puede", "pueden", "mediante", "través", "parte", "partes",
		})

	register("pt", "Portuguese", 0.07,
		[]string{"s", "es", "ção", "mente", "ado", "ada", "idade"},
		[]string{
			"de", "a", "o", "que", "e", "do", "da", "em", "um", "para",
			"é", "com", "não", "uma", "os", "no", "se", "na", "por", "mais",
			"as", "dos", "como", "mas", "foi", "ao", "das", "tem", "à", "seu",
			"sua", "ou", "ser", "quando", "muito", "há", "nos", "já", "está", "também",
			"só", "pelo", "pela", "até", "isso", "ela", "entre", "era", "depois", "sem",
			"mesmo", "aos", "ter", "seus", "quem", "nas", "esse", "eles", "essa", "num",
			"nem", "suas", "meu", "às", "minha", "têm", "numa", "pelos", "elas", "seja",
			"regulamento", "comissão", "europeia", "conselho", "directiva", "artigo", "estados", "membros", "disposições", "aplicação",
			"mercado", "produtos", "medidas", "procedimento", "comunidade", "comité", "decisão", "acordo", "tratado", "direito",
			"informação", "condições", "autoridades", "nacional", "presente", "deverá", "deverão", "assim", "segundo", "termos",
			"caso", "data", "vigor", "jornal", "oficial", "número", "anexo", "normas", "necessárias", "particular",
			"respeito", "países", "terceiros", "protecção", "meio", "ambiente", "saúde", "segurança", "política", "comum",
			"agrícola", "pesca", "transporte", "energia", "investigação", "desenvolvimento", "económico", "social", "financeiro", "orçamento",
			"imposto", "valor", "acrescentado", "mercadorias", "serviços", "pessoas", "será", "serão", "tenha", "sido",
			"dito", "dita", "devem", "deve", "pode", "podem", "mediante", "através", "parte", "partes",
		})

	register("fr", "French", 0.06,
		[]string{"s", "es", "tion", "ment", "és", "ée"},
		[]string{
			"de", "la", "le", "et", "les", "des", "en", "un", "du", "une",
			"que", "est", "pour", "qui", "dans", "a", "par", "plus", "pas", "au",
			"sur", "ne", "se", "ce", "il", "sont", "aux", "avec", "son", "cette",
			"ou", "être", "comme", "mais", "fait", "été", "aussi", "leur", "bien", "ces",
			"peut", "tout", "nous", "sa", "dont", "elle", "deux", "si", "entre", "doit",
			"après", "sans", "autres", "même", "selon", "notamment", "ainsi", "encore", "toute", "leurs",
			"doivent", "lorsque", "celle", "celui", "toutes", "tous", "ceux", "avant", "afin", "lors",
			"règlement", "commission", "européenne", "conseil", "directive", "article", "états", "membres", "dispositions", "application",
			"marché", "produits", "mesures", "procédure", "communauté", "comité", "décision", "accord", "traité", "droit",
			"information", "conditions", "autorités", "national", "présent", "présente", "conformément", "cas", "date", "vigueur",
			"journal", "officiel", "paragraphe", "annexe", "règles", "nécessaires", "particulier", "égard", "pays", "tiers",
			"protection", "environnement", "santé", "sécurité", "politique", "commune", "agricole", "pêche", "transport", "énergie",
			"recherche", "développement", "économique", "social", "financier", "budget", "impôt", "valeur", "ajoutée", "marchandises",
			"services", "personnes", "sera", "seront", "ait", "visé", "visée", "prévu", "prévue", "vertu",
			"titre", "chapitre", "section", "point", "alinéa", "modifié", "modifiée", "relatif", "relative", "concernant",
		})

	register("cs", "Czech", 0.12,
		[]string{"ch", "mi", "ou", "ého", "ých", "um", "ami", "ech", "em", "y"},
		[]string{
			"a", "se", "na", "je", "v", "ze", "s", "z", "do", "o",
			"i", "to", "jako", "za", "by", "podle", "pro", "jsou", "ale", "které",
			"která", "který", "od", "pri", "po", "být", "nebo", "jeho", "az", "tak",
			"také", "muze", "musí", "pokud", "vsak", "jejich", "mezi", "tento", "tato", "toto",
			"této", "techto", "byla", "bylo", "byly", "jiz", "pouze", "dále", "tím", "tedy",
			"clenské", "státy", "komise", "evropské", "rady", "narízení", "smernice", "clánek", "odstavec", "ustanovení",
			"pouzití", "trh", "výrobky", "opatrení", "postup", "spolecenství", "výbor", "rozhodnutí", "dohoda", "smlouva",
			"právo", "informace", "podmínky", "orgány", "vnitrostátní", "uvedené", "dni", "dnem", "platnost", "vstoupí",
			"úrední", "vestník", "príloha", "pravidla", "nezbytná", "zejména", "ohledem", "zeme", "tretí", "ochrana",
			"zivotní", "prostredí", "zdraví", "bezpecnost", "politika", "spolecná", "zemedelství", "rybolov", "doprava", "energie",
			"výzkum", "rozvoj", "hospodárský", "sociální", "financní", "rozpocet", "dan", "hodnota", "pridaná", "zbozí",
			"sluzby", "osoby", "bude", "budou", "mely", "melo", "musejí", "mohou", "prostrednictvím", "cástka",
			"clenských", "státu", "práva", "povinnosti", "souladu", "stanovené", "stanoví", "príslusné", "príslusný", "orgán",
			"predpisy", "pozadavky", "kontrola", "rízení", "úcely", "výjimky", "lhuta", "lhuty", "platné", "znení",
		})

	register("sk", "Slovak", 0.12,
		[]string{"ch", "mi", "ou", "ého", "ých", "om", "ami", "och", "om", "y"},
		[]string{
			"a", "sa", "na", "je", "v", "ze", "s", "z", "do", "o",
			"aj", "to", "ako", "za", "by", "podla", "pre", "sú", "ale", "ktoré",
			"ktorá", "ktorý", "od", "pri", "po", "byt", "alebo", "jeho", "az", "tak",
			"tiez", "môze", "musí", "ak", "vsak", "ich", "medzi", "tento", "táto", "toto",
			"tejto", "týchto", "bola", "bolo", "boli", "uz", "iba", "dalej", "tým", "teda",
			"clenské", "státy", "komisia", "európskej", "rady", "nariadenie", "smernica", "clánok", "odsek", "ustanovenia",
			"pouzitie", "trh", "výrobky", "opatrenia", "postup", "spolocenstvo", "výbor", "rozhodnutie", "dohoda", "zmluva",
			"právo", "informácie", "podmienky", "orgány", "vnútrostátne", "uvedené", "dna", "dnom", "platnost", "nadobúda",
			"úradný", "vestník", "príloha", "pravidlá", "potrebné", "najmä", "ohladom", "krajiny", "tretie", "ochrana",
			"zivotné", "prostredie", "zdravie", "bezpecnost", "politika", "spolocná", "polnohospodárstvo", "rybolov", "doprava", "energia",
			"výskum", "rozvoj", "hospodársky", "sociálne", "financný", "rozpocet", "dan", "hodnota", "pridaná", "tovar",
			"sluzby", "osoby", "bude", "budú", "mali", "malo", "musia", "môzu", "prostredníctvom", "suma",
			"clenských", "státov", "práva", "povinnosti", "súlade", "stanovené", "stanovuje", "príslusné", "príslusný", "orgán",
			"predpisy", "poziadavky", "kontrola", "konanie", "úcely", "výnimky", "lehota", "lehoty", "platné", "znenie",
		})

	register("da", "Danish", 0.08,
		[]string{"en", "et", "er", "erne", "ene", "s", "ede", "ning"},
		[]string{
			"og", "i", "at", "det", "en", "den", "til", "er", "som", "på",
			"de", "med", "af", "for", "ikke", "der", "var", "sig", "men", "et",
			"har", "om", "vi", "havde", "nu", "over", "da", "fra", "du", "ud",
			"sin", "dem", "os", "op", "man", "hvor", "eller", "hvad", "skal", "selv",
			"her", "alle", "vil", "blev", "kunne", "ind", "når", "være", "dog", "noget",
			"ville", "deres", "efter", "ned", "skulle", "denne", "end", "dette", "også", "under",
			"have", "anden", "mine", "alt", "meget", "disse", "hvis", "din", "nogle", "hos",
			"forordning", "kommissionen", "europæiske", "rådet", "direktiv", "artikel", "medlemsstater", "bestemmelser", "anvendelse", "marked",
			"produkter", "foranstaltninger", "procedure", "fællesskabet", "udvalg", "afgørelse", "aftale", "traktat", "ret", "oplysninger",
			"betingelser", "myndigheder", "nationale", "mellem", "såfremt", "nævnte", "dag", "kraft", "træder", "tidende",
			"bilag", "regler", "nødvendige", "navnlig", "hensyn", "lande", "tredjelande", "beskyttelse", "miljø", "sundhed",
			"sikkerhed", "politik", "fælles", "landbrug", "fiskeri", "transport", "energi", "forskning", "udvikling", "økonomisk",
			"sociale", "finansielle", "budget", "afgift", "værdi", "merværdi", "varer", "tjenesteydelser", "personer", "bliver",
			"været", "blive", "mange", "andre", "første", "senest", "inden", "gennem", "således", "øvrige",
			"stk", "nr", "litra", "artikler", "vedtaget", "ændret", "fastsat", "fastsættes", "gælder", "gældende",
		})

	register("sv", "Swedish", 0.08,
		[]string{"en", "et", "er", "erna", "arna", "s", "ade", "ning"},
		[]string{
			"och", "i", "att", "det", "som", "en", "på", "är", "av", "för",
			"med", "till", "den", "har", "de", "inte", "om", "ett", "han", "men",
			"var", "jag", "sig", "från", "vi", "så", "kan", "när", "man", "skulle",
			"nu", "över", "vid", "kunde", "också", "efter", "eller", "sin", "hade", "hur",
			"mot", "där", "alla", "andra", "mycket", "här", "då", "sedan", "ingen", "vara",
			"blir", "under", "ut", "utan", "varit", "hela", "detta", "denna", "dessa", "mellan",
			"bara", "någon", "bli", "upp", "även", "vad", "få", "två", "vill", "finns",
			"förordning", "kommissionen", "europeiska", "rådet", "direktiv", "artikel", "medlemsstater", "bestämmelser", "tillämpning", "marknad",
			"produkter", "åtgärder", "förfarande", "gemenskapen", "kommitté", "beslut", "avtal", "fördraget", "rätt", "uppgifter",
			"villkor", "myndigheter", "nationella", "nämnda", "dag", "kraft", "träder", "tidning", "bilaga", "regler",
			"nödvändiga", "särskilt", "hänsyn", "länder", "tredjeländer", "skydd", "miljö", "hälsa", "säkerhet", "politik",
			"gemensamma", "jordbruk", "fiske", "transport", "energi", "forskning", "utveckling", "ekonomisk", "sociala", "finansiella",
			"budget", "skatt", "värde", "mervärde", "varor", "tjänster", "personer", "enligt", "genom", "ska",
			"skall", "får", "bör", "måste", "punkt", "punkten", "stycket", "antagits", "ändrad", "fastställs",
			"gäller", "gällande", "följande", "första", "fjärde", "tredje", "senast", "inom", "utanför", "övriga",
		})

	register("fi", "Finnish", 0.14,
		[]string{"ssa", "ssä", "sta", "stä", "lla", "llä", "lle", "ksi", "n", "t", "en", "in", "iin", "ista", "issa"},
		[]string{
			"ja", "on", "ei", "että", "se", "hän", "oli", "joka", "mutta", "niin",
			"kuin", "myös", "hänen", "sen", "olla", "ovat", "jos", "kun", "sekä", "vain",
			"mukaan", "tai", "ole", "tämä", "sitä", "voi", "kaikki", "jo", "näin", "kanssa",
			"siitä", "ollut", "nyt", "tässä", "sille", "jonka", "vielä", "mitä", "kuitenkin", "voidaan",
			"olisi", "tulisi", "niiden", "näitä", "tämän", "välillä", "näiden", "jotka", "jossa", "josta",
			"asetus", "komissio", "euroopan", "neuvosto", "direktiivi", "artikla", "jäsenvaltiot", "säännökset", "soveltaminen", "markkinat",
			"tuotteet", "toimenpiteet", "menettely", "yhteisö", "komitea", "päätös", "sopimus", "perustamissopimus", "oikeus", "tiedot",
			"edellytykset", "viranomaiset", "kansallinen", "mainittu", "päivä", "voimaan", "tulee", "virallinen", "lehti", "liite",
			"säännöt", "tarpeelliset", "erityisesti", "huomioon", "ottaen", "maat", "kolmannet", "suojelu", "ympäristö", "terveys",
			"turvallisuus", "politiikka", "yhteinen", "maatalous", "kalastus", "liikenne", "energia", "tutkimus", "kehitys", "taloudellinen",
			"sosiaalinen", "rahoitus", "talousarvio", "vero", "arvo", "lisätty", "tavarat", "palvelut", "henkilöt", "jäsenvaltioiden",
			"jäsenvaltioissa", "annettu", "annetun", "muutettu", "vahvistetaan", "sovelletaan", "koskee", "koskevat", "osalta", "yhteisön",
			"toimet", "ohjelma", "kauden", "aikana", "jälkeen", "ennen", "mennessä", "alkaen", "lukien", "kohta",
			"kohdan", "artiklan", "liitteessä", "määräykset", "vaatimukset", "valvonta", "hallinto", "tarkoitus", "tavoite", "tavoitteet",
		})

	register("et", "Estonian", 0.13,
		[]string{"s", "st", "le", "lt", "ga", "ks", "d", "te", "de", "sse", "ni"},
		[]string{
			"ja", "on", "ei", "et", "ta", "see", "oli", "mis", "aga", "nii",
			"kui", "ka", "tema", "selle", "olla", "nad", "kas", "siis", "ning", "ainult",
			"järgi", "või", "pole", "seda", "võib", "kõik", "juba", "nüüd", "koos", "sellest",
			"olnud", "praegu", "siin", "kelle", "veel", "mida", "siiski", "võidakse", "peaks", "tuleks",
			"nende", "vahel", "oma", "välja", "üle", "pärast", "enne", "kuni", "alates", "kohta",
			"määrus", "komisjon", "euroopa", "nõukogu", "direktiiv", "artikkel", "liikmesriigid", "sätted", "kohaldamine", "turg",
			"tooted", "meetmed", "menetlus", "ühendus", "komitee", "otsus", "leping", "asutamisleping", "õigus", "andmed",
			"tingimused", "asutused", "riiklik", "nimetatud", "päev", "jõustub", "ametlik", "teataja", "lisa", "eeskirjad",
			"vajalikud", "eriti", "arvesse", "võttes", "riigid", "kolmandad", "kaitse", "keskkond", "tervis", "ohutus",
			"poliitika", "ühine", "põllumajandus", "kalandus", "transport", "energia", "teadusuuringud", "areng", "majanduslik", "sotsiaalne",
			"rahandus", "eelarve", "maks", "väärtus", "lisandunud", "kaubad", "teenused", "isikud", "liikmesriikide", "liikmesriikides",
			"vastu", "võetud", "muudetud", "kehtestatakse", "kohaldatakse", "käsitleb", "käsitlevad", "suhtes", "ühenduse", "tegevus",
			"programm", "ajavahemik", "jooksul", "tähtaeg", "punkt", "punkti", "artikli", "lisas", "nõuded", "kontroll",
			"haldus", "eesmärk", "eesmärgid", "kord", "korras", "alusel", "sätestatud", "ette", "nähtud", "asjaomane",
		})

	wireSiblings()
}
