package corpus

import (
	"fmt"
	"math/rand"
)

// Mixed-language document synthesis: deterministic concatenations of
// per-language segments with known byte boundaries, the ground truth
// the segmentation subsystem is evaluated against. Real mixed traffic
// — quoted replies, code-switched chat, bilingual pages — has no
// labelled boundaries; these documents do, byte-exactly, and are fully
// reproducible from their seed.

// MixedConfig describes a mixed-language document set to generate. The
// zero value selects the defaults.
type MixedConfig struct {
	// Languages is the pool segments draw from; nil means all ten of
	// the paper's languages.
	Languages []string
	// Docs is the number of mixed documents (default 20).
	Docs int
	// SegmentsPerDoc is the number of single-language segments per
	// document (default 3). Consecutive segments always differ in
	// language.
	SegmentsPerDoc int
	// WordsPerSegment is the mean segment length in words (default 60;
	// individual segments jitter log-normally like whole documents).
	WordsPerSegment int
	// Seed makes generation reproducible; equal configs generate
	// byte-identical documents.
	Seed int64
}

func (c *MixedConfig) applyDefaults() {
	if len(c.Languages) == 0 {
		c.Languages = Languages()
	}
	if c.Docs <= 0 {
		c.Docs = 20
	}
	if c.SegmentsPerDoc <= 0 {
		c.SegmentsPerDoc = 3
	}
	if c.WordsPerSegment <= 0 {
		c.WordsPerSegment = 60
	}
}

// MixedSegment is one ground-truth region of a mixed document: the
// language of the half-open byte range [Start, End).
type MixedSegment struct {
	Lang  string `json:"lang"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

// MixedDocument is one generated mixed-language document with its
// ground-truth segmentation. Segments tile [0, len(Text)) exactly.
type MixedDocument struct {
	// ID is the document's index in the generated set.
	ID int
	// Text is the ISO-8859-1 document body.
	Text []byte
	// Segments is the ground-truth tiling in order.
	Segments []MixedSegment
}

// GenerateMixed builds the mixed-language document set described by
// cfg. Each document is a seeded concatenation of single-language
// segments produced by the same per-language generators as Generate,
// with the byte boundary of every segment recorded.
func GenerateMixed(cfg MixedConfig) ([]MixedDocument, error) {
	cfg.applyDefaults()
	if len(cfg.Languages) < 2 {
		return nil, fmt.Errorf("corpus: mixed documents need at least 2 languages, have %d", len(cfg.Languages))
	}
	for _, code := range cfg.Languages {
		if _, err := ByCode(code); err != nil {
			return nil, err
		}
	}
	docs := make([]MixedDocument, cfg.Docs)
	for id := 0; id < cfg.Docs; id++ {
		docs[id] = generateMixedDoc(cfg, id)
	}
	return docs, nil
}

// generateMixedDoc builds one document. The language sequence comes
// from a per-document RNG; each segment's text comes from a generator
// seeded per (document, segment), so documents are independent of each
// other and of generation order.
func generateMixedDoc(cfg MixedConfig, id int) MixedDocument {
	rng := rand.New(rand.NewSource(docSeed(cfg.Seed, "mixed", id)))
	doc := MixedDocument{ID: id}
	prev := -1
	for seg := 0; seg < cfg.SegmentsPerDoc; seg++ {
		// Draw a language different from the previous segment's, so
		// every recorded boundary is a genuine language switch.
		pick := rng.Intn(len(cfg.Languages))
		if pick == prev {
			pick = (pick + 1 + rng.Intn(len(cfg.Languages)-1)) % len(cfg.Languages)
		}
		prev = pick
		lang := cfg.Languages[pick]
		spec, _ := ByCode(lang)
		gen := NewGenerator(spec, docSeed(cfg.Seed, "mixed/"+lang, id*1009+seg))
		start := len(doc.Text)
		doc.Text = append(doc.Text, gen.Document(cfg.WordsPerSegment)...)
		doc.Segments = append(doc.Segments, MixedSegment{Lang: lang, Start: start, End: len(doc.Text)})
	}
	return doc
}
