package corpus

import (
	"math"
	"math/rand"
	"sort"
)

// Generator produces documents for one language from its Spec. A
// Generator is deterministic for a given seed and is not safe for
// concurrent use; create one per goroutine (they are cheap — the
// cumulative table is shared per Spec).
type Generator struct {
	spec *Spec
	rng  *rand.Rand
	cum  []float64 // cumulative Zipf weights over spec.Words
	sib  *Spec     // lazily resolved sibling spec
}

// zipfExponent shapes the rank-frequency law. Natural language word
// frequencies follow a Zipf law with exponent near 1; the small offset
// below flattens the very top ranks slightly, as observed in real
// corpora.
const (
	zipfExponent = 1.05
	zipfOffset   = 2.7
)

// buildCumulative computes the cumulative Zipf weights for a word list.
// It runs once per Spec at registration, so concurrent generators share
// an immutable table.
func buildCumulative(words [][]byte) []float64 {
	c := make([]float64, len(words))
	total := 0.0
	for i := range words {
		total += 1.0 / math.Pow(float64(i)+zipfOffset, zipfExponent)
		c[i] = total
	}
	return c
}

// NewGenerator returns a document generator for the language with the
// given seed.
func NewGenerator(spec *Spec, seed int64) *Generator {
	return &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		cum:  spec.cum,
	}
}

// word samples one token: from the shared international pool with
// probability SharedRate, from the sibling language's vocabulary with
// probability BorrowRate, otherwise from the language's own vocabulary,
// always by Zipf rank. The second return value reports whether the
// token is shared (shared tokens are never inflected — they appear
// verbatim in every language version).
func (g *Generator) word() ([]byte, bool) {
	x := g.rng.Float64()
	if x < g.spec.SharedRate {
		return sampleZipf(g.rng, sharedWords, sharedCum), true
	}
	if sib := g.sibling(); sib != nil && x < g.spec.SharedRate+g.spec.BorrowRate {
		return sampleZipf(g.rng, sib.Words, sib.cum), false
	}
	return sampleZipf(g.rng, g.spec.Words, g.cum), false
}

// sibling resolves the related-language spec once.
func (g *Generator) sibling() *Spec {
	if g.spec.Sibling == "" {
		return nil
	}
	if g.sib == nil {
		g.sib = specs[g.spec.Sibling]
	}
	return g.sib
}

func sampleZipf(rng *rand.Rand, words [][]byte, cum []float64) []byte {
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(words) {
		i = len(words) - 1
	}
	return words[i]
}

// appendWord writes one sampled word, possibly inflected, to dst.
func (g *Generator) appendWord(dst []byte, capitalize bool) []byte {
	w, shared := g.word()
	start := len(dst)
	dst = append(dst, w...)
	if !shared && g.rng.Float64() < g.spec.SuffixRate {
		suf := g.spec.Suffixes[g.rng.Intn(len(g.spec.Suffixes))]
		dst = append(dst, suf...)
	}
	if capitalize {
		dst[start] = upperLatin1(dst[start])
	}
	return dst
}

// upperLatin1 upper-cases an ISO-8859-1 letter byte.
func upperLatin1(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return b - 'a' + 'A'
	case b >= 0xE0 && b <= 0xFE && b != 0xF7: // accented lower-case block
		return b - 0x20
	}
	return b
}

// lengthSigma is the log-normal spread of document lengths. Real
// corpora like JRC-Acquis mix multi-page acts with very short notices;
// the mean-preserving log-normal below reproduces that heavy tail, and
// the short documents it produces are precisely the ones Bloom filter
// false positives can flip — the mechanism behind Table 1's accuracy
// degradation at small m and k.
const lengthSigma = 0.6

// Document generates a document of targetWords mean length (log-normal
// distributed, at least one word) as ISO-8859-1 text with sentence
// structure: capitalized sentence-initial words, occasional commas,
// terminating periods. The output is what the paper's preprocessing
// produced: plain text bodies saved to individual files (§5).
func (g *Generator) Document(targetWords int) []byte {
	if targetWords < 1 {
		targetWords = 1
	}
	jitter := math.Exp(lengthSigma*g.rng.NormFloat64() - lengthSigma*lengthSigma/2)
	n := int(float64(targetWords) * jitter)
	if n < 1 {
		n = 1
	}
	// Average ~7 bytes per word incl. separator.
	dst := make([]byte, 0, n*8)
	wordsInSentence := 0
	sentenceLen := g.sentenceLength()
	for i := 0; i < n; i++ {
		capitalize := wordsInSentence == 0
		if !capitalize {
			// Occasional comma, then space.
			if g.rng.Float64() < 0.08 {
				dst = append(dst, ',')
			}
			dst = append(dst, ' ')
		}
		dst = g.appendWord(dst, capitalize)
		wordsInSentence++
		if wordsInSentence >= sentenceLen {
			dst = append(dst, '.')
			if g.rng.Float64() < 0.12 {
				dst = append(dst, '\n')
			} else {
				dst = append(dst, ' ')
			}
			wordsInSentence = 0
			sentenceLen = g.sentenceLength()
		}
	}
	if wordsInSentence > 0 {
		dst = append(dst, '.')
	}
	dst = append(dst, '\n')
	return dst
}

func (g *Generator) sentenceLength() int {
	return 4 + g.rng.Intn(14)
}
