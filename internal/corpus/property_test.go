package corpus

import (
	"testing"
	"testing/quick"
)

// Every generated document must be pure ISO-8859-1 text drawn from the
// classes the alphabet converter understands: letters (plain or
// accented), spaces, newlines and the punctuation the generator emits.
func TestDocumentsAreCleanLatin1(t *testing.T) {
	allowed := func(b byte) bool {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z':
			return true
		case b >= 0xC0 && b != 0xD7 && b != 0xF7: // accented letters
			return true
		case b == ' ', b == '\n', b == '.', b == ',':
			return true
		}
		return false
	}
	for _, code := range Languages() {
		spec, _ := ByCode(code)
		doc := NewGenerator(spec, 99).Document(500)
		for i, b := range doc {
			if !allowed(b) {
				t.Fatalf("%s: byte %#x at offset %d outside the generator's alphabet", code, b, i)
			}
		}
	}
}

// Document generation is a pure function of (spec, seed, length).
func TestDocumentPureFunction(t *testing.T) {
	spec, _ := ByCode("pt")
	prop := func(seed int64, words uint8) bool {
		n := int(words)
		a := NewGenerator(spec, seed).Document(n)
		b := NewGenerator(spec, seed).Document(n)
		return string(a) == string(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Sentences are well-formed: no double spaces, no space before a
// period, text between periods non-empty.
func TestDocumentSentenceStructure(t *testing.T) {
	spec, _ := ByCode("en")
	doc := NewGenerator(spec, 5).Document(400)
	for i := 0; i+1 < len(doc); i++ {
		if doc[i] == ' ' && doc[i+1] == ' ' {
			t.Fatalf("double space at offset %d", i)
		}
		if doc[i] == ' ' && doc[i+1] == '.' {
			t.Fatalf("space before period at offset %d", i)
		}
		if doc[i] == '.' && doc[i+1] == '.' {
			t.Fatalf("empty sentence at offset %d", i)
		}
	}
}

// Sentence-initial capitalization: the first letter after ". " must be
// upper case (plain or accented).
func TestDocumentCapitalization(t *testing.T) {
	spec, _ := ByCode("da")
	doc := NewGenerator(spec, 11).Document(400)
	isUpper := func(b byte) bool {
		return (b >= 'A' && b <= 'Z') || (b >= 0xC0 && b <= 0xDE && b != 0xD7)
	}
	if !isUpper(doc[0]) {
		t.Errorf("document does not start with a capital: %#x", doc[0])
	}
	for i := 0; i+2 < len(doc); i++ {
		if doc[i] == '.' && (doc[i+1] == ' ' || doc[i+1] == '\n') {
			if !isUpper(doc[i+2]) {
				t.Fatalf("sentence at offset %d starts with %q", i+2, doc[i+2])
			}
		}
	}
}

// The shared international pool must appear in every language's output
// at roughly the configured rate.
func TestSharedTokensAppear(t *testing.T) {
	for _, code := range []string{"en", "fi", "cs"} {
		spec, _ := ByCode(code)
		doc := NewGenerator(spec, 3).Document(3000)
		// "euratom" is shared and appears in no language's own list.
		if !containsWord(doc, "euratom") && !containsWord(doc, "schengen") && !containsWord(doc, "eurostat") {
			t.Errorf("%s: no shared-pool tokens in a 3000-word document", code)
		}
	}
}

func containsWord(doc []byte, w string) bool {
	return indexOf(doc, []byte(w)) >= 0
}

func indexOf(s, sub []byte) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := range sub {
			if s[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// Sibling borrowing is symmetric in configuration.
func TestSiblingWiring(t *testing.T) {
	pairs := map[string]string{"cs": "sk", "es": "pt", "da": "sv", "fi": "et"}
	for a, b := range pairs {
		sa, _ := ByCode(a)
		sb, _ := ByCode(b)
		if sa.Sibling != b || sb.Sibling != a {
			t.Errorf("%s/%s sibling wiring broken: %q/%q", a, b, sa.Sibling, sb.Sibling)
		}
		if sa.BorrowRate != sb.BorrowRate {
			t.Errorf("%s/%s borrow rates asymmetric", a, b)
		}
		if sa.BorrowRate <= 0 || sa.BorrowRate >= 0.5 {
			t.Errorf("%s borrow rate %v out of (0,0.5)", a, sa.BorrowRate)
		}
	}
	en, _ := ByCode("en")
	if en.Sibling != "" {
		t.Error("English has a sibling")
	}
}
