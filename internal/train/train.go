// Package train is the streaming, sharded profile trainer: the offline
// preprocessing step of the paper (§2, step 1) rebuilt for production
// scale. Where core.Train consumes a fully materialized corpus.Corpus,
// a Trainer ingests documents incrementally — one Add call, one
// io.Reader, one NDJSON line, or one file of a directory tree at a
// time — and fans the n-gram counting across sharded, mergeable
// accumulators so ingest parallelism never contends on a shared
// counter. Finalize merges the shards and ranks the top-t n-grams per
// language, producing a core.ProfileSet byte-identical to what
// core.Train builds from the same documents: counting is additive, so
// any partition of the stream across shards merges back to the exact
// single-counter totals, and the top-t ranking breaks ties
// deterministically.
//
// Peak memory is bounded by the accumulators (one counter per
// language per shard that saw it, 8 MiB each at the paper's n=4), the
// job queue (a few documents), and one document at a time per source —
// never the corpus.
package train

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/core"
	"bloomlang/internal/ngram"
)

const (
	// readChunk is the AddReader read granularity.
	readChunk = 64 << 10
	// flushGrams is the n-gram batch size the streaming sources hand to
	// a shard in one job (a 128 KiB buffer).
	flushGrams = 32 << 10
	// maxShards caps the default shard count: each shard lazily holds
	// one counter per language it sees (8 MiB at n<=4), so unbounded
	// GOMAXPROCS would trade too much memory for ingest parallelism.
	maxShards = 4
)

// Option configures a Trainer at construction.
type Option func(*options)

type options struct {
	shards int
}

// WithShards sets the number of accumulator shards (and worker
// goroutines); n <= 0 means min(GOMAXPROCS, 4). More shards buy ingest
// parallelism at the cost of one counter per language per shard.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// langAcc is one shard's accumulator for one language.
type langAcc struct {
	counter *ngram.Counter
	docs    int
	bytes   int64
}

// shard owns the accumulators one worker goroutine writes; nothing
// else touches them until Finalize's merge, after the worker exited.
type shard struct {
	accs map[string]*langAcc
}

func (s *shard) acc(lang string, n int) *langAcc {
	a := s.accs[lang]
	if a == nil {
		c, err := ngram.NewCounter(n)
		if err != nil {
			// n was validated at construction; this cannot happen.
			panic(err)
		}
		a = &langAcc{counter: c}
		s.accs[lang] = a
	}
	return a
}

// job is one unit of ingest work: a whole document to extract, or a
// pre-extracted n-gram batch from a streaming source. docs and bytes
// carry the document-count and byte-count deltas for the stats.
type job struct {
	lang  string
	text  []byte
	grams []uint32
	docs  int
	bytes int64
}

// Trainer accumulates per-language n-gram counts from an incremental
// document stream. Add, AddReader, AddNDJSON and AddDir are safe to
// call concurrently from multiple goroutines; Finalize ends ingest and
// produces the profiles. A Trainer is single-use and must end in
// Finalize (or Abort on error paths) — its shard workers run until
// one of the two is called.
type Trainer struct {
	cfg    core.Config
	proto  ngram.Extractor // copied by value per document
	shards []*shard
	jobs   chan job
	wg     sync.WaitGroup
	bufs   sync.Pool // of []uint32 gram batches

	mu     sync.RWMutex
	closed bool

	failMu  sync.Mutex
	failErr error // first mid-document ingest failure; poisons Finalize
}

// New builds a trainer for the given classifier configuration; the
// finalized ProfileSet records cfg (with defaults applied) exactly as
// core.Train would.
func New(cfg core.Config, opts ...Option) (*Trainer, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards <= 0 {
		o.shards = runtime.GOMAXPROCS(0)
		if o.shards > maxShards {
			o.shards = maxShards
		}
	}
	e, err := ngram.NewExtractor(cfg.N)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:   cfg,
		proto: *e,
		jobs:  make(chan job, 2*o.shards),
	}
	t.bufs.New = func() any { return make([]uint32, 0, flushGrams) }
	for i := 0; i < o.shards; i++ {
		s := &shard{accs: make(map[string]*langAcc)}
		t.shards = append(t.shards, s)
		t.wg.Add(1)
		go t.run(s)
	}
	return t, nil
}

// Config returns the effective training configuration.
func (t *Trainer) Config() core.Config { return t.cfg }

// Shards returns the number of accumulator shards.
func (t *Trainer) Shards() int { return len(t.shards) }

// run is one shard's worker loop: it drains the shared job queue into
// the shard's own accumulators, extracting n-grams for whole-document
// jobs with reusable scratch. No lock is ever taken on the hot path —
// each shard's accumulators are private until Finalize.
func (t *Trainer) run(s *shard) {
	defer t.wg.Done()
	e := t.proto
	var codes []alphabet.Code
	var grams []uint32
	for j := range t.jobs {
		a := s.acc(j.lang, t.cfg.N)
		if j.text != nil {
			e.Reset()
			if cap(codes) < len(j.text) {
				codes = make([]alphabet.Code, len(j.text))
			}
			codes = codes[:len(j.text)]
			alphabet.TranslateInto(codes, j.text)
			grams = e.Feed(grams[:0], codes)
			a.counter.AddAll(grams)
		}
		if j.grams != nil {
			a.counter.AddAll(j.grams)
			t.bufs.Put(j.grams[:0])
		}
		a.docs += j.docs
		a.bytes += j.bytes
	}
}

// send enqueues a job, failing after Finalize. The read lock is held
// across the channel send so Finalize cannot close the queue under an
// in-flight sender.
func (t *Trainer) send(j job) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return errors.New("train: trainer already finalized")
	}
	t.jobs <- j
	return nil
}

func checkLang(lang string) error {
	if lang == "" {
		return errors.New("train: empty language label")
	}
	return nil
}

// Add ingests one whole document for lang. The trainer takes ownership
// of doc: the caller must not modify it afterwards.
func (t *Trainer) Add(lang string, doc []byte) error {
	if err := checkLang(lang); err != nil {
		return err
	}
	return t.send(job{lang: lang, text: doc, docs: 1, bytes: int64(len(doc))})
}

// AddReader ingests one document for lang streamed from r in bounded
// chunks: the document is never buffered whole. The sliding-window
// extractor runs in the caller, so chunk boundaries produce exactly
// the n-grams a contiguous read would.
func (t *Trainer) AddReader(lang string, r io.Reader) error {
	if err := checkLang(lang); err != nil {
		return err
	}
	e := t.proto
	e.Reset()
	buf := make([]byte, readChunk)
	codes := make([]alphabet.Code, readChunk)
	grams := t.bufs.Get().([]uint32)
	var total int64
	flushed := false
	for {
		n, err := r.Read(buf)
		if n > 0 {
			total += int64(n)
			codes = codes[:n]
			alphabet.TranslateInto(codes, buf[:n])
			grams = e.Feed(grams, codes)
			if len(grams) >= flushGrams {
				if serr := t.send(job{lang: lang, grams: grams}); serr != nil {
					if flushed {
						// Earlier batches of this document are already
						// counted; mark the trainer poisoned like the
						// read-error path below.
						return t.fail(serr)
					}
					return serr
				}
				grams = t.bufs.Get().([]uint32)
				flushed = true
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.bufs.Put(grams[:0])
			rerr := fmt.Errorf("train: reading %s document: %w", lang, err)
			if !flushed {
				// Nothing of this document reached the accumulators;
				// the caller may skip it and keep training.
				return rerr
			}
			// Batches already flushed cannot be recalled from the
			// accumulators, so the whole trainer is poisoned: Finalize
			// will refuse to build profiles from partial counts.
			return t.fail(rerr)
		}
	}
	// The final (possibly empty) batch carries the document's stats.
	return t.send(job{lang: lang, grams: grams, docs: 1, bytes: total})
}

// fail records the first mid-document failure and returns err.
func (t *Trainer) fail(err error) error {
	t.failMu.Lock()
	if t.failErr == nil {
		t.failErr = err
	}
	t.failMu.Unlock()
	return err
}

// Abort ends ingest and stops the shard workers without the merge and
// ranking work of Finalize — the cheap shutdown for error paths.
// Abort is idempotent and a no-op after Finalize. Every Trainer must
// end in exactly one Finalize or at least one Abort; a trainer
// abandoned without either leaks its worker goroutines and
// accumulator memory.
func (t *Trainer) Abort() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.jobs)
	t.wg.Wait()
}

// LangStats describes one language's ingested training data.
type LangStats struct {
	// Docs is the number of training documents ingested.
	Docs int `json:"docs"`
	// Bytes is the total raw document bytes ingested.
	Bytes int64 `json:"bytes"`
	// Grams is the total number of n-grams counted.
	Grams uint64 `json:"ngrams"`
}

// Stats summarizes a finalized training run; the registry persists it
// in the version manifest.
type Stats struct {
	// Languages maps language code to its ingest stats.
	Languages map[string]LangStats `json:"languages"`
	// Docs is the total document count across languages.
	Docs int `json:"docs"`
	// Bytes is the total raw byte count across languages.
	Bytes int64 `json:"bytes"`
	// Grams is the total n-gram count across languages.
	Grams uint64 `json:"ngrams"`
}

// Finalize ends ingest, merges the shards, and ranks each language's
// top-t n-grams into a ProfileSet identical to what core.Train builds
// from the same documents. All Add/AddReader/AddNDJSON/AddDir calls
// must have returned before Finalize starts (concurrent ingest is
// fine; ingest concurrent with Finalize is not). The trainer cannot
// be reused afterwards. If any document failed after part of it
// reached the accumulators, Finalize refuses to build profiles.
func (t *Trainer) Finalize() (*core.ProfileSet, Stats, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, Stats{}, errors.New("train: trainer already finalized")
	}
	t.closed = true
	t.mu.Unlock()
	close(t.jobs)
	t.wg.Wait()

	t.failMu.Lock()
	failErr := t.failErr
	t.failMu.Unlock()
	if failErr != nil {
		return nil, Stats{}, fmt.Errorf("train: a document failed mid-ingest, refusing to build profiles from partial counts: %w", failErr)
	}

	merged := make(map[string]*langAcc)
	for _, s := range t.shards {
		for lang, a := range s.accs {
			m := merged[lang]
			if m == nil {
				merged[lang] = a
				continue
			}
			if err := m.counter.Merge(a.counter); err != nil {
				return nil, Stats{}, err
			}
			m.docs += a.docs
			m.bytes += a.bytes
		}
	}
	if len(merged) == 0 {
		return nil, Stats{}, errors.New("train: no training documents ingested")
	}
	langs := make([]string, 0, len(merged))
	for lang := range merged {
		langs = append(langs, lang)
	}
	sort.Strings(langs)

	ps := &core.ProfileSet{Config: t.cfg}
	stats := Stats{Languages: make(map[string]LangStats, len(langs))}
	for _, lang := range langs {
		a := merged[lang]
		ps.Profiles = append(ps.Profiles, ngram.BuildProfile(lang, a.counter, t.cfg.TopT))
		ls := LangStats{Docs: a.docs, Bytes: a.bytes, Grams: a.counter.Total()}
		stats.Languages[lang] = ls
		stats.Docs += ls.Docs
		stats.Bytes += ls.Bytes
		stats.Grams += ls.Grams
	}
	return ps, stats, nil
}
