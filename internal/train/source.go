package train

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bloomlang/internal/core"
)

// maxNDJSONLine bounds one NDJSON document line (16 MiB).
const maxNDJSONLine = 16 << 20

// ndjsonDoc is one training line: {"lang": "es", "text": "..."}.
// "language" is accepted as an alias for "lang".
type ndjsonDoc struct {
	Lang     string `json:"lang"`
	Language string `json:"language"`
	Text     string `json:"text"`
}

// AddNDJSON ingests newline-delimited JSON documents of the form
// {"lang": "es", "text": "..."} (blank lines skipped), holding one
// line in memory at a time. It is the bulk-ingest mirror of the
// serving subsystem's /stream wire format, with a language label
// added.
func (t *Trainer) AddNDJSON(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxNDJSONLine)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var doc ndjsonDoc
		if err := json.Unmarshal(line, &doc); err != nil {
			return fmt.Errorf("train: ndjson line %d: %w", lineno, err)
		}
		lang := doc.Lang
		if lang == "" {
			lang = doc.Language
		}
		if lang == "" {
			return fmt.Errorf("train: ndjson line %d: missing \"lang\"", lineno)
		}
		if err := t.Add(lang, []byte(doc.Text)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return fmt.Errorf("train: ndjson line %d exceeds %d bytes", lineno+1, maxNDJSONLine)
		}
		return fmt.Errorf("train: reading ndjson: %w", err)
	}
	return nil
}

// AddDir ingests the training split of a corpus directory tree in the
// cmd/corpusgen layout (root/<lang>/train/*.txt), streaming one file
// at a time — the corpus never materializes in memory. Language
// directories without a train split are skipped.
func (t *Trainer) AddDir(root string) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("train: reading %s: %w", root, err)
	}
	ingested := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		lang := e.Name()
		dir := filepath.Join(root, lang, "train")
		files, err := os.ReadDir(dir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("train: reading %s: %w", dir, err)
		}
		names := make([]string, 0, len(files))
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".txt") {
				continue
			}
			names = append(names, f.Name())
		}
		sort.Strings(names)
		for _, name := range names {
			if err := t.addFile(lang, filepath.Join(dir, name)); err != nil {
				return err
			}
			ingested++
		}
	}
	if ingested == 0 {
		return fmt.Errorf("train: no training documents under %s", root)
	}
	return nil
}

func (t *Trainer) addFile(lang, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.AddReader(lang, f)
}

// NDJSON trains profiles from a newline-delimited JSON stream in one
// call; see (*Trainer).AddNDJSON for the line format.
func NDJSON(cfg core.Config, r io.Reader, opts ...Option) (*core.ProfileSet, Stats, error) {
	t, err := New(cfg, opts...)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := t.AddNDJSON(r); err != nil {
		t.Abort()
		return nil, Stats{}, err
	}
	return t.Finalize()
}

// Dir trains profiles from a corpus directory tree's training split in
// one call; see (*Trainer).AddDir for the layout.
func Dir(cfg core.Config, root string, opts ...Option) (*core.ProfileSet, Stats, error) {
	t, err := New(cfg, opts...)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := t.AddDir(root); err != nil {
		t.Abort()
		return nil, Stats{}, err
	}
	return t.Finalize()
}
