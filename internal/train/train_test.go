package train_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"iter"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/iotest"

	"bloomlang/internal/core"
	"bloomlang/internal/corpus"
	"bloomlang/internal/train"
)

var (
	fixOnce sync.Once
	fixCorp *corpus.Corpus
	fixErr  error
)

func testCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp, fixErr = corpus.Generate(corpus.Config{
			Languages:       []string{"en", "es", "fi", "pt"},
			DocsPerLanguage: 24,
			WordsPerDoc:     120,
			TrainFraction:   0.5,
			Seed:            7,
		})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixCorp
}

// trainDocs yields every (lang, doc) pair of the corpus training split.
func trainDocs(corp *corpus.Corpus) iter.Seq2[string, []byte] {
	return func(yield func(string, []byte) bool) {
		for _, lang := range corp.Languages {
			for _, doc := range corp.Train[lang] {
				if !yield(lang, doc.Text) {
					return
				}
			}
		}
	}
}

// serialize renders a profile set to its canonical NGPS bytes.
func serialize(t testing.TB, ps *core.ProfileSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ps.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamedEqualsCoreTrain is the acceptance criterion: profiles
// built by the streaming sharded trainer are byte-identical to
// core.Train on the same documents, across shard counts and configs.
func TestStreamedEqualsCoreTrain(t *testing.T) {
	corp := testCorpus(t)
	for _, cfg := range []core.Config{
		{},
		{N: 3, TopT: 800},
		{N: 5, TopT: 200}, // map-backed counters
	} {
		want, err := core.Train(cfg, corp)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := serialize(t, want)
		for _, shards := range []int{1, 2, 4} {
			tr, err := train.New(cfg, train.WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			for lang, doc := range trainDocs(corp) {
				if err := tr.Add(lang, doc); err != nil {
					t.Fatal(err)
				}
			}
			ps, stats, err := tr.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			if got := serialize(t, ps); !bytes.Equal(got, wantBytes) {
				t.Errorf("cfg %+v shards=%d: streamed profiles differ from core.Train (%d vs %d bytes)",
					cfg, shards, len(got), len(wantBytes))
			}
			if stats.Docs != 4*12 {
				t.Errorf("shards=%d: stats.Docs = %d, want %d", shards, stats.Docs, 4*12)
			}
			for _, lang := range corp.Languages {
				ls := stats.Languages[lang]
				if ls.Docs != 12 || ls.Bytes == 0 || ls.Grams == 0 {
					t.Errorf("shards=%d: degenerate stats for %s: %+v", shards, lang, ls)
				}
			}
		}
	}
}

// TestNDJSONEqualsCoreTrain streams the training split through the
// NDJSON source and checks the result against core.TrainFromTexts on
// the same documents — without the corpus ever being in the trainer's
// memory. The baseline consumes the texts as they come out of the JSON
// round-trip (NDJSON is UTF-8; raw ISO-8859-1 high bytes do not
// survive encoding), so both sides see byte-identical documents.
func TestNDJSONEqualsCoreTrain(t *testing.T) {
	corp := testCorpus(t)
	var ndjson bytes.Buffer
	texts := make(map[string][][]byte)
	for lang, doc := range trainDocs(corp) {
		line, err := json.Marshal(map[string]string{"lang": lang, "text": string(doc)})
		if err != nil {
			t.Fatal(err)
		}
		ndjson.Write(line)
		ndjson.WriteByte('\n')
		var rt struct {
			Text string `json:"text"`
		}
		if err := json.Unmarshal(line, &rt); err != nil {
			t.Fatal(err)
		}
		texts[lang] = append(texts[lang], []byte(rt.Text))
	}
	want, err := core.TrainFromTexts(core.Config{}, texts)
	if err != nil {
		t.Fatal(err)
	}
	ps, stats, err := train.NDJSON(core.Config{}, &ndjson, train.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, ps), serialize(t, want)) {
		t.Error("NDJSON-trained profiles differ from core.TrainFromTexts")
	}
	if stats.Docs != 4*12 || stats.Bytes == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestDirEqualsCoreTrain round-trips the corpus through the on-disk
// layout and streams it back file by file.
func TestDirEqualsCoreTrain(t *testing.T) {
	corp := testCorpus(t)
	root := t.TempDir()
	if err := corp.WriteDir(root); err != nil {
		t.Fatal(err)
	}
	want, err := core.Train(core.Config{}, corp)
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := train.Dir(core.Config{}, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, ps), serialize(t, want)) {
		t.Error("directory-trained profiles differ from core.Train")
	}
}

// TestAddReaderChunksMatchAdd feeds the same document whole and in
// adversarially small chunks; n-grams must not be lost or duplicated
// at chunk boundaries.
func TestAddReaderChunksMatchAdd(t *testing.T) {
	corp := testCorpus(t)
	doc := corp.Train["es"][0].Text

	whole, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Add("es", doc); err != nil {
		t.Fatal(err)
	}
	wantPS, wantStats, err := whole.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	chunked, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := chunked.AddReader("es", iotest.OneByteReader(bytes.NewReader(doc))); err != nil {
		t.Fatal(err)
	}
	gotPS, gotStats, err := chunked.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, gotPS), serialize(t, wantPS)) {
		t.Error("chunked AddReader profiles differ from whole-document Add")
	}
	if gotStats.Docs != wantStats.Docs || gotStats.Bytes != wantStats.Bytes || gotStats.Grams != wantStats.Grams {
		t.Errorf("chunked stats %+v, want %+v", gotStats, wantStats)
	}
	if gotStats.Docs != 1 || gotStats.Bytes != int64(len(doc)) {
		t.Errorf("chunked stats = %+v", gotStats)
	}
}

// TestConcurrentAdd hammers Add from many goroutines; under -race this
// sweeps the ingest path, and the merged result must still match the
// sequential baseline.
func TestConcurrentAdd(t *testing.T) {
	corp := testCorpus(t)
	want, err := core.Train(core.Config{}, corp)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := train.New(core.Config{}, train.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, lang := range corp.Languages {
		wg.Add(1)
		go func(lang string) {
			defer wg.Done()
			for _, doc := range corp.Train[lang] {
				if err := tr.Add(lang, doc.Text); err != nil {
					t.Error(err)
					return
				}
			}
		}(lang)
	}
	wg.Wait()
	ps, _, err := tr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, ps), serialize(t, want)) {
		t.Error("concurrently-ingested profiles differ from core.Train")
	}
}

func TestTrainerErrors(t *testing.T) {
	tr, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("", []byte("x")); err == nil {
		t.Error("empty language accepted")
	}
	if _, _, err := tr.Finalize(); err == nil {
		t.Error("empty trainer finalized without error")
	}
	if err := tr.Add("en", []byte("hello world")); err == nil {
		t.Error("Add after Finalize accepted")
	}
	if _, _, err := tr.Finalize(); err == nil {
		t.Error("double Finalize accepted")
	}

	if _, err := train.New(core.Config{N: 99}); err == nil {
		t.Error("invalid config accepted")
	}
}

// failingReader yields n bytes of 'a' then fails.
type failingReader struct{ n int }

func (r *failingReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, fmt.Errorf("disk on fire")
	}
	k := len(p)
	if k > r.n {
		k = r.n
	}
	for i := 0; i < k; i++ {
		p[i] = 'a'
	}
	r.n -= k
	return k, nil
}

// TestAddReaderFailureAfterFlushPoisonsTrainer: once part of a
// document has reached the accumulators, a read failure must poison
// the trainer — Finalize refuses to build profiles from partial
// counts instead of silently shipping them.
func TestAddReaderFailureAfterFlushPoisonsTrainer(t *testing.T) {
	tr, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	// 200 KiB forces at least one gram-batch flush before the failure.
	if err := tr.AddReader("en", &failingReader{n: 200 << 10}); err == nil {
		t.Fatal("failing reader ingested without error")
	}
	if err := tr.Add("en", []byte("the quick brown fox jumps over the lazy dog")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Finalize(); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("Finalize after partial ingest = %v, want refusal", err)
	}
}

// TestAddReaderFailureBeforeFlushIsRecoverable: a document that fails
// before anything was flushed leaves no trace, so training continues.
func TestAddReaderFailureBeforeFlushIsRecoverable(t *testing.T) {
	tr, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddReader("en", &failingReader{n: 100}); err == nil {
		t.Fatal("failing reader ingested without error")
	}
	if err := tr.Add("en", []byte("the quick brown fox jumps over the lazy dog")); err != nil {
		t.Fatal(err)
	}
	ps, stats, err := tr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Profiles) != 1 || stats.Docs != 1 {
		t.Fatalf("recovered trainer produced %d profiles, %d docs", len(ps.Profiles), stats.Docs)
	}
}

// TestAbort: the cheap error-path shutdown is idempotent, composes
// with Finalize in either order, and forecloses further ingest.
func TestAbort(t *testing.T) {
	tr, err := train.New(core.Config{}, train.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("en", []byte("the quick brown fox jumps over the lazy dog")); err != nil {
		t.Fatal(err)
	}
	tr.Abort()
	tr.Abort() // idempotent
	if err := tr.Add("en", []byte("more")); err == nil {
		t.Error("Add after Abort accepted")
	}
	if _, _, err := tr.Finalize(); err == nil {
		t.Error("Finalize after Abort succeeded")
	}

	tr2, err := train.New(core.Config{}, train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Add("en", []byte("the quick brown fox jumps over the lazy dog")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr2.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr2.Abort() // no-op after Finalize
}

func TestNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad json", "{not json}\n", "line 1"},
		{"missing lang", `{"text":"hello"}` + "\n", `missing "lang"`},
	}
	for _, c := range cases {
		_, _, err := train.NDJSON(core.Config{}, strings.NewReader(c.in), train.WithShards(1))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// "language" is accepted as an alias for "lang".
	in := `{"language":"en","text":"the quick brown fox jumps over the lazy dog"}` + "\n"
	ps, _, err := train.NDJSON(core.Config{}, strings.NewReader(in), train.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Profiles) != 1 || ps.Profiles[0].Language != "en" {
		t.Errorf("alias ingest produced %+v", ps.Profiles)
	}
}

func TestDirErrors(t *testing.T) {
	if _, _, err := train.Dir(core.Config{}, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory accepted")
	}
	if _, _, err := train.Dir(core.Config{}, t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestShardsDefaultAndOption(t *testing.T) {
	tr, err := train.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() < 1 || tr.Shards() > 4 {
		t.Errorf("default shards = %d, want 1..4", tr.Shards())
	}
	if _, _, err := tr.Finalize(); err == nil {
		t.Error("empty trainer finalized without error")
	}
	tr2, err := train.New(core.Config{}, train.WithShards(7))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Shards() != 7 {
		t.Errorf("shards = %d, want 7", tr2.Shards())
	}
	tr2.Finalize()
}

func ExampleTrainer() {
	tr, _ := train.New(core.Config{TopT: 100}, train.WithShards(2))
	tr.Add("en", []byte("the quick brown fox jumps over the lazy dog"))
	tr.Add("es", []byte("el veloz zorro marron salta sobre el perro perezoso"))
	ps, stats, _ := tr.Finalize()
	fmt.Println(len(ps.Profiles), "profiles from", stats.Docs, "documents")
	// Output: 2 profiles from 2 documents
}
