package ctrank

import (
	"testing"

	"bloomlang/internal/corpus"
)

func miniClassifier(t testing.TB) (*Classifier, *corpus.Corpus) {
	t.Helper()
	cfg := corpus.Config{
		Languages:       []string{"en", "fi", "fr"},
		DocsPerLanguage: 20,
		WordsPerDoc:     150,
		TrainFraction:   0.3,
		Seed:            3,
	}
	corp, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TrainCorpus(DefaultConfig(), corp)
	if err != nil {
		t.Fatal(err)
	}
	return c, corp
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MaxN != 5 || cfg.ProfileSize != 400 {
		t.Errorf("DefaultConfig = %+v, want Cavnar-Trenkle 5/400", cfg)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(DefaultConfig(), nil); err == nil {
		t.Error("Train with no languages succeeded")
	}
	if _, err := Train(DefaultConfig(), map[string][][]byte{"en": nil}); err == nil {
		t.Error("Train with empty language succeeded")
	}
}

func TestLanguagesSorted(t *testing.T) {
	c, _ := miniClassifier(t)
	langs := c.Languages()
	want := []string{"en", "fi", "fr"}
	for i := range want {
		if langs[i] != want[i] {
			t.Fatalf("Languages() = %v, want %v", langs, want)
		}
	}
}

func TestClassifyAccuracy(t *testing.T) {
	c, corp := miniClassifier(t)
	correct, total := 0, 0
	for _, lang := range corp.Languages {
		for _, d := range corp.Test[lang] {
			r := c.Classify(d.Text)
			if r.BestLanguage(c.Languages()) == lang {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("accuracy %.2f below 0.9 on easy 3-language corpus", acc)
	}
}

func TestClassifyEmptyDocument(t *testing.T) {
	c, _ := miniClassifier(t)
	r := c.Classify(nil)
	if r.Best != -1 {
		t.Errorf("empty doc Best = %d, want -1", r.Best)
	}
	if r.BestLanguage(c.Languages()) != "" {
		t.Error("empty doc has a language")
	}
	r2 := c.Classify([]byte("12345 678 ---"))
	if r2.Best != -1 {
		t.Error("letterless doc classified")
	}
}

func TestDistancesOrdered(t *testing.T) {
	c, corp := miniClassifier(t)
	doc := corp.Test["fi"][0].Text
	r := c.Classify(doc)
	fiIdx := -1
	for i, l := range c.Languages() {
		if l == "fi" {
			fiIdx = i
		}
	}
	for i, d := range r.Distances {
		if i != fiIdx && d <= r.Distances[fiIdx] {
			t.Errorf("distance to %s (%d) <= distance to fi (%d)", c.Languages()[i], d, r.Distances[fiIdx])
		}
	}
}

func TestAccumulatePadding(t *testing.T) {
	counts := map[string]int{}
	accumulate(counts, []byte("ab"), 3)
	// Padded token "_ab_": 1-grams _,a,b,_ ; 2-grams _a,ab,b_ ; 3-grams _ab,ab_.
	for _, want := range []string{"_", "a", "b", "_a", "ab", "b_", "_ab", "ab_"} {
		if counts[want] == 0 {
			t.Errorf("missing n-gram %q", want)
		}
	}
	if counts["_"] != 2 {
		t.Errorf("count of padding gram = %d, want 2", counts["_"])
	}
}

func TestAccumulateCaseFolds(t *testing.T) {
	a := map[string]int{}
	b := map[string]int{}
	accumulate(a, []byte("Hello"), 3)
	accumulate(b, []byte("hello"), 3)
	if len(a) != len(b) {
		t.Fatalf("case folding broken: %d vs %d grams", len(a), len(b))
	}
	for g, n := range a {
		if b[g] != n {
			t.Errorf("gram %q: %d vs %d", g, n, b[g])
		}
	}
}

func TestAccumulateSingleLetterTokens(t *testing.T) {
	// Single-letter words ("a", Spanish "y") are real function words and
	// must contribute padded n-grams: "_a_" etc.
	counts := map[string]int{}
	accumulate(counts, []byte("a"), 3)
	for _, want := range []string{"_a", "a_", "_a_"} {
		if counts[want] == 0 {
			t.Errorf("missing n-gram %q from single-letter token", want)
		}
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	counts := map[string]int{"zz": 5, "aa": 5, "mm": 5}
	r := rank(counts, 2)
	if _, ok := r["aa"]; !ok {
		t.Error("rank dropped lexicographically-first tie")
	}
	if r["aa"] != 0 {
		t.Errorf("rank[aa] = %d, want 0", r["aa"])
	}
	if _, ok := r["zz"]; ok {
		t.Error("rank kept lexicographically-last tie beyond cap")
	}
}

func TestLetterFolding(t *testing.T) {
	cases := map[byte]byte{
		'a': 'a', 'Z': 'z', '0': 0, ' ': 0, ',': 0,
		0xC9: 0xE9, // É -> é
		0xE9: 0xE9, // é stays
		0xD7: 0,    // multiplication sign
		0xF7: 0,    // division sign
	}
	for in, want := range cases {
		if got := letter(in); got != want {
			t.Errorf("letter(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

func TestMeasure(t *testing.T) {
	c, corp := miniClassifier(t)
	docs := corp.TestDocuments("")
	rep := c.Measure(docs)
	if rep.Docs != len(docs) {
		t.Errorf("Docs = %d, want %d", rep.Docs, len(docs))
	}
	if rep.MBPerSec() <= 0 {
		t.Error("throughput not positive")
	}
	if rep.Accuracy() < 0.9 {
		t.Errorf("measured accuracy %.2f below 0.9", rep.Accuracy())
	}
	var zero ThroughputReport
	if zero.MBPerSec() != 0 || zero.Accuracy() != 0 {
		t.Error("zero report must give zero rates")
	}
}

func BenchmarkClassify10KB(b *testing.B) {
	cfg := corpus.Config{
		Languages:       []string{"en", "fi", "fr", "es", "pt", "da", "sv", "cs", "sk", "et"},
		DocsPerLanguage: 4,
		WordsPerDoc:     1300,
		TrainFraction:   0.5,
		Seed:            3,
	}
	corp, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := TrainCorpus(DefaultConfig(), corp)
	if err != nil {
		b.Fatal(err)
	}
	doc := corp.Test["en"][0].Text
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(doc)
	}
}
