// Package ctrank implements the classic n-gram rank-order text
// categorizer of Cavnar & Trenkle, "N-Gram-Based Text Categorization"
// (SDAIR-94) — the algorithm behind Mguesser, the optimized software
// baseline the paper measures at 5.5 MB/sec on a 2.4 GHz Opteron
// (§5.5, Table 4).
//
// Unlike the Bloom-filter classifier, which tests fixed-length n-grams
// for set membership, Cavnar–Trenkle builds a rank-ordered profile of
// the most frequent n-grams of lengths 1..MaxN (padded per word) and
// classifies by the "out-of-place" distance between the document's
// profile and each language profile. It does strictly more work per
// input byte — multi-order extraction, per-document ranking, rank
// comparisons — which is why it sits orders of magnitude below the
// hardware design in Table 4.
package ctrank

import (
	"fmt"
	"sort"
	"time"

	"bloomlang/internal/corpus"
)

// Config holds the categorizer parameters.
type Config struct {
	// MaxN is the longest n-gram collected; Cavnar–Trenkle use 1..5.
	MaxN int
	// ProfileSize is the number of top-ranked n-grams kept per profile;
	// the original paper found 400 sufficient ("top 300 or so" for
	// language identification).
	ProfileSize int
}

// DefaultConfig returns the original paper's parameters.
func DefaultConfig() Config {
	return Config{MaxN: 5, ProfileSize: 400}
}

func (c *Config) applyDefaults() {
	if c.MaxN <= 0 {
		c.MaxN = 5
	}
	if c.ProfileSize <= 0 {
		c.ProfileSize = 400
	}
}

// Classifier holds the trained language profiles.
type Classifier struct {
	cfg      Config
	langs    []string
	profiles []map[string]int // n-gram -> rank (0 = most frequent)
}

// Train builds rank profiles for every language from training texts.
func Train(cfg Config, texts map[string][][]byte) (*Classifier, error) {
	cfg.applyDefaults()
	if len(texts) == 0 {
		return nil, fmt.Errorf("ctrank: no training languages")
	}
	langs := make([]string, 0, len(texts))
	for lang := range texts {
		langs = append(langs, lang)
	}
	sort.Strings(langs)
	c := &Classifier{cfg: cfg}
	for _, lang := range langs {
		if len(texts[lang]) == 0 {
			return nil, fmt.Errorf("ctrank: language %q has no training documents", lang)
		}
		counts := make(map[string]int)
		for _, text := range texts[lang] {
			accumulate(counts, text, cfg.MaxN)
		}
		c.langs = append(c.langs, lang)
		c.profiles = append(c.profiles, rank(counts, cfg.ProfileSize))
	}
	return c, nil
}

// TrainCorpus trains from a generated corpus's training split.
func TrainCorpus(cfg Config, corp *corpus.Corpus) (*Classifier, error) {
	texts := make(map[string][][]byte, len(corp.Languages))
	for _, lang := range corp.Languages {
		texts[lang] = corp.TrainTexts(lang)
	}
	return Train(cfg, texts)
}

// Languages returns the trained language codes in distance-vector order.
func (c *Classifier) Languages() []string { return c.langs }

// accumulate tokenizes text into letter runs, pads each token with a
// leading and trailing blank (Cavnar–Trenkle's word marker), and counts
// all n-grams of lengths 1..maxN.
func accumulate(counts map[string]int, text []byte, maxN int) {
	// Reused padded-token buffer.
	tok := make([]byte, 0, 64)
	flush := func() {
		if len(tok) == 0 {
			return
		}
		padded := append(tok, '_')
		for n := 1; n <= maxN; n++ {
			for i := 0; i+n <= len(padded); i++ {
				counts[string(padded[i:i+n])]++
			}
		}
		tok = tok[:0]
	}
	for _, b := range text {
		l := letter(b)
		if l == 0 {
			flush()
			continue
		}
		if len(tok) == 0 {
			tok = append(tok, '_')
		}
		tok = append(tok, l)
	}
	flush()
}

// letter folds an ISO-8859-1 byte to a lower-case letter, or 0 for
// non-letters. Mguesser operates on 8-bit text the same way.
func letter(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return b
	case b >= 'A' && b <= 'Z':
		return b - 'A' + 'a'
	case b >= 0xC0 && b <= 0xDE && b != 0xD7:
		return b + 0x20 // accented upper -> accented lower
	case b >= 0xDF && b != 0xF7:
		return b
	}
	return 0
}

// rank converts a count map into a rank map of the top n entries, ties
// broken lexicographically for determinism.
func rank(counts map[string]int, n int) map[string]int {
	type kv struct {
		g string
		c int
	}
	entries := make([]kv, 0, len(counts))
	for g, c := range counts {
		entries = append(entries, kv{g, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].c != entries[j].c {
			return entries[i].c > entries[j].c
		}
		return entries[i].g < entries[j].g
	})
	if len(entries) > n {
		entries = entries[:n]
	}
	ranks := make(map[string]int, len(entries))
	for i, e := range entries {
		ranks[e.g] = i
	}
	return ranks
}

// Result is a classification outcome with per-language out-of-place
// distances (lower is better), index-aligned with Languages().
type Result struct {
	Distances []int
	Best      int
}

// BestLanguage returns the winning language code, or "" if the document
// produced no n-grams.
func (r Result) BestLanguage(langs []string) string {
	if r.Best < 0 || r.Best >= len(langs) {
		return ""
	}
	return langs[r.Best]
}

// Classify computes the document's rank profile and returns the
// out-of-place distance to every language profile.
func (c *Classifier) Classify(doc []byte) Result {
	counts := make(map[string]int, 1024)
	accumulate(counts, doc, c.cfg.MaxN)
	docRanks := rank(counts, c.cfg.ProfileSize)
	r := Result{Distances: make([]int, len(c.profiles)), Best: -1}
	if len(docRanks) == 0 {
		for i := range r.Distances {
			r.Distances[i] = -1
		}
		return r
	}
	maxPenalty := c.cfg.ProfileSize
	for i, prof := range c.profiles {
		d := 0
		for g, dr := range docRanks {
			if pr, ok := prof[g]; ok {
				if dr > pr {
					d += dr - pr
				} else {
					d += pr - dr
				}
			} else {
				d += maxPenalty
			}
		}
		r.Distances[i] = d
		if r.Best == -1 || d < r.Distances[r.Best] {
			r.Best = i
		}
	}
	return r
}

// ThroughputReport is a measured classification run, for Table 4.
type ThroughputReport struct {
	Bytes   int64
	Elapsed time.Duration
	Docs    int
	Correct int
}

// MBPerSec returns throughput in MB/sec (2^20 bytes).
func (r ThroughputReport) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// Accuracy returns the fraction of documents classified correctly.
func (r ThroughputReport) Accuracy() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Docs)
}

// Measure classifies documents sequentially — Mguesser is a
// single-threaded program, and Table 4 measured it as such — and
// reports wall-clock throughput and accuracy.
func (c *Classifier) Measure(docs []corpus.Document) ThroughputReport {
	var rep ThroughputReport
	for _, d := range docs {
		rep.Bytes += int64(len(d.Text))
	}
	start := time.Now()
	for _, d := range docs {
		r := c.Classify(d.Text)
		if r.BestLanguage(c.langs) == d.Language {
			rep.Correct++
		}
	}
	rep.Elapsed = time.Since(start)
	rep.Docs = len(docs)
	return rep
}
