package ngram

import (
	"bytes"
	"strings"
	"testing"
)

func sampleProfile(t *testing.T) *Profile {
	t.Helper()
	texts := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog"),
		[]byte("pack my box with five dozen liquor jugs"),
		[]byte("the five boxing wizards jump quickly"),
	}
	p, err := ProfileFromTexts("en", texts, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileFromTexts(t *testing.T) {
	p := sampleProfile(t)
	if p.Language != "en" || p.N != 4 {
		t.Fatalf("profile metadata wrong: %+v", p)
	}
	if p.Size() == 0 {
		t.Fatal("profile is empty")
	}
	// " THE" must be among the very top: it appears in two documents.
	gs, _ := ExtractBytes([]byte(" the"), 4)
	if !p.Contains(gs[0]) {
		t.Error("profile missing \" THE\"")
	}
}

func TestProfileTopTCap(t *testing.T) {
	texts := [][]byte{[]byte(strings.Repeat("abcdefghijklmnopqrstuvwxyz ", 20))}
	p, err := ProfileFromTexts("xx", texts, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 5 {
		t.Errorf("profile size = %d, want capped at 5", p.Size())
	}
}

func TestProfileSetMatchesContains(t *testing.T) {
	p := sampleProfile(t)
	set := p.Set()
	if len(set) != p.Size() {
		t.Fatalf("set size %d != profile size %d (duplicate grams?)", len(set), p.Size())
	}
	for g := range set {
		if !p.Contains(g) {
			t.Errorf("Contains(%#x) = false for set member", g)
		}
	}
}

func TestProfileOverlap(t *testing.T) {
	p := sampleProfile(t)
	if got := p.Overlap(p); got != p.Size() {
		t.Errorf("self-overlap = %d, want %d", got, p.Size())
	}
	q, err := ProfileFromTexts("xx", [][]byte{[]byte("zzzz qqqq zzzz qqqq")}, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Overlap(q); got != 0 {
		t.Errorf("overlap with disjoint profile = %d, want 0", got)
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	p := sampleProfile(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Language != p.Language || q.N != p.N || len(q.Grams) != len(p.Grams) {
		t.Fatalf("round trip changed metadata: %+v vs %+v", q, p)
	}
	for i := range p.Grams {
		if q.Grams[i] != p.Grams[i] {
			t.Errorf("gram %d differs after round trip", i)
		}
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX\x01\x04\x00\x00\x00\x00\x00\x00"),
		"truncated": []byte("NGPF\x01"),
	}
	for name, data := range cases {
		if _, err := ReadProfile(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadProfile succeeded, want error", name)
		}
	}
}

func TestReadProfileRejectsBadVersion(t *testing.T) {
	p := sampleProfile(t)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadProfile(bytes.NewReader(data)); err == nil {
		t.Error("ReadProfile accepted bad version")
	}
}

func TestReadProfileRejectsOverwideGram(t *testing.T) {
	p := &Profile{Language: "xx", N: 2, Grams: []uint32{1 << 20}} // 2-gram is 10 bits
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("ReadProfile accepted gram wider than packing")
	}
}

func TestSortProfilesByLanguage(t *testing.T) {
	ps := []*Profile{
		{Language: "sv"}, {Language: "cs"}, {Language: "en"},
	}
	SortProfilesByLanguage(ps)
	want := []string{"cs", "en", "sv"}
	for i, w := range want {
		if ps[i].Language != w {
			t.Errorf("position %d = %q, want %q", i, ps[i].Language, w)
		}
	}
}

func TestBuildProfileDeterministic(t *testing.T) {
	mk := func() *Profile {
		c, _ := NewCounter(4)
		c.AddText([]byte("determinism is a property worth testing for always"))
		return BuildProfile("en", c, 10)
	}
	a, b := mk(), mk()
	if len(a.Grams) != len(b.Grams) {
		t.Fatal("profile sizes differ across identical builds")
	}
	for i := range a.Grams {
		if a.Grams[i] != b.Grams[i] {
			t.Errorf("gram %d differs across identical builds", i)
		}
	}
}
