package ngram

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Profile is an n-gram profile of a language: the set of the t most
// frequently occurring n-grams in a representative sample of documents
// (paper §1). The profile is what gets programmed into a Bloom filter
// (or a HAIL lookup table); match counting against it drives
// classification.
type Profile struct {
	// Language is the label the profile was trained for, e.g. "es".
	Language string
	// N is the n-gram length.
	N int
	// Grams holds the profile members in descending training frequency.
	// The order matters for rank-based consumers (HAIL tags, diagnostics);
	// membership consumers treat it as a set.
	Grams []uint32
}

// BuildProfile ranks the counter's accumulated n-grams and keeps the top
// t as the profile for the given language label.
func BuildProfile(language string, c *Counter, t int) *Profile {
	entries := c.Top(t)
	grams := make([]uint32, len(entries))
	for i, e := range entries {
		grams[i] = e.Gram
	}
	return &Profile{Language: language, N: c.n, Grams: grams}
}

// ProfileFromTexts builds a profile directly from training documents.
func ProfileFromTexts(language string, texts [][]byte, n, t int) (*Profile, error) {
	c, err := NewCounter(n)
	if err != nil {
		return nil, err
	}
	for _, text := range texts {
		if err := c.AddText(text); err != nil {
			return nil, err
		}
	}
	return BuildProfile(language, c, t), nil
}

// Size returns the number of n-grams in the profile (N in the paper's
// false-positive formula).
func (p *Profile) Size() int { return len(p.Grams) }

// Contains reports whether g is a member of the profile. It is O(n) and
// intended for tests and diagnostics; classification paths use Bloom
// filters or hash tables built from the profile.
func (p *Profile) Contains(g uint32) bool {
	for _, pg := range p.Grams {
		if pg == g {
			return true
		}
	}
	return false
}

// Set returns the profile as a membership set.
func (p *Profile) Set() map[uint32]bool {
	s := make(map[uint32]bool, len(p.Grams))
	for _, g := range p.Grams {
		s[g] = true
	}
	return s
}

// Overlap returns the number of n-grams present in both profiles — the
// quantity that drives cross-language confusion (§5.2: "consistently
// more Spanish documents were misclassified as Portuguese").
func (p *Profile) Overlap(q *Profile) int {
	set := p.Set()
	n := 0
	for _, g := range q.Grams {
		if set[g] {
			n++
		}
	}
	return n
}

// profileMagic identifies the on-disk profile format.
const profileMagic = "NGPF"

// profileVersion is the current serialization version.
const profileVersion = 1

// WriteTo serializes the profile in a compact binary format:
//
//	magic "NGPF" | version u8 | n u8 | lang len u16 | lang bytes |
//	count u32 | count * u32 grams (little endian)
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(profileMagic); err != nil {
		return written, err
	}
	written += int64(len(profileMagic))
	if len(p.Language) > 0xFFFF {
		return written, errors.New("ngram: language name too long")
	}
	if err := put(uint8(profileVersion)); err != nil {
		return written, err
	}
	if err := put(uint8(p.N)); err != nil {
		return written, err
	}
	if err := put(uint16(len(p.Language))); err != nil {
		return written, err
	}
	if _, err := bw.WriteString(p.Language); err != nil {
		return written, err
	}
	written += int64(len(p.Language))
	if err := put(uint32(len(p.Grams))); err != nil {
		return written, err
	}
	if err := put(p.Grams); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadProfile deserializes a profile written by WriteTo. It reads
// exactly one profile's bytes and no more, so profiles concatenated in
// one stream can be read back-to-back; callers reading many profiles
// from a file should pass a bufio.Reader.
func ReadProfile(r io.Reader) (*Profile, error) {
	br := r
	magic := make([]byte, len(profileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ngram: reading profile magic: %w", err)
	}
	if string(magic) != profileMagic {
		return nil, fmt.Errorf("ngram: bad profile magic %q", magic)
	}
	var version, n uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != profileVersion {
		return nil, fmt.Errorf("ngram: unsupported profile version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 1 || int(n) > MaxN {
		return nil, fmt.Errorf("ngram: profile has invalid n=%d", n)
	}
	var langLen uint16
	if err := binary.Read(br, binary.LittleEndian, &langLen); err != nil {
		return nil, err
	}
	lang := make([]byte, langLen)
	if _, err := io.ReadFull(br, lang); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxProfileGrams = 1 << 26 // 64 Mi entries: far beyond any real profile
	if count > maxProfileGrams {
		return nil, fmt.Errorf("ngram: profile claims %d grams, refusing", count)
	}
	grams := make([]uint32, count)
	if err := binary.Read(br, binary.LittleEndian, grams); err != nil {
		return nil, err
	}
	mask := uint64(1)<<Bits(int(n)) - 1
	for i, g := range grams {
		if uint64(g) > mask {
			return nil, fmt.Errorf("ngram: gram %d (%#x) exceeds %d-bit packing", i, g, Bits(int(n)))
		}
	}
	return &Profile{Language: string(lang), N: int(n), Grams: grams}, nil
}

// SortProfilesByLanguage orders profiles by language label, the
// canonical order used when programming multi-language classifiers so
// counter indices are stable across software and simulated hardware.
func SortProfilesByLanguage(ps []*Profile) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Language < ps[j].Language })
}
