// Package ngram implements n-gram extraction, counting, and language
// profile construction for the Bloom-filter language classifier.
//
// An n-gram is a sequence of exactly n characters; n-grams are extracted
// from a document by a sliding window that shifts one character at a
// time (paper §1). After alphabet conversion each character is a 5-bit
// code, so a 4-gram packs into 20 bits and is carried as a uint32
// throughout the pipeline — the same word the hardware datapath carries.
//
// A language profile is the t most frequently occurring n-grams in a
// training set (t = 5,000 in the paper's implementation, §4), which the
// HAIL authors found produces over 99% classifier accuracy.
package ngram

import (
	"fmt"
	"sort"

	"bloomlang/internal/alphabet"
)

// DefaultN is the n-gram length used by the paper's implementation (§4).
const DefaultN = 4

// DefaultProfileSize is the paper's t: the number of most-frequent
// n-grams kept in a language profile (§4).
const DefaultProfileSize = 5000

// Bits returns the packed width of an n-gram of length n: n characters
// of alphabet.Bits bits each.
func Bits(n int) uint { return uint(n) * alphabet.Bits }

// MaxN is the largest n-gram length that still packs into a uint32.
const MaxN = 32 / alphabet.Bits // 6

// Pack packs up to MaxN codes into a single word, first code in the most
// significant position, mirroring the hardware shift register that
// assembles n-grams from the translated character stream.
func Pack(codes []alphabet.Code) uint32 {
	if len(codes) > MaxN {
		panic(fmt.Sprintf("ngram: cannot pack %d codes into 32 bits", len(codes)))
	}
	var g uint32
	for _, c := range codes {
		g = g<<alphabet.Bits | uint32(c)
	}
	return g
}

// Unpack splits a packed n-gram back into its n codes.
func Unpack(g uint32, n int) []alphabet.Code {
	codes := make([]alphabet.Code, n)
	for i := n - 1; i >= 0; i-- {
		codes[i] = alphabet.Code(g & (1<<alphabet.Bits - 1))
		g >>= alphabet.Bits
	}
	return codes
}

// Render returns the human-readable form of a packed n-gram, e.g.
// "TION" or "E TH".
func Render(g uint32, n int) string {
	codes := Unpack(g, n)
	b := make([]byte, n)
	for i, c := range codes {
		b[i] = c.Byte()
	}
	return string(b)
}

// Extractor produces the stream of packed n-grams for a document. It is
// a software rendering of the hardware's character buffer: an input word
// containing multiple translated characters is buffered and an n-gram is
// generated at each character position (§3.3). The implementation is
// oblivious to word boundaries and treats the input as a continuous
// character stream, exactly like the hardware.
type Extractor struct {
	n      int
	mask   uint32
	window uint32
	filled int
	// Subsample, when s > 1, emits only every s-th n-gram, the
	// bandwidth-reduction technique HAIL uses and §3.3 mentions as an
	// option when on-chip memory bandwidth is limited.
	subsample int
	phase     int
}

// NewExtractor returns an extractor for n-grams of length n (1..MaxN).
func NewExtractor(n int) (*Extractor, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("ngram: length %d out of range [1,%d]", n, MaxN)
	}
	return &Extractor{
		n:         n,
		mask:      uint32(uint64(1)<<Bits(n) - 1),
		subsample: 1,
	}, nil
}

// SetSubsample makes the extractor emit every s-th n-gram (s >= 1).
func (e *Extractor) SetSubsample(s int) error {
	if s < 1 {
		return fmt.Errorf("ngram: subsample factor %d must be >= 1", s)
	}
	e.subsample = s
	return nil
}

// N returns the configured n-gram length.
func (e *Extractor) N() int { return e.n }

// Reset clears the sliding window, ready for a new document. The
// hardware equivalent is the End-of-Document command clearing the
// character buffer.
func (e *Extractor) Reset() {
	e.window = 0
	e.filled = 0
	e.phase = 0
}

// Feed shifts the translated codes into the window and appends every
// complete n-gram to dst, returning the extended slice. A document of d
// characters yields exactly max(0, d-n+1) n-grams (before subsampling).
func (e *Extractor) Feed(dst []uint32, codes []alphabet.Code) []uint32 {
	for _, c := range codes {
		e.window = (e.window<<alphabet.Bits | uint32(c)) & e.mask
		if e.filled < e.n-1 {
			e.filled++
			continue
		}
		if e.phase == 0 {
			dst = append(dst, e.window)
		}
		e.phase++
		if e.phase == e.subsample {
			e.phase = 0
		}
	}
	return dst
}

// ExtractBytes translates raw ISO-8859-1 bytes and returns all packed
// n-grams of length n, the convenience path used by training and by the
// software classifier.
func ExtractBytes(text []byte, n int) ([]uint32, error) {
	e, err := NewExtractor(n)
	if err != nil {
		return nil, err
	}
	codes := alphabet.TranslateAll(text)
	return e.Feed(make([]uint32, 0, maxInt(0, len(text)-n+1)), codes), nil
}

// Count returns the number of n-grams a document of length d characters
// produces: the sliding window emits one n-gram per position.
func Count(d, n int) int { return maxInt(0, d-n+1) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Counter accumulates n-gram frequencies for profile construction. For
// n <= 4 the key space (2^20) is small enough for a flat table, which is
// what the preprocessing step uses; larger n falls back to a map.
type Counter struct {
	n     int
	flat  []uint64 // used when Bits(n) <= flatBits
	m     map[uint32]uint64
	total uint64
}

const flatBits = 20

// NewCounter returns a Counter for n-grams of length n.
func NewCounter(n int) (*Counter, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("ngram: length %d out of range [1,%d]", n, MaxN)
	}
	c := &Counter{n: n}
	if Bits(n) <= flatBits {
		c.flat = make([]uint64, 1<<Bits(n))
	} else {
		c.m = make(map[uint32]uint64)
	}
	return c, nil
}

// Add increments the count of g.
func (c *Counter) Add(g uint32) {
	if c.flat != nil {
		c.flat[g]++
	} else {
		c.m[g]++
	}
	c.total++
}

// AddAll increments the count of every n-gram in gs.
func (c *Counter) AddAll(gs []uint32) {
	if c.flat != nil {
		for _, g := range gs {
			c.flat[g]++
		}
	} else {
		for _, g := range gs {
			c.m[g]++
		}
	}
	c.total += uint64(len(gs))
}

// AddText extracts n-grams from raw text and accumulates them.
func (c *Counter) AddText(text []byte) error {
	gs, err := ExtractBytes(text, c.n)
	if err != nil {
		return err
	}
	c.AddAll(gs)
	return nil
}

// Total returns the number of n-grams accumulated.
func (c *Counter) Total() uint64 { return c.total }

// N returns the n-gram length the counter accumulates.
func (c *Counter) N() int { return c.n }

// Merge adds every count accumulated in o into c, leaving o unchanged.
// Counting is additive, so any partition of a document stream across
// counters merges back to the exact counts a single counter would have
// seen — the property sharded training relies on.
func (c *Counter) Merge(o *Counter) error {
	if c.n != o.n {
		return fmt.Errorf("ngram: cannot merge counter with n=%d into n=%d", o.n, c.n)
	}
	if c.flat != nil {
		for g, v := range o.flat {
			c.flat[g] += v
		}
	} else {
		for g, v := range o.m {
			c.m[g] += v
		}
	}
	c.total += o.total
	return nil
}

// Get returns the count of g.
func (c *Counter) Get(g uint32) uint64 {
	if c.flat != nil {
		return c.flat[g]
	}
	return c.m[g]
}

// Distinct returns the number of distinct n-grams seen.
func (c *Counter) Distinct() int {
	if c.flat != nil {
		d := 0
		for _, v := range c.flat {
			if v > 0 {
				d++
			}
		}
		return d
	}
	return len(c.m)
}

// Entry is an n-gram with its frequency, used when ranking.
type Entry struct {
	Gram  uint32
	Count uint64
}

// Top returns the t most frequent n-grams in descending count order.
// Ties break on the packed n-gram value so results are deterministic.
// If fewer than t distinct n-grams were seen, all of them are returned.
func (c *Counter) Top(t int) []Entry {
	if t < 0 {
		t = 0
	}
	entries := make([]Entry, 0, minInt(t, 1<<16))
	appendEntry := func(g uint32, v uint64) {
		entries = append(entries, Entry{Gram: g, Count: v})
	}
	if c.flat != nil {
		for g, v := range c.flat {
			if v > 0 {
				appendEntry(uint32(g), v)
			}
		}
	} else {
		for g, v := range c.m {
			appendEntry(g, v)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Gram < entries[j].Gram
	})
	if len(entries) > t {
		entries = entries[:t]
	}
	return entries
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
