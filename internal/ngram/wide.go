package ngram

import (
	"fmt"
	"sort"

	"bloomlang/internal/alphabet"
)

// Wide n-gram machinery for the §3.3 Unicode extension: n-grams of
// 16-bit characters packed into uint64 (so n <= 4), counted with a map
// instead of a flat table — the very point of the extension is that a
// direct lookup table over a 16-bit alphabet would be astronomically
// large while the Bloom filter only needs a wider hash input.

// MaxWideN is the largest wide n-gram length that packs into 64 bits.
const MaxWideN = 64 / alphabet.WideBits // 4

// WideBitsFor returns the packed width of a wide n-gram of length n.
func WideBitsFor(n int) uint { return uint(n) * alphabet.WideBits }

// WideExtractor slides a window of n 16-bit codes over a rune stream.
type WideExtractor struct {
	n      int
	mask   uint64
	window uint64
	filled int
}

// NewWideExtractor returns an extractor for wide n-grams of length n.
func NewWideExtractor(n int) (*WideExtractor, error) {
	if n < 1 || n > MaxWideN {
		return nil, fmt.Errorf("ngram: wide length %d out of range [1,%d]", n, MaxWideN)
	}
	var mask uint64
	if WideBitsFor(n) == 64 {
		mask = ^uint64(0)
	} else {
		mask = uint64(1)<<WideBitsFor(n) - 1
	}
	return &WideExtractor{n: n, mask: mask}, nil
}

// Reset clears the window.
func (e *WideExtractor) Reset() {
	e.window = 0
	e.filled = 0
}

// Feed shifts codes into the window, appending complete n-grams to dst.
func (e *WideExtractor) Feed(dst []uint64, codes []alphabet.WideCode) []uint64 {
	for _, c := range codes {
		e.window = (e.window<<alphabet.WideBits | uint64(c)) & e.mask
		if e.filled < e.n-1 {
			e.filled++
			continue
		}
		dst = append(dst, e.window)
	}
	return dst
}

// ExtractWide translates UTF-8 text and returns its packed wide
// n-grams.
func ExtractWide(text string, n int) ([]uint64, error) {
	e, err := NewWideExtractor(n)
	if err != nil {
		return nil, err
	}
	return e.Feed(nil, alphabet.TranslateWide(text)), nil
}

// WideProfile is a language profile over wide n-grams.
type WideProfile struct {
	Language string
	N        int
	Grams    []uint64
}

// Size returns the profile's n-gram count.
func (p *WideProfile) Size() int { return len(p.Grams) }

// WideProfileFromTexts builds a wide profile from UTF-8 training texts.
func WideProfileFromTexts(language string, texts []string, n, t int) (*WideProfile, error) {
	if n < 1 || n > MaxWideN {
		return nil, fmt.Errorf("ngram: wide length %d out of range [1,%d]", n, MaxWideN)
	}
	counts := make(map[uint64]uint64)
	for _, text := range texts {
		gs, err := ExtractWide(text, n)
		if err != nil {
			return nil, err
		}
		for _, g := range gs {
			counts[g]++
		}
	}
	type entry struct {
		g uint64
		c uint64
	}
	entries := make([]entry, 0, len(counts))
	for g, c := range counts {
		entries = append(entries, entry{g, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].c != entries[j].c {
			return entries[i].c > entries[j].c
		}
		return entries[i].g < entries[j].g
	})
	if len(entries) > t {
		entries = entries[:t]
	}
	p := &WideProfile{Language: language, N: n}
	for _, e := range entries {
		p.Grams = append(p.Grams, e.g)
	}
	return p, nil
}
