package ngram

import (
	"testing"

	"bloomlang/internal/alphabet"
)

func TestWideExtractorCount(t *testing.T) {
	for _, c := range []struct {
		text string
		n    int
		want int
	}{
		{"", 2, 0},
		{"α", 2, 0},
		{"αβ", 2, 1},
		{"αβγ", 2, 2},
		{"αβγδ", 4, 1},
		{"hello", 3, 3},
	} {
		gs, err := ExtractWide(c.text, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) != c.want {
			t.Errorf("ExtractWide(%q, %d) = %d grams, want %d", c.text, c.n, len(gs), c.want)
		}
	}
}

func TestWideExtractorRunesNotBytes(t *testing.T) {
	// "αβ" is four UTF-8 bytes but two runes: exactly one wide 2-gram.
	gs, err := ExtractWide("αβ", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 {
		t.Fatalf("got %d grams, want 1", len(gs))
	}
	// The packed gram is uppercase Α (0x391) << 16 | uppercase Β (0x392).
	want := uint64(0x0391)<<16 | 0x0392
	if gs[0] != want {
		t.Errorf("packed gram = %#x, want %#x", gs[0], want)
	}
}

func TestWideExtractorValidation(t *testing.T) {
	if _, err := NewWideExtractor(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewWideExtractor(5); err == nil {
		t.Error("n=5 accepted (80 bits)")
	}
	if _, err := NewWideExtractor(4); err != nil {
		t.Errorf("n=4 rejected: %v", err)
	}
}

func TestWideExtractorFullWidthMask(t *testing.T) {
	// n=4 uses all 64 bits; the window must not lose the oldest char
	// prematurely nor keep a fifth.
	e, err := NewWideExtractor(4)
	if err != nil {
		t.Fatal(err)
	}
	codes := alphabet.TranslateWide("abcde")
	gs := e.Feed(nil, codes)
	if len(gs) != 2 {
		t.Fatalf("got %d grams, want 2", len(gs))
	}
	// Second gram is BCDE: B,C,D,E upper-cased 16-bit codes.
	want := uint64('B')<<48 | uint64('C')<<32 | uint64('D')<<16 | uint64('E')
	if gs[1] != want {
		t.Errorf("gram = %#x, want %#x", gs[1], want)
	}
}

func TestWideExtractorReset(t *testing.T) {
	e, _ := NewWideExtractor(3)
	a := e.Feed(nil, alphabet.TranslateWide("αβγ"))
	e.Reset()
	b := e.Feed(nil, alphabet.TranslateWide("αβγ"))
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Error("Reset did not restore initial state")
	}
}

func TestWideProfileFromTexts(t *testing.T) {
	p, err := WideProfileFromTexts("el", []string{
		"το συμβούλιο θεσπίζει τα μέτρα",
		"το κοινοβούλιο και το συμβούλιο",
	}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.Language != "el" || p.N != 3 {
		t.Fatalf("metadata wrong: %+v", p)
	}
	if p.Size() == 0 || p.Size() > 50 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestWideProfileValidation(t *testing.T) {
	if _, err := WideProfileFromTexts("x", []string{"abc"}, 9, 10); err == nil {
		t.Error("n=9 accepted")
	}
}

func TestWideProfileDeterministic(t *testing.T) {
	texts := []string{"европейский парламент принимает регламент"}
	a, _ := WideProfileFromTexts("ru", texts, 3, 20)
	b, _ := WideProfileFromTexts("ru", texts, 3, 20)
	if len(a.Grams) != len(b.Grams) {
		t.Fatal("sizes differ")
	}
	for i := range a.Grams {
		if a.Grams[i] != b.Grams[i] {
			t.Fatal("order differs between identical builds")
		}
	}
}

func TestWideBitsFor(t *testing.T) {
	if WideBitsFor(4) != 64 || WideBitsFor(2) != 32 {
		t.Error("WideBitsFor wrong")
	}
}
