package ngram

import (
	"bytes"
	"testing"
)

// FuzzReadProfile hardens the deserializer against malformed input: it
// must never panic, and anything it accepts must round-trip.
func FuzzReadProfile(f *testing.F) {
	// Seed with a valid serialized profile and some mutations.
	p := &Profile{Language: "es", N: 4, Grams: []uint32{1, 2, 0xFFFFF}}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NGPF"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine
		}
		// Accepted: must survive a round trip unchanged.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted profile failed to serialize: %v", err)
		}
		back, err := ReadProfile(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Language != got.Language || back.N != got.N || len(back.Grams) != len(got.Grams) {
			t.Fatal("round trip changed the profile")
		}
	})
}

// FuzzExtractBytes checks the extractor on arbitrary byte streams: the
// n-gram count invariant must hold for any input.
func FuzzExtractBytes(f *testing.F) {
	f.Add([]byte("hello world"), 4)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0x00, 0xC3, 0x7F}, 6)
	f.Fuzz(func(t *testing.T, text []byte, n int) {
		gs, err := ExtractBytes(text, n)
		if err != nil {
			if n >= 1 && n <= MaxN {
				t.Fatalf("valid n=%d rejected: %v", n, err)
			}
			return
		}
		if len(gs) != Count(len(text), n) {
			t.Fatalf("extracted %d n-grams from %d bytes at n=%d, want %d",
				len(gs), len(text), n, Count(len(text), n))
		}
		mask := uint64(1)<<Bits(n) - 1
		for _, g := range gs {
			if uint64(g) > mask {
				t.Fatalf("gram %#x exceeds %d-bit packing", g, Bits(n))
			}
		}
	})
}
