package ngram

import (
	"testing"
	"testing/quick"

	"bloomlang/internal/alphabet"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	prop := func(raw [4]uint8) bool {
		codes := make([]alphabet.Code, 4)
		for i, r := range raw {
			codes[i] = alphabet.Code(r % 27)
		}
		got := Unpack(Pack(codes), 4)
		for i := range codes {
			if got[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPackOrdering(t *testing.T) {
	// "AB" must pack with A in the high bits: A=1, B=2 -> 1<<5 | 2.
	g := Pack([]alphabet.Code{1, 2})
	if g != 1<<5|2 {
		t.Errorf("Pack(A,B) = %#x, want %#x", g, 1<<5|2)
	}
}

func TestPackPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pack of 7 codes did not panic")
		}
	}()
	Pack(make([]alphabet.Code, 7))
}

func TestRender(t *testing.T) {
	gs, err := ExtractBytes([]byte("tion"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 {
		t.Fatalf("got %d n-grams, want 1", len(gs))
	}
	if got := Render(gs[0], 4); got != "TION" {
		t.Errorf("Render = %q, want TION", got)
	}
}

func TestExtractorCount(t *testing.T) {
	for _, c := range []struct {
		text string
		n    int
		want int
	}{
		{"", 4, 0},
		{"abc", 4, 0},
		{"abcd", 4, 1},
		{"abcde", 4, 2},
		{"hello world", 4, 8},
		{"ab", 2, 1},
		{"a", 1, 1},
	} {
		gs, err := ExtractBytes([]byte(c.text), c.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) != c.want {
			t.Errorf("ExtractBytes(%q, %d) produced %d n-grams, want %d", c.text, c.n, len(gs), c.want)
		}
		if got := Count(len(c.text), c.n); got != c.want {
			t.Errorf("Count(%d, %d) = %d, want %d", len(c.text), c.n, got, c.want)
		}
	}
}

func TestExtractorSlidesOneCharacter(t *testing.T) {
	gs, err := ExtractBytes([]byte("abcdef"), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ABCD", "BCDE", "CDEF"}
	if len(gs) != len(want) {
		t.Fatalf("got %d n-grams, want %d", len(gs), len(want))
	}
	for i, w := range want {
		if got := Render(gs[i], 4); got != w {
			t.Errorf("n-gram %d = %q, want %q", i, got, w)
		}
	}
}

func TestExtractorIgnoresWordBoundaries(t *testing.T) {
	// §3.3: "Our implementation is currently oblivious to word boundaries
	// and simply treats the input as a continuous stream of characters."
	gs, err := ExtractBytes([]byte("a b"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Fatalf("3-char input must give 0 4-grams, got %d", len(gs))
	}
	gs, _ = ExtractBytes([]byte("a bc"), 4)
	if len(gs) != 1 || Render(gs[0], 4) != "A BC" {
		t.Fatalf("expected single n-gram \"A BC\" spanning the space, got %v", gs)
	}
}

func TestExtractorIncrementalFeedMatchesWhole(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog")
	whole, err := ExtractBytes(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewExtractor(4)
	var inc []uint32
	codes := alphabet.TranslateAll(text)
	// Feed in unequal chunks: 1, 2, 3, ... characters at a time.
	for i, step := 0, 1; i < len(codes); step++ {
		end := i + step
		if end > len(codes) {
			end = len(codes)
		}
		inc = e.Feed(inc, codes[i:end])
		i = end
	}
	if len(inc) != len(whole) {
		t.Fatalf("incremental feed produced %d n-grams, whole produced %d", len(inc), len(whole))
	}
	for i := range inc {
		if inc[i] != whole[i] {
			t.Errorf("n-gram %d differs: %#x vs %#x", i, inc[i], whole[i])
		}
	}
}

func TestExtractorReset(t *testing.T) {
	e, _ := NewExtractor(4)
	codes := alphabet.TranslateAll([]byte("abcdef"))
	first := e.Feed(nil, codes)
	e.Reset()
	second := e.Feed(nil, codes)
	if len(first) != len(second) {
		t.Fatalf("after Reset, feed produced %d n-grams, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("n-gram %d differs after Reset", i)
		}
	}
}

func TestExtractorNoResetCarriesWindow(t *testing.T) {
	e, _ := NewExtractor(4)
	a := e.Feed(nil, alphabet.TranslateAll([]byte("ab")))
	b := e.Feed(nil, alphabet.TranslateAll([]byte("cd")))
	if len(a) != 0 {
		t.Fatalf("first partial feed must emit nothing, got %d", len(a))
	}
	if len(b) != 1 || Render(b[0], 4) != "ABCD" {
		t.Fatalf("window must span feeds without Reset; got %d grams", len(b))
	}
}

func TestSubsample(t *testing.T) {
	e, _ := NewExtractor(4)
	if err := e.SetSubsample(2); err != nil {
		t.Fatal(err)
	}
	codes := alphabet.TranslateAll([]byte("abcdefgh")) // 5 4-grams
	gs := e.Feed(nil, codes)
	// Positions 0,2,4 survive a 1-in-2 subsample.
	want := []string{"ABCD", "CDEF", "EFGH"}
	if len(gs) != len(want) {
		t.Fatalf("subsampled count = %d, want %d", len(gs), len(want))
	}
	for i, w := range want {
		if got := Render(gs[i], 4); got != w {
			t.Errorf("subsampled n-gram %d = %q, want %q", i, got, w)
		}
	}
	if err := e.SetSubsample(0); err == nil {
		t.Error("SetSubsample(0) succeeded, want error")
	}
}

func TestNewExtractorValidation(t *testing.T) {
	if _, err := NewExtractor(0); err == nil {
		t.Error("NewExtractor(0) succeeded")
	}
	if _, err := NewExtractor(MaxN + 1); err == nil {
		t.Errorf("NewExtractor(%d) succeeded", MaxN+1)
	}
	if _, err := NewExtractor(MaxN); err != nil {
		t.Errorf("NewExtractor(%d): %v", MaxN, err)
	}
}

func TestCounterFlatAndMapAgree(t *testing.T) {
	// n=4 uses the flat table, n=5 the map; both must count identically.
	text := []byte("the theme of the thesis is the theory of the the")
	for _, n := range []int{4, 5} {
		c, err := NewCounter(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddText(text); err != nil {
			t.Fatal(err)
		}
		gs, _ := ExtractBytes(text, n)
		if c.Total() != uint64(len(gs)) {
			t.Errorf("n=%d: Total = %d, want %d", n, c.Total(), len(gs))
		}
		// Recount by brute force.
		ref := map[uint32]uint64{}
		for _, g := range gs {
			ref[g]++
		}
		for g, want := range ref {
			if got := c.Get(g); got != want {
				t.Errorf("n=%d: Get(%#x) = %d, want %d", n, g, got, want)
			}
		}
		if c.Distinct() != len(ref) {
			t.Errorf("n=%d: Distinct = %d, want %d", n, c.Distinct(), len(ref))
		}
	}
}

func TestCounterTopOrdering(t *testing.T) {
	c, _ := NewCounter(4)
	// "aaaa" appears 3 times (sliding), "bbbb" 1, via carefully built text.
	c.AddText([]byte("aaaaaa")) // AAAA x3
	c.AddText([]byte("bbbb"))   // BBBB x1
	top := c.Top(10)
	if len(top) != 2 {
		t.Fatalf("Top returned %d entries, want 2", len(top))
	}
	if Render(top[0].Gram, 4) != "AAAA" || top[0].Count != 3 {
		t.Errorf("top[0] = %q x%d, want AAAA x3", Render(top[0].Gram, 4), top[0].Count)
	}
	if Render(top[1].Gram, 4) != "BBBB" || top[1].Count != 1 {
		t.Errorf("top[1] = %q x%d, want BBBB x1", Render(top[1].Gram, 4), top[1].Count)
	}
}

func TestCounterTopTruncatesAndTieBreaks(t *testing.T) {
	c, _ := NewCounter(4)
	c.AddText([]byte("abcd"))
	c.AddText([]byte("bcde"))
	c.AddText([]byte("cdef"))
	top := c.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) returned %d entries", len(top))
	}
	// All counts equal 1; ties break on ascending packed value, and
	// ABCD < BCDE numerically because A<B in the code space.
	if Render(top[0].Gram, 4) != "ABCD" {
		t.Errorf("tie-break order wrong: top[0] = %q", Render(top[0].Gram, 4))
	}
	if got := c.Top(0); len(got) != 0 {
		t.Errorf("Top(0) returned %d entries", len(got))
	}
	if got := c.Top(-1); len(got) != 0 {
		t.Errorf("Top(-1) returned %d entries", len(got))
	}
}

func TestCounterAddMatchesAddAll(t *testing.T) {
	a, _ := NewCounter(4)
	b, _ := NewCounter(4)
	gs, _ := ExtractBytes([]byte("counting n-grams one at a time"), 4)
	for _, g := range gs {
		a.Add(g)
	}
	b.AddAll(gs)
	if a.Total() != b.Total() {
		t.Fatalf("totals differ: %d vs %d", a.Total(), b.Total())
	}
	for _, g := range gs {
		if a.Get(g) != b.Get(g) {
			t.Errorf("counts differ for %#x", g)
		}
	}
}

func BenchmarkExtract64KiB(b *testing.B) {
	text := make([]byte, 64*1024)
	for i := range text {
		text[i] = byte('a' + i%26)
	}
	codes := alphabet.TranslateAll(text)
	e, _ := NewExtractor(4)
	dst := make([]uint32, 0, len(text))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		dst = e.Feed(dst[:0], codes)
	}
}
