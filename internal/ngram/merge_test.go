package ngram

import (
	"testing"
)

// TestCounterMergeEqualsSequential partitions one document stream
// across several counters and checks the merge reconstructs exactly the
// counts a single counter accumulates — the invariant sharded training
// depends on.
func TestCounterMergeEqualsSequential(t *testing.T) {
	docs := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog"),
		[]byte("pack my box with five dozen liquor jugs"),
		[]byte("sphinx of black quartz judge my vow"),
		[]byte("the five boxing wizards jump quickly"),
	}
	for _, n := range []int{2, 4, MaxN} {
		single, err := NewCounter(n)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([]*Counter, 3)
		for i := range shards {
			if shards[i], err = NewCounter(n); err != nil {
				t.Fatal(err)
			}
		}
		for i, doc := range docs {
			if err := single.AddText(doc); err != nil {
				t.Fatal(err)
			}
			if err := shards[i%len(shards)].AddText(doc); err != nil {
				t.Fatal(err)
			}
		}
		merged := shards[0]
		for _, s := range shards[1:] {
			if err := merged.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Total() != single.Total() {
			t.Fatalf("n=%d: merged total %d, want %d", n, merged.Total(), single.Total())
		}
		if merged.Distinct() != single.Distinct() {
			t.Fatalf("n=%d: merged distinct %d, want %d", n, merged.Distinct(), single.Distinct())
		}
		want := single.Top(0x7fffffff)
		got := merged.Top(0x7fffffff)
		if len(got) != len(want) {
			t.Fatalf("n=%d: merged ranking has %d entries, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ranking entry %d = %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

func TestCounterMergeRejectsMismatchedN(t *testing.T) {
	a, _ := NewCounter(3)
	b, _ := NewCounter(4)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging n=4 into n=3 did not fail")
	}
}

func TestCounterN(t *testing.T) {
	c, _ := NewCounter(5)
	if c.N() != 5 {
		t.Fatalf("N() = %d, want 5", c.N())
	}
}
