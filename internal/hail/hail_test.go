package hail

import (
	"testing"

	"bloomlang/internal/corpus"
	"bloomlang/internal/ngram"
)

func miniSetup(t testing.TB) (*Classifier, *corpus.Corpus) {
	t.Helper()
	cfg := corpus.Config{
		Languages:       []string{"en", "fi", "fr", "es"},
		DocsPerLanguage: 20,
		WordsPerDoc:     200,
		TrainFraction:   0.3,
		Seed:            5,
	}
	corp, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var profiles []*ngram.Profile
	for _, lang := range corp.Languages {
		p, err := ngram.ProfileFromTexts(lang, corp.TrainTexts(lang), 4, 2000)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	c, err := Build(DefaultConfig(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	return c, corp
}

func TestDefaultConfigThroughput(t *testing.T) {
	cfg := DefaultConfig()
	// Table 4: HAIL classifies at 324 MB/sec.
	got := cfg.ThroughputMBps()
	want := 81.0 * 1e6 * 4 / (1 << 20) // 309 MB (2^20)/s = 324 decimal MB/s
	if got != want {
		t.Errorf("ThroughputMBps = %v, want %v", got, want)
	}
	// In decimal MB (as the paper counts), this is 324.
	decimal := cfg.FreqMHz * 1e6 * float64(cfg.BytesPerClock()) / 1e6
	if decimal != 324 {
		t.Errorf("decimal MB/s = %v, want 324", decimal)
	}
}

func TestBytesPerClock(t *testing.T) {
	if got := DefaultConfig().BytesPerClock(); got != 4 {
		t.Errorf("BytesPerClock = %d, want 4", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(DefaultConfig(), nil); err == nil {
		t.Error("Build with no profiles succeeded")
	}
	cfg := DefaultConfig()
	cfg.MaxLanguages = 1
	p1 := &ngram.Profile{Language: "aa", N: 4, Grams: []uint32{1}}
	p2 := &ngram.Profile{Language: "bb", N: 4, Grams: []uint32{2}}
	if _, err := Build(cfg, []*ngram.Profile{p1, p2}); err == nil {
		t.Error("Build beyond MaxLanguages succeeded")
	}
	p3 := &ngram.Profile{Language: "cc", N: 3, Grams: []uint32{1}}
	if _, err := Build(DefaultConfig(), []*ngram.Profile{p3}); err == nil {
		t.Error("Build with mismatched n succeeded")
	}
}

func TestTableConflictResolution(t *testing.T) {
	// Gram 7 ranks 0th in language bb but 1st in aa: bb wins the entry.
	pa := &ngram.Profile{Language: "aa", N: 4, Grams: []uint32{3, 7}}
	pb := &ngram.Profile{Language: "bb", N: 4, Grams: []uint32{7, 9}}
	c, err := Build(DefaultConfig(), []*ngram.Profile{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.table[7]; got != 2 { // bb is index 1, stored as 2
		t.Errorf("table[7] = %d, want 2 (bb)", got)
	}
	if got := c.table[3]; got != 1 {
		t.Errorf("table[3] = %d, want 1 (aa)", got)
	}
	if got := c.table[9]; got != 2 {
		t.Errorf("table[9] = %d, want 2 (bb)", got)
	}
	if got := c.table[100]; got != 0 {
		t.Errorf("table[100] = %d, want 0 (empty)", got)
	}
}

func TestClassifyAccuracy(t *testing.T) {
	c, corp := miniSetup(t)
	correct, total := 0, 0
	for _, lang := range corp.Languages {
		for _, d := range corp.Test[lang] {
			r := c.Classify(d.Text)
			if r.BestLanguage(c.Languages()) == lang {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("HAIL accuracy %.2f below 0.9", acc)
	}
}

func TestClassifySubsamples(t *testing.T) {
	c, corp := miniSetup(t)
	doc := corp.Test["en"][0].Text
	r := c.Classify(doc)
	fullGrams := len(doc) - 4 + 1
	if r.NGrams >= fullGrams {
		t.Errorf("subsampled NGrams %d not below full %d", r.NGrams, fullGrams)
	}
	if r.NGrams < fullGrams/3 {
		t.Errorf("subsampled NGrams %d below a third of full %d", r.NGrams, fullGrams)
	}
}

func TestClassifyEmpty(t *testing.T) {
	c, _ := miniSetup(t)
	r := c.Classify(nil)
	if r.Best != -1 || r.BestLanguage(c.Languages()) != "" {
		t.Error("empty document classified")
	}
}

func TestNoFalsePositives(t *testing.T) {
	// Direct lookup is exact: a document whose n-grams are all absent
	// from every profile must score zero everywhere.
	pa := &ngram.Profile{Language: "aa", N: 4, Grams: []uint32{1, 2, 3}}
	c, err := Build(DefaultConfig(), []*ngram.Profile{pa})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Classify([]byte("zzzzzzzzzzzz"))
	if r.Counts[0] != 0 {
		t.Errorf("count = %d for disjoint document, want 0", r.Counts[0])
	}
}

func TestStreamReport(t *testing.T) {
	c, corp := miniSetup(t)
	docs := corp.TestDocuments("")
	rep := c.Stream(docs)
	if rep.Docs != len(docs) {
		t.Errorf("Docs = %d, want %d", rep.Docs, len(docs))
	}
	if rep.Bytes <= 0 || rep.SimTime <= 0 {
		t.Error("empty stream report")
	}
	if rep.Accuracy() < 0.9 {
		t.Errorf("streamed accuracy %.2f below 0.9", rep.Accuracy())
	}
	// Modelled throughput must sit near the architecture rate; the
	// per-document drain cost keeps it slightly below.
	mbps := rep.MBPerSec()
	arch := c.Config().ThroughputMBps()
	if mbps > arch {
		t.Errorf("modelled throughput %.0f exceeds architectural rate %.0f", mbps, arch)
	}
	if mbps < arch*0.8 {
		t.Errorf("modelled throughput %.0f more than 20%% below architectural rate %.0f", mbps, arch)
	}
}

func TestStreamEmptySet(t *testing.T) {
	c, _ := miniSetup(t)
	rep := c.Stream(nil)
	if rep.MBPerSec() != 0 || rep.Accuracy() != 0 {
		t.Error("empty set produced nonzero rates")
	}
}

func TestCapacity255Languages(t *testing.T) {
	// HAIL's selling point: up to 255 languages in one table. Build a
	// synthetic 255-language profile set (one unique gram each).
	var profiles []*ngram.Profile
	for i := 0; i < 255; i++ {
		profiles = append(profiles, &ngram.Profile{
			Language: langName(i),
			N:        4,
			Grams:    []uint32{uint32(i + 1)},
		})
	}
	c, err := Build(DefaultConfig(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Languages()) != 255 {
		t.Fatalf("built %d languages", len(c.Languages()))
	}
	// Entry 200 belongs to the language that owns gram 200.
	if c.table[200] == 0 {
		t.Error("entry 200 empty")
	}
}

func langName(i int) string {
	return string([]byte{'a' + byte(i/26), 'a' + byte(i%26), '0' + byte(i%10)})
}
