// Package hail models the paper's hardware comparator: HAIL, the
// Hardware-Accelerated Algorithm for Language Identification of Kastner,
// Covington, Levine & Lockwood (FPL 2005), implemented on a Xilinx
// XCV2000E-8 FPGA with off-chip SRAM lookup tables (§2, §5.5, Table 4).
//
// HAIL differs from the paper's Bloom-filter design in the membership
// structure: n-gram profiles live in off-chip SRAM as a direct lookup
// table mapping each n-gram to the single language it is most
// representative of, which is how one lookup per n-gram scales to 255
// languages. The number of off-chip SRAM banks bounds the lookups per
// clock, which is the scalability limitation the paper's on-chip design
// removes (§2: "the amount of parallelism that can be exploited is
// limited by the number of off-chip SRAMs available").
//
// Functionally the classifier is exact (a hit means the n-gram really
// is in that language's profile — no false positives); architecturally
// HAIL subsamples the input stream (every other n-gram) to match SRAM
// bandwidth. Throughput is modelled from the published figure:
// 324 MB/sec on ten languages (Table 4).
package hail

import (
	"fmt"
	"time"

	"bloomlang/internal/alphabet"
	"bloomlang/internal/corpus"
	"bloomlang/internal/ht"
	"bloomlang/internal/ngram"
)

// Config describes the HAIL hardware model.
type Config struct {
	// N is the n-gram length (HAIL also used 4-character n-grams).
	N int
	// FreqMHz is the XCV2000E clock.
	FreqMHz float64
	// SRAMLookupsPerClock is the number of parallel off-chip SRAM reads
	// per cycle (one per bank port).
	SRAMLookupsPerClock int
	// Subsample tests every s-th n-gram; HAIL subsamples 1-in-2 so the
	// input byte rate is Subsample × lookups per clock.
	Subsample int
	// MaxLanguages is the language capacity; one byte of language ID
	// per table entry gives 255 (§2, §5.5).
	MaxLanguages int
}

// DefaultConfig returns the published HAIL operating point: 81 MHz with
// two SRAM lookups per clock and 1-in-2 subsampling, for an input rate
// of 4 bytes/clock = 324 MB/sec — Table 4's figure.
func DefaultConfig() Config {
	return Config{
		N:                   4,
		FreqMHz:             81,
		SRAMLookupsPerClock: 2,
		Subsample:           2,
		MaxLanguages:        255,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.N == 0 {
		c.N = d.N
	}
	if c.FreqMHz == 0 {
		c.FreqMHz = d.FreqMHz
	}
	if c.SRAMLookupsPerClock == 0 {
		c.SRAMLookupsPerClock = d.SRAMLookupsPerClock
	}
	if c.Subsample == 0 {
		c.Subsample = d.Subsample
	}
	if c.MaxLanguages == 0 {
		c.MaxLanguages = d.MaxLanguages
	}
}

// BytesPerClock returns the input consumption rate: each clock the
// banks test SRAMLookupsPerClock n-grams drawn every Subsample
// positions, covering SRAMLookupsPerClock × Subsample input bytes.
func (c Config) BytesPerClock() int {
	return c.SRAMLookupsPerClock * c.Subsample
}

// ThroughputMBps returns the modelled classification rate in MB/sec.
func (c Config) ThroughputMBps() float64 {
	return c.FreqMHz * 1e6 * float64(c.BytesPerClock()) / (1 << 20)
}

// Classifier is the functional HAIL model: a direct lookup table over
// the packed n-gram space whose entries name the owning language.
type Classifier struct {
	cfg   Config
	langs []string
	// table maps packed n-gram -> language index + 1 (0 = no language).
	table []uint8
}

// Build constructs the lookup table from language profiles. When an
// n-gram appears in several profiles it is assigned to the language
// where it ranks highest (profiles order n-grams by descending training
// frequency), mirroring HAIL's one-language-per-entry table.
func Build(cfg Config, profiles []*ngram.Profile) (*Classifier, error) {
	cfg.applyDefaults()
	if len(profiles) == 0 {
		return nil, fmt.Errorf("hail: no profiles")
	}
	if len(profiles) > cfg.MaxLanguages {
		return nil, fmt.Errorf("hail: %d languages exceed table capacity %d", len(profiles), cfg.MaxLanguages)
	}
	sorted := make([]*ngram.Profile, len(profiles))
	copy(sorted, profiles)
	ngram.SortProfilesByLanguage(sorted)
	c := &Classifier{
		cfg:   cfg,
		table: make([]uint8, 1<<ngram.Bits(cfg.N)),
	}
	// bestRank tracks the winning rank per occupied entry.
	bestRank := make(map[uint32]int)
	for li, p := range sorted {
		if p.N != cfg.N {
			return nil, fmt.Errorf("hail: profile %q has n=%d, config has n=%d", p.Language, p.N, cfg.N)
		}
		c.langs = append(c.langs, p.Language)
		for rank, g := range p.Grams {
			if prev, ok := bestRank[g]; ok && prev <= rank {
				continue
			}
			bestRank[g] = rank
			c.table[g] = uint8(li) + 1
		}
	}
	return c, nil
}

// Languages returns the table's language order.
func (c *Classifier) Languages() []string { return c.langs }

// Config returns the model configuration.
func (c *Classifier) Config() Config { return c.cfg }

// Result is a HAIL classification outcome.
type Result struct {
	// Counts holds per-language match counts in Languages() order.
	Counts []int
	// NGrams is the number of n-grams looked up (after subsampling).
	NGrams int
	// Best is the winning language index, or -1.
	Best int
}

// BestLanguage returns the winning language code, or "".
func (r Result) BestLanguage(langs []string) string {
	if r.Best < 0 || r.Best >= len(langs) {
		return ""
	}
	return langs[r.Best]
}

// Classify runs the HAIL pipeline on one document: alphabet conversion,
// subsampled n-gram extraction, one table lookup per n-gram.
func (c *Classifier) Classify(doc []byte) Result {
	e, err := ngram.NewExtractor(c.cfg.N)
	if err != nil {
		panic(err) // config validated at Build
	}
	if c.cfg.Subsample > 1 {
		if err := e.SetSubsample(c.cfg.Subsample); err != nil {
			panic(err)
		}
	}
	gs := e.Feed(nil, alphabet.TranslateAll(doc))
	r := Result{Counts: make([]int, len(c.langs)), NGrams: len(gs), Best: -1}
	for _, g := range gs {
		if li := c.table[g]; li != 0 {
			r.Counts[li-1]++
		}
	}
	for i, n := range r.Counts {
		if r.Best == -1 || n > r.Counts[r.Best] {
			r.Best = i
		}
	}
	if r.NGrams == 0 {
		r.Best = -1
	}
	return r
}

// SimulatedReport is a modelled streaming run over a document set.
type SimulatedReport struct {
	// Bytes is the total input size.
	Bytes int64
	// SimTime is the modelled hardware time to stream the set.
	SimTime ht.Time
	// WallTime is the real time the functional simulation took (for
	// diagnostics only; the architecture numbers come from SimTime).
	WallTime time.Duration
	// Docs is the number of documents.
	Docs int
	// Correct counts documents whose simulated classification matched
	// the label.
	Correct int
}

// MBPerSec returns the modelled throughput in MB/sec.
func (r SimulatedReport) MBPerSec() float64 {
	s := r.SimTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / s
}

// Accuracy returns the fraction classified correctly.
func (r SimulatedReport) Accuracy() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Docs)
}

// Stream classifies a labelled document set and models the hardware
// time: the XCV2000E consumes BytesPerClock input bytes per cycle, plus
// a small per-document pipeline drain.
func (c *Classifier) Stream(docs []corpus.Document) SimulatedReport {
	rep := SimulatedReport{Docs: len(docs)}
	start := time.Now()
	cycleTime := ht.Time(float64(ht.Second) / (c.cfg.FreqMHz * 1e6))
	perDocDrain := 16 * cycleTime
	var sim ht.Time
	for _, d := range docs {
		rep.Bytes += int64(len(d.Text))
		cycles := (int64(len(d.Text)) + int64(c.cfg.BytesPerClock()) - 1) / int64(c.cfg.BytesPerClock())
		sim += ht.Time(cycles)*cycleTime + perDocDrain
		r := c.Classify(d.Text)
		if r.BestLanguage(c.langs) == d.Language {
			rep.Correct++
		}
	}
	rep.SimTime = sim
	rep.WallTime = time.Since(start)
	return rep
}
