package h3

import (
	"fmt"
	"math/rand"
)

// Func64 is an H3 family member over inputs up to 64 bits wide — the
// hash the §3.3 Unicode extension needs: a 4-gram of 16-bit characters
// is a 64-bit word, and the XOR-tree evaluation is unchanged, just
// wider. Everything else about the Bloom filter stays the same.
type Func64 struct {
	rows       [64]uint32
	tab        [8][256]uint32
	inputBits  uint
	outputBits uint
	mask       uint32
}

// MaxInputBits64 is the widest input a Func64 accepts.
const MaxInputBits64 = 64

// New64 constructs a wide H3 function with the given input and output
// widths, drawing matrix rows from rng.
func New64(inputBits, outputBits uint, rng *rand.Rand) (*Func64, error) {
	if inputBits == 0 || inputBits > MaxInputBits64 {
		return nil, fmt.Errorf("h3: input width %d out of range [1,%d]", inputBits, MaxInputBits64)
	}
	if outputBits == 0 || outputBits > 32 {
		return nil, fmt.Errorf("h3: output width %d out of range [1,32]", outputBits)
	}
	f := &Func64{
		inputBits:  inputBits,
		outputBits: outputBits,
		mask:       uint32(uint64(1)<<outputBits - 1),
	}
	for i := uint(0); i < inputBits; i++ {
		f.rows[i] = rng.Uint32() & f.mask
	}
	for chunk := 0; chunk < 8; chunk++ {
		for v := 1; v < 256; v++ {
			var h uint32
			for b := uint(0); b < 8; b++ {
				if v&(1<<b) != 0 {
					h ^= f.rows[uint(chunk)*8+b]
				}
			}
			f.tab[chunk][v] = h
		}
	}
	return f, nil
}

// Hash evaluates the function on x; bits above the input width are
// ignored (their matrix rows are zero).
func (f *Func64) Hash(x uint64) uint32 {
	return f.tab[0][x&0xFF] ^
		f.tab[1][x>>8&0xFF] ^
		f.tab[2][x>>16&0xFF] ^
		f.tab[3][x>>24&0xFF] ^
		f.tab[4][x>>32&0xFF] ^
		f.tab[5][x>>40&0xFF] ^
		f.tab[6][x>>48&0xFF] ^
		f.tab[7][x>>56]
}

// InputBits returns the configured input width.
func (f *Func64) InputBits() uint { return f.inputBits }

// OutputBits returns the configured output width.
func (f *Func64) OutputBits() uint { return f.outputBits }

// Row returns matrix row i, for tests.
func (f *Func64) Row(i uint) uint32 {
	if i >= f.inputBits {
		panic(fmt.Sprintf("h3: row %d out of range [0,%d)", i, f.inputBits))
	}
	return f.rows[i]
}

// Family64 is an ordered set of independent wide H3 functions.
type Family64 struct {
	funcs []*Func64
}

// NewFamily64 draws k independent wide functions from a seeded stream.
func NewFamily64(k int, inputBits, outputBits uint, seed int64) (*Family64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("h3: family size %d must be positive", k)
	}
	rng := rand.New(rand.NewSource(seed))
	fam := &Family64{funcs: make([]*Func64, k)}
	for i := range fam.funcs {
		f, err := New64(inputBits, outputBits, rng)
		if err != nil {
			return nil, err
		}
		fam.funcs[i] = f
	}
	return fam, nil
}

// K returns the family size.
func (fam *Family64) K() int { return len(fam.funcs) }

// Func returns member i.
func (fam *Family64) Func(i int) *Func64 { return fam.funcs[i] }
