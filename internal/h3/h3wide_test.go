package h3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew64(t *testing.T, in, out uint, seed int64) *Func64 {
	t.Helper()
	f, err := New64(in, out, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New64(%d,%d): %v", in, out, err)
	}
	return f
}

func TestNew64Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ in, out uint }{
		{0, 14}, {65, 14}, {48, 0}, {48, 33},
	} {
		if _, err := New64(c.in, c.out, rng); err == nil {
			t.Errorf("New64(%d,%d) succeeded, want error", c.in, c.out)
		}
	}
	if _, err := New64(64, 14, rng); err != nil {
		t.Errorf("New64(64,14): %v", err)
	}
}

func TestFunc64Linearity(t *testing.T) {
	f := mustNew64(t, 48, 14, 7)
	prop := func(x, y uint64) bool {
		return f.Hash(x^y) == f.Hash(x)^f.Hash(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFunc64TableMatchesRows(t *testing.T) {
	f := mustNew64(t, 48, 14, 3)
	ref := func(x uint64) uint32 {
		var h uint32
		for i := uint(0); i < f.InputBits(); i++ {
			if x&(1<<i) != 0 {
				h ^= f.Row(i)
			}
		}
		return h
	}
	prop := func(x uint64) bool { return f.Hash(x) == ref(x) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestFunc64HighBitsIgnored(t *testing.T) {
	f := mustNew64(t, 48, 14, 5)
	prop := func(x uint64) bool {
		return f.Hash(x&(1<<48-1)) == f.Hash(x|1<<63)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFunc64ZeroToZero(t *testing.T) {
	f := mustNew64(t, 64, 12, 11)
	if f.Hash(0) != 0 {
		t.Error("Hash(0) != 0")
	}
}

func TestFunc64OutputMasked(t *testing.T) {
	f := mustNew64(t, 64, 10, 2)
	for x := uint64(0); x < 4096; x++ {
		if h := f.Hash(x * 0x9E3779B97F4A7C15); h >= 1<<10 {
			t.Fatalf("hash %d exceeds 10 bits", h)
		}
	}
}

func TestFunc64RowPanics(t *testing.T) {
	f := mustNew64(t, 48, 14, 8)
	defer func() {
		if recover() == nil {
			t.Error("Row(48) did not panic")
		}
	}()
	f.Row(48)
}

func TestFamily64(t *testing.T) {
	fam, err := NewFamily64(4, 48, 14, 77)
	if err != nil {
		t.Fatal(err)
	}
	if fam.K() != 4 {
		t.Fatalf("K = %d", fam.K())
	}
	// Deterministic for seed.
	fam2, _ := NewFamily64(4, 48, 14, 77)
	for i := 0; i < 4; i++ {
		for x := uint64(0); x < 200; x++ {
			if fam.Func(i).Hash(x) != fam2.Func(i).Hash(x) {
				t.Fatal("same seed, different family")
			}
		}
	}
	if _, err := NewFamily64(0, 48, 14, 1); err == nil {
		t.Error("NewFamily64(0) succeeded")
	}
	if _, err := NewFamily64(2, 0, 14, 1); err == nil {
		t.Error("NewFamily64 with zero input width succeeded")
	}
}

func BenchmarkHash64(b *testing.B) {
	f, _ := New64(64, 14, rand.New(rand.NewSource(1)))
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= f.Hash(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}
