// Package h3 implements the H3 family of hash functions of Ramakrishna,
// Fu and Bahcekapili, "Efficient hardware hashing functions for high
// performance computers" (IEEE Trans. Computers 46, 1997), which the
// paper (§3.1) uses inside its Parallel Bloom Filters because the family
// is "hardware friendly": evaluating a member is a tree of XOR gates.
//
// An H3 function from b input bits to w output bits is defined by a
// random b×w bit matrix Q. The hash of x is the XOR of the rows of Q
// selected by the set bits of x:
//
//	h(x) = XOR over i of Q[i] where bit i of x is 1.
//
// Every member is linear over GF(2): h(x XOR y) = h(x) XOR h(y), a
// property the tests verify and which makes incremental hashing cheap.
package h3

import (
	"fmt"
	"math/rand"
)

// MaxInputBits is the widest input this implementation accepts. Packed
// 4-grams of 5-bit characters need 20 bits; 32 leaves room for larger
// alphabets (e.g. the 16-bit Unicode extension discussed in §3.3).
const MaxInputBits = 32

// Func is one member of the H3 family: a hash from inputBits-wide words
// to values in [0, 1<<outputBits).
type Func struct {
	rows       [MaxInputBits]uint32
	inputBits  uint
	outputBits uint
	mask       uint32
	// tab holds byte-chunk lookup tables: because H3 is linear over
	// GF(2), h(x) decomposes exactly into the XOR of one table lookup
	// per input byte. This is the software analogue of the hardware
	// XOR tree evaluating all input bits in parallel, and it makes the
	// software classifier's hot path four table lookups per hash
	// instead of a twenty-iteration bit loop.
	tab [4][256]uint32
}

// New constructs an H3 function with the given input and output widths,
// drawing the matrix rows from rng. Output widths up to 32 bits are
// supported.
func New(inputBits, outputBits uint, rng *rand.Rand) (*Func, error) {
	if inputBits == 0 || inputBits > MaxInputBits {
		return nil, fmt.Errorf("h3: input width %d out of range [1,%d]", inputBits, MaxInputBits)
	}
	if outputBits == 0 || outputBits > 32 {
		return nil, fmt.Errorf("h3: output width %d out of range [1,32]", outputBits)
	}
	f := &Func{
		inputBits:  inputBits,
		outputBits: outputBits,
		mask:       uint32(uint64(1)<<outputBits - 1),
	}
	for i := uint(0); i < inputBits; i++ {
		f.rows[i] = rng.Uint32() & f.mask
	}
	// Build the byte-chunk tables. Rows beyond the input width stay
	// zero, so bits of x above the input width contribute nothing.
	for chunk := 0; chunk < 4; chunk++ {
		for v := 1; v < 256; v++ {
			var h uint32
			for b := uint(0); b < 8; b++ {
				if v&(1<<b) != 0 {
					h ^= f.rows[uint(chunk)*8+b]
				}
			}
			f.tab[chunk][v] = h
		}
	}
	return f, nil
}

// Hash evaluates the function on x. Bits of x above the input width are
// ignored, mirroring the fixed wiring of the hardware XOR tree.
func (f *Func) Hash(x uint32) uint32 {
	return f.tab[0][x&0xFF] ^
		f.tab[1][x>>8&0xFF] ^
		f.tab[2][x>>16&0xFF] ^
		f.tab[3][x>>24]
}

// InputBits returns the configured input width.
func (f *Func) InputBits() uint { return f.inputBits }

// OutputBits returns the configured output width.
func (f *Func) OutputBits() uint { return f.outputBits }

// Row returns row i of the defining matrix, for inspection and tests.
func (f *Func) Row(i uint) uint32 {
	if i >= f.inputBits {
		panic(fmt.Sprintf("h3: row %d out of range [0,%d)", i, f.inputBits))
	}
	return f.rows[i]
}

// Family is an ordered set of k independent H3 functions sharing input
// and output widths — the "k hash functions" block of Figure 1.
type Family struct {
	funcs []*Func
}

// NewFamily draws k independent functions using a deterministic stream
// seeded by seed, so that a software classifier and a simulated hardware
// classifier built with the same seed use identical hash matrices.
func NewFamily(k int, inputBits, outputBits uint, seed int64) (*Family, error) {
	if k <= 0 {
		return nil, fmt.Errorf("h3: family size %d must be positive", k)
	}
	rng := rand.New(rand.NewSource(seed))
	fam := &Family{funcs: make([]*Func, k)}
	for i := range fam.funcs {
		f, err := New(inputBits, outputBits, rng)
		if err != nil {
			return nil, err
		}
		fam.funcs[i] = f
	}
	return fam, nil
}

// K returns the number of functions in the family.
func (fam *Family) K() int { return len(fam.funcs) }

// Func returns function i of the family.
func (fam *Family) Func(i int) *Func { return fam.funcs[i] }

// HashAll evaluates every function on x, writing the k results into dst,
// which must have length at least K. It returns dst[:K]. The k
// evaluations are independent, which is exactly the parallelism the
// hardware exploits by instantiating k XOR trees side by side.
func (fam *Family) HashAll(dst []uint32, x uint32) []uint32 {
	if len(dst) < len(fam.funcs) {
		panic("h3: destination shorter than family")
	}
	for i, f := range fam.funcs {
		dst[i] = f.Hash(x)
	}
	return dst[:len(fam.funcs)]
}
