package h3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, in, out uint, seed int64) *Func {
	t.Helper()
	f, err := New(in, out, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New(%d,%d): %v", in, out, err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ in, out uint }{
		{0, 14}, {33, 14}, {20, 0}, {20, 33},
	} {
		if _, err := New(c.in, c.out, rng); err == nil {
			t.Errorf("New(%d,%d) succeeded, want error", c.in, c.out)
		}
	}
	if _, err := New(20, 14, rng); err != nil {
		t.Errorf("New(20,14): %v", err)
	}
}

func TestZeroHashesToZero(t *testing.T) {
	f := mustNew(t, 20, 14, 42)
	if got := f.Hash(0); got != 0 {
		t.Errorf("Hash(0) = %d, want 0 (H3 is linear)", got)
	}
}

// H3 is linear over GF(2): h(x^y) = h(x)^h(y). This is the defining
// property of the family and must hold for every member.
func TestLinearity(t *testing.T) {
	f := mustNew(t, 20, 14, 7)
	prop := func(x, y uint32) bool {
		return f.Hash(x^y) == f.Hash(x)^f.Hash(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The chunk-table evaluation must agree with the defining bit-loop
// formulation for every input.
func TestTableDecompositionExact(t *testing.T) {
	f := mustNew(t, 20, 14, 31)
	ref := func(x uint32) uint32 {
		var h uint32
		for i := uint(0); i < f.InputBits(); i++ {
			if x&(1<<i) != 0 {
				h ^= f.Row(i)
			}
		}
		return h
	}
	prop := func(x uint32) bool { return f.Hash(x) == ref(x) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSingleBitInputsReturnRows(t *testing.T) {
	f := mustNew(t, 20, 14, 3)
	for i := uint(0); i < 20; i++ {
		if got, want := f.Hash(1<<i), f.Row(i); got != want {
			t.Errorf("Hash(1<<%d) = %#x, want row value %#x", i, got, want)
		}
	}
}

func TestOutputMasked(t *testing.T) {
	f := mustNew(t, 20, 10, 11)
	for x := uint32(0); x < 4096; x++ {
		if h := f.Hash(x); h >= 1<<10 {
			t.Fatalf("Hash(%d) = %d exceeds 10-bit range", x, h)
		}
	}
}

func TestHighBitsIgnored(t *testing.T) {
	f := mustNew(t, 20, 14, 5)
	// With only 20 input bits wired, the upper 12 bits must contribute
	// nothing: Hash(x | hi) == Hash(x & lowmask) for any hi above bit 19.
	direct := func(x uint32) bool {
		return f.Hash(x&0xFFFFF) == f.Hash(x|0x80000000)
	}
	if err := quick.Check(direct, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := mustNew(t, 20, 14, 99)
	b := mustNew(t, 20, 14, 99)
	for x := uint32(0); x < 1000; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatalf("same seed produced different functions at x=%d", x)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustNew(t, 20, 14, 1)
	b := mustNew(t, 20, 14, 2)
	same := 0
	const n = 1000
	for x := uint32(1); x <= n; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	// Two independent 14-bit hashes agree with probability 2^-14; seeing
	// more than a handful of agreements in 1000 trials means the seeds
	// were not independent.
	if same > 5 {
		t.Errorf("functions from different seeds agreed on %d/%d inputs", same, n)
	}
}

// A crude uniformity check: hashing a counter sequence into 256 buckets
// should not leave any bucket empty or grossly overloaded.
func TestRoughUniformity(t *testing.T) {
	f := mustNew(t, 20, 8, 12345)
	var buckets [256]int
	const n = 1 << 16
	for x := uint32(0); x < n; x++ {
		buckets[f.Hash(x)]++
	}
	want := n / 256
	for i, got := range buckets {
		if got < want/2 || got > want*2 {
			t.Errorf("bucket %d has %d entries, want within [%d,%d]", i, got, want/2, want*2)
		}
	}
}

func TestRowPanicsOutOfRange(t *testing.T) {
	f := mustNew(t, 20, 14, 8)
	defer func() {
		if recover() == nil {
			t.Error("Row(20) did not panic")
		}
	}()
	f.Row(20)
}

func TestFamily(t *testing.T) {
	fam, err := NewFamily(4, 20, 14, 77)
	if err != nil {
		t.Fatal(err)
	}
	if fam.K() != 4 {
		t.Fatalf("K = %d, want 4", fam.K())
	}
	dst := make([]uint32, 4)
	got := fam.HashAll(dst, 0xABCDE)
	for i := 0; i < 4; i++ {
		if got[i] != fam.Func(i).Hash(0xABCDE) {
			t.Errorf("HashAll[%d] disagrees with Func(%d).Hash", i, i)
		}
	}
}

func TestFamilyMembersIndependent(t *testing.T) {
	fam, err := NewFamily(4, 20, 14, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fam.K(); i++ {
		for j := i + 1; j < fam.K(); j++ {
			same := 0
			for x := uint32(1); x <= 1000; x++ {
				if fam.Func(i).Hash(x) == fam.Func(j).Hash(x) {
					same++
				}
			}
			if same > 5 {
				t.Errorf("family members %d and %d agree on %d/1000 inputs", i, j, same)
			}
		}
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 20, 14, 1); err == nil {
		t.Error("NewFamily(0,...) succeeded, want error")
	}
	if _, err := NewFamily(2, 0, 14, 1); err == nil {
		t.Error("NewFamily with bad input width succeeded, want error")
	}
}

func TestFamilyDeterministic(t *testing.T) {
	a, _ := NewFamily(6, 20, 12, 9)
	b, _ := NewFamily(6, 20, 12, 9)
	for i := 0; i < 6; i++ {
		for x := uint32(0); x < 100; x++ {
			if a.Func(i).Hash(x) != b.Func(i).Hash(x) {
				t.Fatalf("family member %d differs for same seed", i)
			}
		}
	}
}

func TestHashAllPanicsOnShortDst(t *testing.T) {
	fam, _ := NewFamily(4, 20, 14, 1)
	defer func() {
		if recover() == nil {
			t.Error("HashAll did not panic on short destination")
		}
	}()
	fam.HashAll(make([]uint32, 3), 1)
}

func BenchmarkHash(b *testing.B) {
	f, _ := New(20, 14, rand.New(rand.NewSource(1)))
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= f.Hash(uint32(i) & 0xFFFFF)
	}
	_ = sink
}

func BenchmarkHashAllK4(b *testing.B) {
	fam, _ := NewFamily(4, 20, 14, 1)
	dst := make([]uint32, 4)
	for i := 0; i < b.N; i++ {
		fam.HashAll(dst, uint32(i)&0xFFFFF)
	}
}
