package bloom

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bloomlang/internal/h3"
)

// Blocked Bloom filters: the software analogue of the paper's
// one-clock membership test. The hardware answers all k hash probes
// for an n-gram in a single cycle because the k bit-vectors are
// physically parallel RAMs (§3.1). A cache-line-blocked filter gets
// the same effect from a memory hierarchy: the first hash selects one
// 64-byte block — a single cache line — and the remaining k−1 hashes
// select bits inside that block, so the whole membership test costs
// one line fill no matter how many probes follow.
//
// BlockedSet fuses the filters of all L languages into one structure:
// the per-language blocks for a given block index are laid out
// contiguously (block-major, language-minor), so scoring one n-gram
// against every language touches L consecutive cache lines and the k
// hashes are computed once instead of once per language — the
// software mirror of the hardware scoring all language classifiers
// from one shared hash stage (Figure 1).

const (
	// BlockBits is the block size: 512 bits = 64 bytes, one x86 cache
	// line (and one DDR burst), the unit the hardware analogy is built
	// on.
	BlockBits = 512
	// BlockWords is the block size in 64-bit words.
	BlockWords = BlockBits / 64
	// blockBitAddr is the hash width that addresses a bit within a
	// block: log2(BlockBits).
	blockBitAddr = 9
	// maxProbes bounds the in-block probe count (k−1); with more than
	// eight probes in 512 bits the filter saturates long before the
	// probe loop is the problem.
	maxProbes = 8
	// maxBlocks bounds the per-language block count a constructor or
	// reader will accept (2^22 blocks = 256 MiB per language).
	maxBlocks = 1 << 22
	// maxSetLangs bounds the language count a reader will accept.
	maxSetLangs = 1 << 16
)

// BlockedSet is the fused blocked Bloom filter of L languages: B
// blocks of 512 bits per language, stored block-major and
// language-minor, with one shared block-select hash and k−1 shared
// in-block bit hashes (all from the H3 family, as in the hardware).
// Sharing the hash functions across languages is what makes the
// fused layout possible: one n-gram maps to the same block index b in
// every language, and the L blocks at index b are adjacent in memory.
// Each language's filter remains free of false negatives; false
// positives stay independent across languages because each language
// programs its own bit pattern.
type BlockedSet struct {
	sel    *h3.Func   // block selector: log2(blocks) output bits
	probe  []*h3.Func // k−1 in-block bit selectors: 9 output bits
	words  []uint64   // blocks × langs × BlockWords, block-major
	ns     []int      // per-language programmed element count
	blocks uint32     // power of two ≥ 2
	nLangs int
	k      int
	seed   int64
	inBits uint
}

// NewBlockedSet builds an empty fused filter for langs languages with
// k hash functions (one block selector plus k−1 bit probes) over
// inputBits-wide elements and blocks 512-bit blocks per language.
// blocks must be a power of two so the selector hash addresses blocks
// directly, exactly as the parallel variant addresses its vectors.
func NewBlockedSet(langs, k int, inputBits uint, blocks uint32, seed int64) (*BlockedSet, error) {
	if langs < 1 {
		return nil, fmt.Errorf("bloom: blocked set needs at least one language, got %d", langs)
	}
	if langs > maxSetLangs {
		return nil, fmt.Errorf("bloom: blocked set language count %d exceeds %d", langs, maxSetLangs)
	}
	if k < 2 || k > 1+maxProbes {
		return nil, fmt.Errorf("bloom: blocked filter needs k in [2,%d] (one block-select hash plus k-1 bit probes), got k=%d", 1+maxProbes, k)
	}
	if blocks < 2 || blocks&(blocks-1) != 0 {
		return nil, fmt.Errorf("bloom: block count %d is not a power of two >= 2", blocks)
	}
	if blocks > maxBlocks {
		return nil, fmt.Errorf("bloom: block count %d exceeds %d", blocks, maxBlocks)
	}
	addrBits := uint(0)
	for 1<<addrBits < blocks {
		addrBits++
	}
	selFam, err := h3.NewFamily(1, inputBits, addrBits, seed)
	if err != nil {
		return nil, err
	}
	probeFam, err := h3.NewFamily(k-1, inputBits, blockBitAddr, seed+0x9E3779B9)
	if err != nil {
		return nil, err
	}
	s := &BlockedSet{
		sel:    selFam.Func(0),
		probe:  make([]*h3.Func, k-1),
		words:  make([]uint64, int(blocks)*langs*BlockWords),
		ns:     make([]int, langs),
		blocks: blocks,
		nLangs: langs,
		k:      k,
		seed:   seed,
		inBits: inputBits,
	}
	for i := range s.probe {
		s.probe[i] = probeFam.Func(i)
	}
	return s, nil
}

// Langs returns the number of fused languages.
func (s *BlockedSet) Langs() int { return s.nLangs }

// K returns the number of hash functions (block selector included).
func (s *BlockedSet) K() int { return s.k }

// Blocks returns the per-language block count.
func (s *BlockedSet) Blocks() uint32 { return s.blocks }

// BitsPerLanguage returns one language's filter size in bits.
func (s *BlockedSet) BitsPerLanguage() uint64 { return uint64(s.blocks) * BlockBits }

// N returns the number of elements programmed into language lang.
func (s *BlockedSet) N(lang int) int { return s.ns[lang] }

// Seed returns the construction seed, for serialization.
func (s *BlockedSet) Seed() int64 { return s.seed }

// InputBits returns the hash input width, for serialization.
func (s *BlockedSet) InputBits() uint { return s.inBits }

// Add programs element g into language lang's filter: the selector
// hash picks the block, every probe hash sets one bit inside it.
func (s *BlockedSet) Add(lang int, g uint32) {
	base := (int(s.sel.Hash(g))*s.nLangs + lang) * BlockWords
	blk := s.words[base : base+BlockWords : base+BlockWords]
	for _, f := range s.probe {
		h := f.Hash(g)
		blk[h>>6] |= 1 << (h & 63)
	}
	s.ns[lang]++
}

// AddAll programs every element of gs into language lang.
func (s *BlockedSet) AddAll(lang int, gs []uint32) {
	for _, g := range gs {
		s.Add(lang, g)
	}
}

// Test reports whether g may be a member of language lang's filter. A
// true result may be a false positive; a false result is definitive —
// Add sets exactly the bits Test probes, so the filter never produces
// a false negative.
func (s *BlockedSet) Test(lang int, g uint32) bool {
	base := (int(s.sel.Hash(g))*s.nLangs + lang) * BlockWords
	blk := s.words[base : base+BlockWords : base+BlockWords]
	for _, f := range s.probe {
		h := f.Hash(g)
		if blk[h>>6]&(1<<(h&63)) == 0 {
			return false
		}
	}
	return true
}

// AccumulateInto is the fused scoring kernel: for every n-gram in gs
// it tests all L languages in one pass, adding each language's match
// count into counts (len >= Langs). The k hashes are computed once
// per n-gram; the L per-language blocks share a block index and sit
// on consecutive cache lines. It allocates nothing.
func (s *BlockedSet) AccumulateInto(counts []int, gs []uint32) {
	L := s.nLangs
	_ = counts[L-1]
	if len(s.probe) == 3 {
		s.accumulate3(counts, gs)
		return
	}
	words := s.words
	stride := L * BlockWords
	var wi [maxProbes]uint32
	var mask [maxProbes]uint64
	j := len(s.probe)
	for _, g := range gs {
		base := int(s.sel.Hash(g)) * stride
		for p := 0; p < j; p++ {
			h := s.probe[p].Hash(g)
			wi[p] = h >> 6
			mask[p] = 1 << (h & 63)
		}
		for lang := 0; lang < L; lang++ {
			blk := words[base : base+BlockWords : base+BlockWords]
			hit := true
			for p := 0; p < j; p++ {
				if blk[wi[p]]&mask[p] == 0 {
					hit = false
					break
				}
			}
			if hit {
				counts[lang]++
			}
			base += BlockWords
		}
	}
}

// accumulate3 is AccumulateInto specialized for the paper's default
// k=4 (three in-block probes), with the probe loop unrolled.
func (s *BlockedSet) accumulate3(counts []int, gs []uint32) {
	words := s.words
	L := s.nLangs
	stride := L * BlockWords
	sel, p0, p1, p2 := s.sel, s.probe[0], s.probe[1], s.probe[2]
	for _, g := range gs {
		base := int(sel.Hash(g)) * stride
		a, b, c := p0.Hash(g), p1.Hash(g), p2.Hash(g)
		w0, m0 := a>>6, uint64(1)<<(a&63)
		w1, m1 := b>>6, uint64(1)<<(b&63)
		w2, m2 := c>>6, uint64(1)<<(c&63)
		for lang := 0; lang < L; lang++ {
			blk := words[base : base+BlockWords : base+BlockWords]
			if blk[w0]&m0 != 0 && blk[w1]&m1 != 0 && blk[w2]&m2 != 0 {
				counts[lang]++
			}
			base += BlockWords
		}
	}
}

// Reset clears every language's filter and programmed-element count.
func (s *BlockedSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	for i := range s.ns {
		s.ns[i] = 0
	}
}

// PopCount returns the number of set bits in language lang's filter.
func (s *BlockedSet) PopCount(lang int) int {
	n := 0
	stride := s.nLangs * BlockWords
	for b := 0; b < int(s.blocks); b++ {
		base := b*stride + lang*BlockWords
		for _, w := range s.words[base : base+BlockWords] {
			n += popcount64(w)
		}
	}
	return n
}

// modelM is the per-probe bit budget the §3.1 parallel model sees:
// the language's total bits split evenly across the k−1 probes.
func (s *BlockedSet) modelM() uint32 {
	return uint32(s.BitsPerLanguage() / uint64(len(s.probe)))
}

// FalsePositiveRate returns the expected false positive rate of
// language lang's filter under the paper's §3.1 parallel-variant
// model f = (1 − e^(−N/m))^k applied with k−1 probes and
// m = totalBits/(k−1). The uniform model is exact for the parallel
// filter; blocking adds a small penalty from the Poisson spread of
// elements across blocks, which BlocksForTarget's safety factor
// absorbs.
func (s *BlockedSet) FalsePositiveRate(lang int) float64 {
	return FalsePositiveRate(s.ns[lang], s.modelM(), len(s.probe))
}

// blockSafety discounts the FPR target BlocksForTarget sizes for, to
// absorb the load-variance penalty of blocking (uneven block
// occupancy makes the realized rate exceed the uniform model).
const blockSafety = 0.7

// BlocksForTarget returns the smallest power-of-two block count whose
// modelled false positive rate at load n with k total hashes (k−1
// in-block probes) does not exceed target, with blockSafety headroom
// for the blocking penalty. The result is clamped to [2, maxBlocks].
func BlocksForTarget(n, k int, target float64) uint32 {
	j := k - 1
	if j < 1 {
		j = 1
	}
	blocks := uint32(2)
	t := target * blockSafety
	if n <= 0 || t <= 0 || t >= 1 {
		return blocks
	}
	perProbe := math.Pow(t, 1/float64(j))
	if perProbe >= 1 {
		return blocks
	}
	// (1 − e^(−j·n/T))^j ≤ t  ⇔  T ≥ −j·n / ln(1 − t^(1/j))
	minBits := -float64(j) * float64(n) / math.Log(1-perProbe)
	for float64(blocks)*BlockBits < minBits && blocks < maxBlocks {
		blocks <<= 1
	}
	return blocks
}

// Blocked is a single-language cache-line-blocked Bloom filter: the
// BlockedSet structure with L=1, for standalone use and for the
// property tests that pin the false-positive model.
type Blocked struct {
	set *BlockedSet
}

// NewBlocked builds an empty blocked filter with k hash functions
// (one block selector plus k−1 bit probes) over inputBits-wide
// elements and blocks 512-bit blocks (a power of two ≥ 2).
func NewBlocked(k int, inputBits uint, blocks uint32, seed int64) (*Blocked, error) {
	set, err := NewBlockedSet(1, k, inputBits, blocks, seed)
	if err != nil {
		return nil, err
	}
	return &Blocked{set: set}, nil
}

// K returns the number of hash functions (block selector included).
func (b *Blocked) K() int { return b.set.K() }

// Blocks returns the block count.
func (b *Blocked) Blocks() uint32 { return b.set.Blocks() }

// Bits returns the filter size in bits.
func (b *Blocked) Bits() uint64 { return b.set.BitsPerLanguage() }

// N returns the number of programmed elements.
func (b *Blocked) N() int { return b.set.N(0) }

// Add programs element g.
func (b *Blocked) Add(g uint32) { b.set.Add(0, g) }

// AddAll programs every element of gs.
func (b *Blocked) AddAll(gs []uint32) { b.set.AddAll(0, gs) }

// Test reports possible membership of g (never a false negative).
func (b *Blocked) Test(g uint32) bool { return b.set.Test(0, g) }

// Reset clears the filter.
func (b *Blocked) Reset() { b.set.Reset() }

// PopCount returns the number of set bits.
func (b *Blocked) PopCount() int { return b.set.PopCount(0) }

// FalsePositiveRate returns the modelled false positive rate at
// current load; see (*BlockedSet).FalsePositiveRate.
func (b *Blocked) FalsePositiveRate() float64 { return b.set.FalsePositiveRate(0) }

// Blocked-set serialization: the programmed bits are a pure function
// of (seed, k, inputBits, blocks, insertion multiset), so the format
// records the construction parameters, the per-language counts, and
// the raw words. Writing the same set twice produces identical bytes.
//
//	magic "NGBK" | version u8 | k u8 | inputBits u8 | blocks u32 |
//	langs u32 | seed i64 | langs × n u32 | blocks·langs·8 × word u64
const (
	blockedSetMagic   = "NGBK"
	blockedSetVersion = 1
)

// WriteTo serializes the set in the NGBK binary format.
func (s *BlockedSet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(blockedSetMagic); err != nil {
		return written, err
	}
	written += int64(len(blockedSetMagic))
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(uint8(blockedSetVersion)); err != nil {
		return written, err
	}
	if err := put(uint8(s.k)); err != nil {
		return written, err
	}
	if err := put(uint8(s.inBits)); err != nil {
		return written, err
	}
	if err := put(s.blocks); err != nil {
		return written, err
	}
	if err := put(uint32(s.nLangs)); err != nil {
		return written, err
	}
	if err := put(s.seed); err != nil {
		return written, err
	}
	ns := make([]uint32, len(s.ns))
	for i, n := range s.ns {
		ns[i] = uint32(n)
	}
	if err := put(ns); err != nil {
		return written, err
	}
	if err := put(s.words); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadBlockedSet deserializes a set written by WriteTo.
func ReadBlockedSet(r io.Reader) (*BlockedSet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(blockedSetMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bloom: reading blocked set magic: %w", err)
	}
	if string(magic) != blockedSetMagic {
		return nil, fmt.Errorf("bloom: bad blocked set magic %q, want %q", magic, blockedSetMagic)
	}
	var hdr struct {
		Version   uint8
		K         uint8
		InputBits uint8
		Blocks    uint32
		Langs     uint32
		Seed      int64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("bloom: reading blocked set header: %w", err)
	}
	if hdr.Version != blockedSetVersion {
		return nil, fmt.Errorf("bloom: unsupported blocked set version %d", hdr.Version)
	}
	if hdr.Langs == 0 || hdr.Langs > maxSetLangs {
		return nil, fmt.Errorf("bloom: blocked set claims %d languages, refusing", hdr.Langs)
	}
	s, err := NewBlockedSet(int(hdr.Langs), int(hdr.K), uint(hdr.InputBits), hdr.Blocks, hdr.Seed)
	if err != nil {
		return nil, fmt.Errorf("bloom: blocked set header invalid: %w", err)
	}
	for i := range s.ns {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("bloom: reading blocked set counts: %w", err)
		}
		s.ns[i] = int(n)
	}
	if err := binary.Read(br, binary.LittleEndian, s.words); err != nil {
		return nil, fmt.Errorf("bloom: reading blocked set words: %w", err)
	}
	return s, nil
}
