package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(130) // straddles word boundaries
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("fresh vector has bit %d set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if v.PopCount() != 8 {
		t.Errorf("PopCount = %d, want 8", v.PopCount())
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Errorf("PopCount after Reset = %d, want 0", v.PopCount())
	}
}

func TestBitVectorBounds(t *testing.T) {
	v := NewBitVector(64)
	for name, f := range map[string]func(){
		"Set": func() { v.Set(64) },
		"Get": func() { v.Get(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewBitVectorZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBitVector(0) did not panic")
		}
	}()
	NewBitVector(0)
}

func TestNewParallelValidation(t *testing.T) {
	if _, err := NewParallel(4, 20, 1000, 1); err == nil {
		t.Error("non-power-of-two m accepted")
	}
	if _, err := NewParallel(0, 20, 1024, 1); err == nil {
		t.Error("k=0 accepted")
	}
	p, err := NewParallel(4, 20, 16384, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 || p.M() != 16384 {
		t.Errorf("K=%d M=%d, want 4, 16384", p.K(), p.M())
	}
}

// The defining guarantee: a Bloom filter has no false negatives.
func TestParallelNoFalseNegatives(t *testing.T) {
	p, err := NewParallel(4, 20, 16384, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	members := make([]uint32, 5000)
	for i := range members {
		members[i] = rng.Uint32() & 0xFFFFF
		p.Program(members[i])
	}
	for _, g := range members {
		if !p.Test(g) {
			t.Fatalf("false negative for programmed element %#x", g)
		}
	}
}

// Property-based variant over arbitrary small element sets.
func TestParallelNoFalseNegativesQuick(t *testing.T) {
	prop := func(raw []uint32, seed int64) bool {
		p, err := NewParallel(3, 20, 4096, seed)
		if err != nil {
			return false
		}
		for _, r := range raw {
			p.Program(r & 0xFFFFF)
		}
		for _, r := range raw {
			if !p.Test(r & 0xFFFFF) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelEmptyRejectsEverything(t *testing.T) {
	p, _ := NewParallel(4, 20, 16384, 1)
	for g := uint32(0); g < 10000; g++ {
		if p.Test(g) {
			t.Fatalf("empty filter matched %#x", g)
		}
	}
}

func TestParallelFalsePositiveRateMatchesModel(t *testing.T) {
	// Program N=5000 random 20-bit elements into k=4, m=16Kbit: the
	// paper's most conservative configuration, expected f ≈ 5/1000.
	const (
		k = 4
		m = 16 * 1024
		n = 5000
	)
	p, err := NewParallel(k, 20, m, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	members := map[uint32]bool{}
	for len(members) < n {
		members[rng.Uint32()&0xFFFFF] = true
	}
	for g := range members {
		p.Program(g)
	}
	// Measure the empirical false positive rate over all non-members.
	fp, trials := 0, 0
	for g := uint32(0); g < 1<<20; g++ {
		if members[g] {
			continue
		}
		trials++
		if p.Test(g) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	want := FalsePositiveRate(n, m, k)
	if got < want/2 || got > want*2 {
		t.Errorf("empirical fp rate %.5f not within 2x of model %.5f", got, want)
	}
}

func TestFalsePositiveRateTable1Values(t *testing.T) {
	// Table 1 lists the expected false positives per thousand for
	// N=5000 profiles. Our model must reproduce those columns.
	cases := []struct {
		mKbits   uint32
		k        int
		perMille int
	}{
		{16, 4, 5},
		{16, 3, 18},
		{16, 2, 69},
		{8, 4, 44},
		{8, 3, 95},
		{8, 2, 209},
		{4, 6, 123},
		{4, 5, 174},
	}
	for _, c := range cases {
		f := FalsePositiveRate(5000, c.mKbits*1024, c.k)
		got := PerThousand(f)
		// Allow ±1 per-mille for rounding differences.
		if got < c.perMille-1 || got > c.perMille+1 {
			t.Errorf("m=%dKbit k=%d: fp per thousand = %d, paper says %d", c.mKbits, c.k, got, c.perMille)
		}
	}
}

func TestFalsePositiveRateEdgeCases(t *testing.T) {
	if got := FalsePositiveRate(0, 1024, 4); got != 0 {
		t.Errorf("fp rate with N=0 = %v, want 0", got)
	}
	if got := FalsePositiveRate(-5, 1024, 4); got != 0 {
		t.Errorf("fp rate with N<0 = %v, want 0", got)
	}
	// Monotonicity: more hashes => lower rate (below saturation).
	if FalsePositiveRate(5000, 16384, 4) >= FalsePositiveRate(5000, 16384, 2) {
		t.Error("fp rate not decreasing in k")
	}
	// Larger vectors => lower rate.
	if FalsePositiveRate(5000, 16384, 4) >= FalsePositiveRate(5000, 8192, 4) {
		t.Error("fp rate not decreasing in m")
	}
}

func TestParallelReset(t *testing.T) {
	p, _ := NewParallel(4, 20, 4096, 5)
	p.ProgramAll([]uint32{1, 2, 3})
	if p.N() != 3 {
		t.Fatalf("N = %d, want 3", p.N())
	}
	p.Reset()
	if p.N() != 0 {
		t.Errorf("N after Reset = %d", p.N())
	}
	if p.Test(1) || p.Test(2) || p.Test(3) {
		t.Error("filter still matches after Reset")
	}
	if p.FalsePositiveRate() != 0 {
		t.Error("fp rate nonzero after Reset")
	}
}

func TestTest2MatchesTest(t *testing.T) {
	p, _ := NewParallel(4, 20, 4096, 5)
	p.ProgramAll([]uint32{100, 200})
	r1, r2 := p.Test2(100, 300)
	if r1 != p.Test(100) || r2 != p.Test(300) {
		t.Error("Test2 disagrees with Test")
	}
}

func TestCountMatches(t *testing.T) {
	p, _ := NewParallel(4, 20, 16384, 5)
	p.ProgramAll([]uint32{10, 20, 30})
	got := p.CountMatches([]uint32{10, 20, 30, 40, 50})
	if got < 3 {
		t.Errorf("CountMatches = %d, want >= 3 (no false negatives)", got)
	}
	if got > 5 {
		t.Errorf("CountMatches = %d > number of tested grams", got)
	}
}

func TestClassicNoFalseNegatives(t *testing.T) {
	c, err := NewClassic(4, 20, 64*1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	members := make([]uint32, 5000)
	for i := range members {
		members[i] = rng.Uint32() & 0xFFFFF
		c.Program(members[i])
	}
	for _, g := range members {
		if !c.Test(g) {
			t.Fatalf("false negative for %#x", g)
		}
	}
	c.Reset()
	if c.N() != 0 || c.Test(members[0]) && c.Test(members[1]) && c.Test(members[2]) {
		t.Error("classic filter not cleared by Reset")
	}
}

func TestClassicValidation(t *testing.T) {
	if _, err := NewClassic(4, 20, 1000, 1); err == nil {
		t.Error("non-power-of-two m accepted")
	}
	if _, err := NewClassic(0, 20, 1024, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

// With the same total bit budget (k*m bits), the parallel and classic
// variants should have comparable false positive rates; the parallel
// variant must not be catastrophically worse (it is the hardware-
// implementable one).
func TestParallelVsClassicSameBudget(t *testing.T) {
	const n = 5000
	par := FalsePositiveRate(n, 16*1024, 4)        // 4 vectors x 16Kbit = 64Kbit
	cls := ClassicFalsePositiveRate(n, 64*1024, 4) // one 64Kbit vector
	if par > cls*3 {
		t.Errorf("parallel fp %.5f more than 3x classic fp %.5f at same budget", par, cls)
	}
}

func TestPerThousand(t *testing.T) {
	if got := PerThousand(0.005); got != 5 {
		t.Errorf("PerThousand(0.005) = %d, want 5", got)
	}
	if got := PerThousand(0.2094); got != 209 {
		t.Errorf("PerThousand(0.2094) = %d, want 209", got)
	}
	if got := PerThousand(0); got != 0 {
		t.Errorf("PerThousand(0) = %d, want 0", got)
	}
}

func TestVectorAccessor(t *testing.T) {
	p, _ := NewParallel(3, 20, 4096, 1)
	p.Program(0x12345)
	setBits := 0
	for i := 0; i < p.K(); i++ {
		setBits += p.Vector(i).PopCount()
	}
	if setBits != 3 {
		t.Errorf("one programmed element set %d bits across vectors, want 3", setBits)
	}
}

func TestFalsePositiveRateFormulaExact(t *testing.T) {
	// Spot-check the closed form against a direct computation.
	n, m, k := 5000, uint32(16*1024), 4
	p := 1 - math.Exp(-float64(n)/float64(m))
	want := math.Pow(p, float64(k))
	if got := FalsePositiveRate(n, m, k); math.Abs(got-want) > 1e-12 {
		t.Errorf("FalsePositiveRate = %v, want %v", got, want)
	}
}

func BenchmarkParallelTestK4M16K(b *testing.B) {
	p, _ := NewParallel(4, 20, 16*1024, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p.Program(rng.Uint32() & 0xFFFFF)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Test(uint32(i) & 0xFFFFF)
	}
}

func BenchmarkParallelProgram(b *testing.B) {
	p, _ := NewParallel(4, 20, 16*1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Program(uint32(i) & 0xFFFFF)
	}
}
