// Package bloom implements the Bloom filter variants used by the paper:
// the classic single-vector Bloom filter (Bloom, CACM 1970) and the
// Parallel Bloom Filter of Krishnamurthy et al. that the hardware
// architecture instantiates (§3.1).
//
// In the parallel variant each of the k hash functions addresses an
// independent 1×m bit-vector implemented with one or more physically
// distinct embedded RAMs, so all k lookups proceed in the same clock
// cycle despite the finite number of ports on each RAM. A Bloom filter
// never produces false negatives; false positives occur at rate
// f = (1 − e^(−N/m))^k for the parallel variant with N programmed
// elements (§3.1).
package bloom

import (
	"fmt"
	"math"

	"bloomlang/internal/h3"
)

// BitVector is a 1×m bit-vector backed by 64-bit words, the software
// stand-in for a group of embedded RAM blocks.
type BitVector struct {
	words []uint64
	m     uint32
}

// NewBitVector returns an all-zero vector of m bits.
func NewBitVector(m uint32) *BitVector {
	if m == 0 {
		panic("bloom: zero-length bit-vector")
	}
	return &BitVector{words: make([]uint64, (m+63)/64), m: m}
}

// Len returns the vector length in bits.
func (v *BitVector) Len() uint32 { return v.m }

// Set sets bit i to 1.
func (v *BitVector) Set(i uint32) {
	if i >= v.m {
		panic(fmt.Sprintf("bloom: bit %d out of range [0,%d)", i, v.m))
	}
	v.words[i>>6] |= 1 << (i & 63)
}

// Get returns bit i.
func (v *BitVector) Get(i uint32) bool {
	if i >= v.m {
		panic(fmt.Sprintf("bloom: bit %d out of range [0,%d)", i, v.m))
	}
	return v.words[i>>6]&(1<<(i&63)) != 0
}

// Reset clears every bit, the hardware's bit-vector reset step
// (Algorithm 1, line 4).
func (v *BitVector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// PopCount returns the number of set bits, used to estimate load and in
// tests.
func (v *BitVector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += popcount64(w)
	}
	return n
}

func popcount64(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// Parallel is the Parallel Bloom Filter of §3.1: k hash functions of the
// hardware-friendly H3 family, each referencing its own 1×m bit-vector.
// One Parallel Bloom Filter stores the n-gram profile of one language.
type Parallel struct {
	family  *h3.Family
	vectors []*BitVector
	m       uint32
	n       int // number of elements programmed
}

// NewParallel builds a filter with k hash functions over inputBits-wide
// elements and k independent m-bit vectors. m must be a power of two so
// a hash output addresses the vector directly, as in the hardware where
// the address lines of the embedded RAM are driven straight from the
// XOR tree.
func NewParallel(k int, inputBits uint, m uint32, seed int64) (*Parallel, error) {
	if m == 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("bloom: vector length %d is not a power of two", m)
	}
	outputBits := uint(0)
	for 1<<outputBits < m {
		outputBits++
	}
	family, err := h3.NewFamily(k, inputBits, outputBits, seed)
	if err != nil {
		return nil, err
	}
	p := &Parallel{
		family:  family,
		vectors: make([]*BitVector, k),
		m:       m,
	}
	for i := range p.vectors {
		p.vectors[i] = NewBitVector(m)
	}
	return p, nil
}

// K returns the number of hash functions.
func (p *Parallel) K() int { return p.family.K() }

// M returns the per-vector length in bits.
func (p *Parallel) M() uint32 { return p.m }

// N returns the number of elements programmed since the last Reset.
func (p *Parallel) N() int { return p.n }

// Program sets the bits for element g in every vector — Algorithm 1's
// Set procedure applied to one n-gram.
func (p *Parallel) Program(g uint32) {
	for i, v := range p.vectors {
		v.Set(p.family.Func(i).Hash(g))
	}
	p.n++
}

// ProgramAll programs every element of a profile.
func (p *Parallel) ProgramAll(gs []uint32) {
	for _, g := range gs {
		p.Program(g)
	}
}

// Test reports whether g may be a member: the bitwise AND of the bit
// values at each hash address (Algorithm 1's Test procedure). A true
// result may be a false positive; a false result is definitive.
func (p *Parallel) Test(g uint32) bool {
	for i, v := range p.vectors {
		if !v.Get(p.family.Func(i).Hash(g)) {
			return false
		}
	}
	return true
}

// Test2 tests two n-grams in one call, mirroring the dual-ported
// embedded RAMs that let the hardware test two input n-grams
// simultaneously (§3.2). Functionally it is two independent tests; the
// cycle-accounting value of the pairing lives in the system simulator.
func (p *Parallel) Test2(g1, g2 uint32) (bool, bool) {
	return p.Test(g1), p.Test(g2)
}

// CountMatches tests every n-gram in gs and returns the number of
// matches, the per-language counter the hardware increments.
func (p *Parallel) CountMatches(gs []uint32) int {
	n := 0
	for _, g := range gs {
		if p.Test(g) {
			n++
		}
	}
	return n
}

// Reset clears all vectors and the programmed-element count.
func (p *Parallel) Reset() {
	for _, v := range p.vectors {
		v.Reset()
	}
	p.n = 0
}

// FalsePositiveRate returns the filter's expected false positive rate at
// its current load, using the paper's model f = (1 − e^(−N/m))^k.
func (p *Parallel) FalsePositiveRate() float64 {
	return FalsePositiveRate(p.n, p.m, p.K())
}

// Vector returns vector i, for tests and for the simulator's
// RAM-accounting.
func (p *Parallel) Vector(i int) *BitVector { return p.vectors[i] }

// Hash returns hash function i applied to g — the address the hardware
// drives onto RAM i's address lines. Exposed for the RTL pipeline
// model, which stages hashing and RAM reads in separate cycles.
func (p *Parallel) Hash(i int, g uint32) uint32 { return p.family.Func(i).Hash(g) }

// Func returns hash function i itself, exposing the H3 matrix to the
// VHDL generator (which instantiates each function as an XOR tree with
// the matrix baked into the netlist).
func (p *Parallel) Func(i int) *h3.Func { return p.family.Func(i) }

// Classic is the textbook single-vector Bloom filter: k hash functions
// share one m-bit vector. It exists as an ablation comparator for the
// parallel variant (same total bit budget, different structure) and to
// document why the hardware cannot use it: a single embedded RAM has
// only two ports, so k>2 lookups per cycle are impossible without
// replication.
type Classic struct {
	family *h3.Family
	vector *BitVector
	n      int
}

// NewClassic builds a classic filter with k hashes into one m-bit
// vector (m a power of two).
func NewClassic(k int, inputBits uint, m uint32, seed int64) (*Classic, error) {
	if m == 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("bloom: vector length %d is not a power of two", m)
	}
	outputBits := uint(0)
	for 1<<outputBits < m {
		outputBits++
	}
	family, err := h3.NewFamily(k, inputBits, outputBits, seed)
	if err != nil {
		return nil, err
	}
	return &Classic{family: family, vector: NewBitVector(m)}, nil
}

// K returns the number of hash functions.
func (c *Classic) K() int { return c.family.K() }

// M returns the vector length in bits.
func (c *Classic) M() uint32 { return c.vector.Len() }

// N returns the number of programmed elements.
func (c *Classic) N() int { return c.n }

// Program inserts g.
func (c *Classic) Program(g uint32) {
	for i := 0; i < c.family.K(); i++ {
		c.vector.Set(c.family.Func(i).Hash(g))
	}
	c.n++
}

// ProgramAll inserts every element of gs.
func (c *Classic) ProgramAll(gs []uint32) {
	for _, g := range gs {
		c.Program(g)
	}
}

// Test reports possible membership of g.
func (c *Classic) Test(g uint32) bool {
	for i := 0; i < c.family.K(); i++ {
		if !c.vector.Get(c.family.Func(i).Hash(g)) {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (c *Classic) Reset() {
	c.vector.Reset()
	c.n = 0
}

// FalsePositiveRate returns the classic filter's expected false positive
// rate (1 − e^(−kN/m))^k at current load.
func (c *Classic) FalsePositiveRate() float64 {
	return ClassicFalsePositiveRate(c.n, c.vector.Len(), c.K())
}

// FalsePositiveRate is the paper's §3.1 model for the Parallel Bloom
// Filter: each of the k vectors holds N elements in m bits, a lookup
// succeeds spuriously only if all k independent vectors have the
// addressed bit set: f = (1 − e^(−N/m))^k.
func FalsePositiveRate(n int, m uint32, k int) float64 {
	if n <= 0 {
		return 0
	}
	p := 1 - math.Exp(-float64(n)/float64(m))
	return math.Pow(p, float64(k))
}

// ClassicFalsePositiveRate is the standard single-vector model
// (1 − e^(−kN/m))^k.
func ClassicFalsePositiveRate(n int, m uint32, k int) float64 {
	if n <= 0 {
		return 0
	}
	p := 1 - math.Exp(-float64(k)*float64(n)/float64(m))
	return math.Pow(p, float64(k))
}

// PerThousand converts a rate to the "false positives per thousand"
// unit Table 1 reports, rounded to the nearest integer.
func PerThousand(f float64) int {
	return int(math.Round(f * 1000))
}
