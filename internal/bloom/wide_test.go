package bloom

import (
	"math/rand"
	"testing"
)

func TestParallel64Validation(t *testing.T) {
	if _, err := NewParallel64(4, 48, 1000, 1); err == nil {
		t.Error("non-power-of-two m accepted")
	}
	if _, err := NewParallel64(0, 48, 1024, 1); err == nil {
		t.Error("k=0 accepted")
	}
	p, err := NewParallel64(4, 64, 16384, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 || p.M() != 16384 {
		t.Errorf("K=%d M=%d", p.K(), p.M())
	}
}

func TestParallel64NoFalseNegatives(t *testing.T) {
	p, err := NewParallel64(4, 64, 16384, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	members := make([]uint64, 5000)
	for i := range members {
		members[i] = rng.Uint64()
		p.Program(members[i])
	}
	for _, g := range members {
		if !p.Test(g) {
			t.Fatalf("false negative for %#x", g)
		}
	}
	if p.N() != 5000 {
		t.Errorf("N = %d", p.N())
	}
}

func TestParallel64EmptyRejects(t *testing.T) {
	p, _ := NewParallel64(4, 64, 16384, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if p.Test(rng.Uint64()) {
			t.Fatal("empty wide filter matched")
		}
	}
}

func TestParallel64FalsePositiveRate(t *testing.T) {
	const (
		k = 4
		m = 16 * 1024
		n = 5000
	)
	p, _ := NewParallel64(k, 64, m, 99)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		p.Program(rng.Uint64())
	}
	// Probe fresh random values; collisions with members are
	// negligible in a 64-bit space.
	fp, trials := 0, 200000
	for i := 0; i < trials; i++ {
		if p.Test(rng.Uint64()) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	want := FalsePositiveRate(n, m, k)
	if got < want/2 || got > want*2 {
		t.Errorf("empirical fp %.5f not within 2x of model %.5f", got, want)
	}
	if p.FalsePositiveRate() != want {
		t.Error("FalsePositiveRate accessor disagrees with model")
	}
}

func TestParallel64Reset(t *testing.T) {
	p, _ := NewParallel64(3, 48, 4096, 5)
	p.ProgramAll([]uint64{1, 2, 3})
	p.Reset()
	if p.N() != 0 || p.Test(1) || p.Test(2) || p.Test(3) {
		t.Error("Reset did not clear the wide filter")
	}
}

func BenchmarkParallel64Test(b *testing.B) {
	p, _ := NewParallel64(4, 64, 16*1024, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p.Program(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Test(uint64(i) * 0x9E3779B97F4A7C15)
	}
}
