package bloom

import (
	"fmt"

	"bloomlang/internal/h3"
)

// Parallel64 is the Parallel Bloom Filter over wide (up to 64-bit)
// elements, backing the §3.3 Unicode extension. Identical structure to
// Parallel — k independent 1×m vectors, one per hash — with only the
// hash input width changed.
type Parallel64 struct {
	family  *h3.Family64
	vectors []*BitVector
	m       uint32
	n       int
}

// NewParallel64 builds a wide filter with k hash functions over
// inputBits-wide elements (m a power of two).
func NewParallel64(k int, inputBits uint, m uint32, seed int64) (*Parallel64, error) {
	if m == 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("bloom: vector length %d is not a power of two", m)
	}
	outputBits := uint(0)
	for 1<<outputBits < m {
		outputBits++
	}
	family, err := h3.NewFamily64(k, inputBits, outputBits, seed)
	if err != nil {
		return nil, err
	}
	p := &Parallel64{
		family:  family,
		vectors: make([]*BitVector, k),
		m:       m,
	}
	for i := range p.vectors {
		p.vectors[i] = NewBitVector(m)
	}
	return p, nil
}

// K returns the number of hash functions.
func (p *Parallel64) K() int { return p.family.K() }

// M returns the per-vector length in bits.
func (p *Parallel64) M() uint32 { return p.m }

// N returns the number of programmed elements.
func (p *Parallel64) N() int { return p.n }

// Program inserts g.
func (p *Parallel64) Program(g uint64) {
	for i, v := range p.vectors {
		v.Set(p.family.Func(i).Hash(g))
	}
	p.n++
}

// ProgramAll inserts every element of gs.
func (p *Parallel64) ProgramAll(gs []uint64) {
	for _, g := range gs {
		p.Program(g)
	}
}

// Test reports possible membership of g (no false negatives).
func (p *Parallel64) Test(g uint64) bool {
	for i, v := range p.vectors {
		if !v.Get(p.family.Func(i).Hash(g)) {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (p *Parallel64) Reset() {
	for _, v := range p.vectors {
		v.Reset()
	}
	p.n = 0
}

// FalsePositiveRate returns the §3.1 model value at current load.
func (p *Parallel64) FalsePositiveRate() float64 {
	return FalsePositiveRate(p.n, p.m, p.K())
}
