package bloom

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestNewBlockedValidation(t *testing.T) {
	cases := []struct {
		name   string
		langs  int
		k      int
		blocks uint32
	}{
		{"zero languages", 0, 4, 64},
		{"k too small", 1, 1, 64},
		{"k too large", 1, 2 + maxProbes, 64},
		{"one block", 1, 4, 1},
		{"non-power-of-two blocks", 1, 4, 96},
		{"too many blocks", 1, 4, maxBlocks * 2},
	}
	for _, c := range cases {
		if _, err := NewBlockedSet(c.langs, c.k, 20, c.blocks, 1); err == nil {
			t.Errorf("%s: NewBlockedSet(%d, %d, 20, %d, 1) accepted", c.name, c.langs, c.k, c.blocks)
		}
	}
	if _, err := NewBlocked(4, 20, 64, 1); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	b, err := NewBlocked(4, 20, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint32, 2000)
	for i := range keys {
		keys[i] = rng.Uint32() & 0xFFFFF
	}
	b.AddAll(keys)
	if b.N() != len(keys) {
		t.Errorf("N() = %d, want %d", b.N(), len(keys))
	}
	for _, g := range keys {
		if !b.Test(g) {
			t.Fatalf("false negative for programmed key %#x", g)
		}
	}
}

func TestBlockedResetClears(t *testing.T) {
	b, err := NewBlocked(3, 20, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(0x12345)
	if b.PopCount() == 0 {
		t.Fatal("Add set no bits")
	}
	b.Reset()
	if b.PopCount() != 0 || b.N() != 0 {
		t.Errorf("Reset left %d bits, n=%d", b.PopCount(), b.N())
	}
	if b.Test(0x12345) {
		t.Error("empty filter reports membership")
	}
}

func TestBlockedSetDeterministicAcrossInstances(t *testing.T) {
	build := func() *BlockedSet {
		s, err := NewBlockedSet(3, 4, 20, 128, 99)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for lang := 0; lang < 3; lang++ {
			for i := 0; i < 500; i++ {
				s.Add(lang, rng.Uint32()&0xFFFFF)
			}
		}
		return s
	}
	a, b := build(), build()
	for g := uint32(0); g < 1<<20; g += 997 {
		for lang := 0; lang < 3; lang++ {
			if a.Test(lang, g) != b.Test(lang, g) {
				t.Fatalf("same-seed sets disagree on lang %d key %#x", lang, g)
			}
		}
	}
}

func TestBlockedSetAccumulateMatchesTest(t *testing.T) {
	const langs = 5
	s, err := NewBlockedSet(langs, 4, 20, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for lang := 0; lang < langs; lang++ {
		for i := 0; i < 800; i++ {
			s.Add(lang, rng.Uint32()&0xFFFFF)
		}
	}
	gs := make([]uint32, 4000)
	for i := range gs {
		gs[i] = rng.Uint32() & 0xFFFFF
	}
	want := make([]int, langs)
	for _, g := range gs {
		for lang := 0; lang < langs; lang++ {
			if s.Test(lang, g) {
				want[lang]++
			}
		}
	}
	got := make([]int, langs)
	s.AccumulateInto(got, gs)
	for lang := range want {
		if got[lang] != want[lang] {
			t.Errorf("lang %d: fused count %d, per-key count %d", lang, got[lang], want[lang])
		}
	}
	// AccumulateInto accumulates: a second pass doubles every count.
	s.AccumulateInto(got, gs)
	for lang := range want {
		if got[lang] != 2*want[lang] {
			t.Errorf("lang %d: second pass gave %d, want %d", lang, got[lang], 2*want[lang])
		}
	}
}

// TestBlockedSetGenericProbeCountMatchesTest covers the generic
// (non-unrolled) kernel path with k != 4.
func TestBlockedSetGenericProbeCountMatchesTest(t *testing.T) {
	for _, k := range []int{2, 3, 6, 9} {
		s, err := NewBlockedSet(3, k, 20, 64, 21)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for lang := 0; lang < 3; lang++ {
			for i := 0; i < 500; i++ {
				s.Add(lang, rng.Uint32()&0xFFFFF)
			}
		}
		gs := make([]uint32, 2000)
		for i := range gs {
			gs[i] = rng.Uint32() & 0xFFFFF
		}
		want := make([]int, 3)
		for _, g := range gs {
			for lang := 0; lang < 3; lang++ {
				if s.Test(lang, g) {
					want[lang]++
				}
			}
		}
		got := make([]int, 3)
		s.AccumulateInto(got, gs)
		for lang := range want {
			if got[lang] != want[lang] {
				t.Errorf("k=%d lang %d: fused count %d, want %d", k, lang, got[lang], want[lang])
			}
		}
	}
}

// TestBlockedMeasuredFalsePositiveRate is the measured-FPR property
// test: program N random keys, probe M keys known to be absent, and
// check the observed false-positive rate against the §3.1 model
// f = (1 − e^(−N/m))^k applied to the blocked geometry (k−1 probes,
// m = totalBits/(k−1)) — the same formula documented for the parallel
// variant. The uniform model undercounts slightly because block loads
// are Poisson-spread, so the band is asymmetric: well above half the
// model, below twice the model plus sampling noise.
func TestBlockedMeasuredFalsePositiveRate(t *testing.T) {
	const (
		inputBits = 20
		n         = 5000
		probes    = 200000
	)
	for _, tc := range []struct {
		k      int
		blocks uint32
	}{
		{4, 256}, // the paper's default k, sized as the blocked backend sizes it
		{4, 128}, // heavier load
		{5, 256},
	} {
		b, err := NewBlocked(tc.k, inputBits, tc.blocks, 1234)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		programmed := make(map[uint32]bool, n)
		for len(programmed) < n {
			g := rng.Uint32() & (1<<inputBits - 1)
			if !programmed[g] {
				programmed[g] = true
				b.Add(g)
			}
		}
		model := b.FalsePositiveRate()
		if model <= 0 || model >= 1 {
			t.Fatalf("k=%d blocks=%d: degenerate model FPR %v", tc.k, tc.blocks, model)
		}
		falsePos, tested := 0, 0
		for tested < probes {
			g := rng.Uint32() & (1<<inputBits - 1)
			if programmed[g] {
				continue
			}
			tested++
			if b.Test(g) {
				falsePos++
			}
		}
		observed := float64(falsePos) / float64(tested)
		// Binomial standard deviation of the observation itself.
		sigma := math.Sqrt(model * (1 - model) / float64(tested))
		lo := model*0.5 - 5*sigma
		hi := model*2.0 + 5*sigma
		if observed < lo || observed > hi {
			t.Errorf("k=%d blocks=%d: observed FPR %.5f outside [%.5f, %.5f] around model %.5f",
				tc.k, tc.blocks, observed, lo, hi, model)
		}
	}
}

// TestBlocksForTargetMeetsParallelModel pins the sizing contract the
// blocked backend relies on: at the paper's default configuration the
// chosen block count gives a modelled FPR no worse than the parallel
// variant's at the same load.
func TestBlocksForTargetMeetsParallelModel(t *testing.T) {
	const n, k = 5000, 4
	var mBits uint32 = 16 * 1024
	target := FalsePositiveRate(n, mBits, k)
	blocks := BlocksForTarget(n, k, target)
	if blocks&(blocks-1) != 0 || blocks < 2 {
		t.Fatalf("BlocksForTarget returned %d, not a power of two >= 2", blocks)
	}
	b, err := NewBlocked(k, 20, blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		b.Add(rng.Uint32() & 0xFFFFF)
	}
	if got := b.FalsePositiveRate(); got > target {
		t.Errorf("blocked model FPR %v exceeds parallel target %v at %d blocks", got, target, blocks)
	}
	// Degenerate targets still give a usable geometry.
	for _, bad := range []float64{0, -1, 1, 2} {
		if got := BlocksForTarget(n, k, bad); got < 2 || got&(got-1) != 0 {
			t.Errorf("BlocksForTarget(%d, %d, %v) = %d", n, k, bad, got)
		}
	}
}

func TestBlockedSetSerializationRoundTrip(t *testing.T) {
	s, err := NewBlockedSet(4, 4, 20, 64, 55)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for lang := 0; lang < 4; lang++ {
		for i := 0; i < 300+100*lang; i++ {
			s.Add(lang, rng.Uint32()&0xFFFFF)
		}
	}
	var buf bytes.Buffer
	nw, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nw != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", nw, buf.Len())
	}
	got, err := ReadBlockedSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Langs() != s.Langs() || got.K() != s.K() || got.Blocks() != s.Blocks() || got.Seed() != s.Seed() {
		t.Fatalf("header did not round-trip: %+v", got)
	}
	for lang := 0; lang < 4; lang++ {
		if got.N(lang) != s.N(lang) {
			t.Errorf("lang %d: n=%d, want %d", lang, got.N(lang), s.N(lang))
		}
	}
	for g := uint32(0); g < 1<<20; g += 811 {
		for lang := 0; lang < 4; lang++ {
			if got.Test(lang, g) != s.Test(lang, g) {
				t.Fatalf("reloaded set disagrees on lang %d key %#x", lang, g)
			}
		}
	}
	// Byte stability: writing the same state twice is identical.
	var again bytes.Buffer
	if _, err := s.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("serialization is not byte-stable")
	}
}

func TestReadBlockedSetRejectsCorruptInput(t *testing.T) {
	s, err := NewBlockedSet(2, 4, 20, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if _, err := s.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("XXXXrest-of-the-file"),
		"truncated":   full.Bytes()[:full.Len()/3],
		"bad version": append([]byte("NGBK\xff"), full.Bytes()[5:]...),
	}
	for name, data := range cases {
		if _, err := ReadBlockedSet(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBlockedSet accepted malformed input", name)
		}
	}
}
