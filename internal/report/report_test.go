package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "m", "k", "Accuracy")
	tab.AddRow("16", "4", "99.45%")
	tab.AddRow("8", "2", "95.57%")
	s := tab.String()
	if !strings.HasPrefix(s, "Table X\n") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: "Accuracy" starts at the same offset in every row.
	idx := strings.Index(lines[1], "Accuracy")
	if !strings.HasPrefix(lines[3][idx:], "99.45%") {
		t.Errorf("column misaligned:\n%s", s)
	}
}

func TestTableRowPaddingAndTruncation(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1")           // short row pads
	tab.AddRow("1", "2", "3") // long row truncates
	s := tab.String()
	if strings.Contains(s, "3") {
		t.Errorf("extra cell not dropped:\n%s", s)
	}
	if len(strings.Split(strings.TrimRight(s, "\n"), "\n")) != 4 {
		t.Errorf("unexpected line count:\n%s", s)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "name", "value", "count")
	tab.AddRowf("x", 3.14159, 42)
	s := tab.String()
	if !strings.Contains(s, "3.14") {
		t.Errorf("float not formatted to 2 places:\n%s", s)
	}
	if !strings.Contains(s, "42") {
		t.Errorf("int missing:\n%s", s)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 4", "MB/sec", 10)
	c.Add("Async", 470)
	c.Add("Sync", 228)
	s := c.String()
	if !strings.Contains(s, "Figure 4") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	asyncHashes := strings.Count(lines[1], "#")
	syncHashes := strings.Count(lines[2], "#")
	if asyncHashes != 10 {
		t.Errorf("max bar = %d chars, want full width 10", asyncHashes)
	}
	if syncHashes >= asyncHashes || syncHashes == 0 {
		t.Errorf("bars not proportional: %d vs %d", asyncHashes, syncHashes)
	}
	if !strings.Contains(s, "470.0 MB/sec") {
		t.Errorf("value/unit missing:\n%s", s)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("", "x", 5)
	c.Add("zero", 0)
	s := c.String()
	if strings.Contains(s, "#") {
		t.Errorf("zero-value bar rendered hashes:\n%s", s)
	}
}

func TestBarChartDefaultWidth(t *testing.T) {
	c := NewBarChart("", "u", 0)
	c.Add("a", 1)
	if n := strings.Count(c.String(), "#"); n != 50 {
		t.Errorf("default width = %d, want 50", n)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(470, 5.5); got != "85.45x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio by zero = %q", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.9945); got != "99.45%" {
		t.Errorf("Percent = %q", got)
	}
}
