// Package report renders the experiment harness's tables and figures as
// aligned text, in the layout of the paper's Tables 1-4 and Figure 4.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header width are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders a labelled horizontal bar chart — the textual stand-in
// for Figure 4's grouped bars.
type BarChart struct {
	title string
	unit  string
	width int
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// NewBarChart starts a chart. width is the maximum bar length in
// characters (default 50 when <= 0).
func NewBarChart(title, unit string, width int) *BarChart {
	if width <= 0 {
		width = 50
	}
	return &BarChart{title: title, unit: unit, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label: label, value: value})
}

// String renders the chart with bars scaled to the maximum value.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	maxVal := 0.0
	labelW := 0
	for _, bar := range c.bars {
		if bar.value > maxVal {
			maxVal = bar.value
		}
		if len(bar.label) > labelW {
			labelW = len(bar.label)
		}
	}
	for _, bar := range c.bars {
		n := 0
		if maxVal > 0 {
			n = int(bar.value / maxVal * float64(c.width))
		}
		fmt.Fprintf(&b, "%-*s | %s %.1f %s\n", labelW, bar.label, strings.Repeat("#", n), bar.value, c.unit)
	}
	return b.String()
}

// Ratio renders a speedup comparison like the paper's "85x" headline.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Percent renders a fraction as a percentage with two decimals, the
// accuracy format of Table 1.
func Percent(f float64) string {
	return fmt.Sprintf("%.2f%%", 100*f)
}
