package bloomlang

import (
	"encoding/json"
	"os"
	"testing"
)

// goldenAccuracy is the committed accuracy-regression gate
// (testdata/golden_accuracy.json): a deterministic seeded corpus spec
// (the same generator cmd/corpusgen drives), the classifier
// configuration, and the per-language accuracy floor no backend may
// drop below. Corpus generation, training, and match counting are all
// integer-deterministic, so a floor violation is a real behavioural
// change — speed work can never silently trade away classification
// quality.
type goldenAccuracy struct {
	Corpus CorpusConfig       `json:"corpus"`
	Config Config             `json:"config"`
	Floors map[string]float64 `json:"floors"`
}

func loadGolden(t testing.TB) goldenAccuracy {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_accuracy.json")
	if err != nil {
		t.Fatal(err)
	}
	var g goldenAccuracy
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing golden accuracy file: %v", err)
	}
	if len(g.Floors) == 0 {
		t.Fatal("golden accuracy file has no floors")
	}
	return g
}

// TestGoldenAccuracyFloors evaluates every registered built-in backend
// on the committed corpus spec and fails if any language's accuracy
// falls below its golden floor.
func TestGoldenAccuracyFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("golden accuracy evaluation generates and classifies a corpus")
	}
	g := loadGolden(t)
	corp, err := GenerateCorpus(g.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Train(g.Config, corp)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Backends() {
		backend, err := ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			clf, err := NewClassifier(ps, backend)
			if err != nil {
				// Backends registered by other tests in this package may
				// reject the golden config; the gate covers the built-ins.
				t.Skipf("backend %s unavailable under golden config: %v", name, err)
			}
			ev := NewEngine(clf, 0).Evaluate(corp)
			if len(ev.PerLanguage) != len(g.Floors) {
				t.Fatalf("evaluated %d languages, golden file has %d floors", len(ev.PerLanguage), len(g.Floors))
			}
			for lang, floor := range g.Floors {
				acc, ok := ev.PerLanguage[lang]
				if !ok {
					t.Errorf("language %q in golden file was not evaluated", lang)
					continue
				}
				if acc < floor {
					t.Errorf("%s accuracy %.4f dropped below golden floor %.4f", lang, acc, floor)
				}
			}
			t.Logf("average accuracy %.4f (min %.4f, max %.4f)", ev.Average, ev.Min, ev.Max)
		})
	}
}
