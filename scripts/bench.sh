#!/usr/bin/env bash
# Run the Detect benchmarks and write the results as JSON so the
# performance trajectory is tracked per PR. Usage:
#
#   scripts/bench.sh [OUT.json] [BENCHTIME]
#
# Defaults: OUT=BENCH.json, BENCHTIME=200ms (raise for stable numbers,
# e.g. scripts/bench.sh BENCH_pr3.json 1s).
set -euo pipefail

out=${1:-BENCH.json}
benchtime=${2:-200ms}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Detect' -benchtime "$benchtime" -benchmem ./... | tee "$raw" >&2

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
  name = $1; iters = $2; ns = ""; bop = ""; aop = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bop = $i
    if ($(i+1) == "allocs/op") aop = $i
  }
  if (ns == "") next
  line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
  if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
  if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
  line = line "}"
  bench[n++] = line
}
END {
  printf "{\n"
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n-1 ? "," : "")
  printf "  ]\n"
  printf "}\n"
}' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
[ "$count" -gt 0 ] || { echo "bench: no benchmark results parsed" >&2; exit 1; }
echo "bench: wrote $count results to $out" >&2
