#!/usr/bin/env bash
# Run the Detect benchmarks and write the results as JSON so the
# performance trajectory is tracked per PR. Usage:
#
#   scripts/bench.sh [OUT.json] [BENCHTIME] [BASELINE.json]
#
# Defaults: OUT=BENCH.json, BENCHTIME=200ms (raise for stable numbers,
# e.g. scripts/bench.sh BENCH_pr3.json 1s).
#
# When BASELINE.json (a previous run's output, e.g. the committed
# BENCH_pr3.json) is given, the single-document Detect hot-path
# benchmarks (BenchmarkDetector and BenchmarkDetectorBackends/*) are
# diffed against it and the run fails if any benchmark present in both
# files regressed by more than REGRESSION_PCT (default 20%). Backends
# new in this run have no baseline entry and are reported, not gated.
set -euo pipefail

out=${1:-BENCH.json}
benchtime=${2:-200ms}
baseline=${3:-}
regression_pct=${REGRESSION_PCT:-20}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Detect' -benchtime "$benchtime" -benchmem ./... | tee "$raw" >&2

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
  name = $1; iters = $2; ns = ""; bop = ""; aop = ""
  # Strip the -GOMAXPROCS suffix go test appends on multi-core
  # machines, so result names are machine-independent and diffable.
  sub(/-[0-9]+$/, "", name)
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bop = $i
    if ($(i+1) == "allocs/op") aop = $i
  }
  if (ns == "") next
  line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
  if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
  if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
  line = line "}"
  bench[n++] = line
}
END {
  printf "{\n"
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n-1 ? "," : "")
  printf "  ]\n"
  printf "}\n"
}' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
[ "$count" -gt 0 ] || { echo "bench: no benchmark results parsed" >&2; exit 1; }
echo "bench: wrote $count results to $out" >&2

if [ -n "$baseline" ]; then
  if [ ! -r "$baseline" ]; then
    echo "bench: baseline $baseline not readable" >&2
    exit 1
  fi
  echo "bench: gating Detect hot path against $baseline (limit +${regression_pct}%)" >&2
  awk -v pct="$regression_pct" '
  # Both files use the one-benchmark-per-line format this script writes,
  # so a line-oriented parse is enough: pull out name and ns_per_op.
  function parse(line) {
    name = ""; ns = ""
    if (match(line, /"name": "[^"]+"/)) {
      name = substr(line, RSTART + 9, RLENGTH - 10)
      # Tolerate baselines written before the -GOMAXPROCS suffix was
      # stripped at generation time.
      sub(/-[0-9]+$/, "", name)
    }
    if (match(line, /"ns_per_op": [0-9.]+/)) {
      ns = substr(line, RSTART + 13, RLENGTH - 13)
    }
  }
  # Gate the single-document Detect hot path and the segmentation hot
  # path; Rank/Batch allocate or fan out by design and are tracked but
  # not gated.
  function gated(name) {
    return name == "BenchmarkDetector" || name ~ /^BenchmarkDetectorBackends\// || name ~ /^BenchmarkDetectSpans\//
  }
  NR == FNR {
    parse($0)
    if (name != "" && ns != "") base[name] = ns
    next
  }
  {
    parse($0)
    if (name == "" || ns == "" || !gated(name)) next
    if (!(name in base)) {
      printf "bench:   new   %-45s %12.0f ns/op (no baseline)\n", name, ns
      next
    }
    delta = 100 * (ns - base[name]) / base[name]
    status = "ok"
    if (delta > pct) { status = "REGRESSED"; failed = 1 }
    printf "bench:   %-5s %-45s %12.0f -> %.0f ns/op (%+.1f%%)\n", status, name, base[name], ns, delta
  }
  END { exit failed ? 1 : 0 }
  ' "$baseline" "$out" >&2 || {
    echo "bench: Detect regressed more than ${regression_pct}% against $baseline" >&2
    exit 1
  }
fi
