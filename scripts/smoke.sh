#!/usr/bin/env bash
# End-to-end smoke test of the profile lifecycle: generate a corpus,
# train a registry version with the streaming trainer, serve it with
# langidd, detect over HTTP, train + activate a second version, hot
# swap it via /admin/reload, and assert /statsz reports the new
# version. Run from the repository root: scripts/smoke.sh
set -euo pipefail

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

addr="127.0.0.1:18321"
base="http://$addr"

echo "smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/corpusgen ./cmd/langid ./cmd/langidd

echo "smoke: generating corpus"
"$tmp/bin/corpusgen" -out "$tmp/corpus" -docs 40 -words 150 -train 0.25 -langs en,es,fi,pt >/dev/null

echo "smoke: daemon with no profile source must exit non-zero with a clear message"
if "$tmp/bin/langidd" -addr "$addr" 2>"$tmp/nosource.err"; then
  fail "langidd with no profile source exited zero"
fi
grep -q "no profiles to serve" "$tmp/nosource.err" || fail "unclear no-source error: $(cat "$tmp/nosource.err")"

echo "smoke: training v000001 into the registry"
"$tmp/bin/langid" train -corpus "$tmp/corpus" -registry "$tmp/registry" -activate >/dev/null
"$tmp/bin/langid" profiles -registry "$tmp/registry" | grep -q '^\* v000001' \
  || fail "v000001 not listed as active"

echo "smoke: starting langidd"
"$tmp/bin/langidd" -registry "$tmp/registry" -addr "$addr" -max-body 65536 &
daemon_pid=$!
for i in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || fail "daemon never became healthy"

echo "smoke: /detect"
detect=$(curl -fsS -X POST --data \
  "el consejo y la comision adoptan todas las medidas necesarias para la aplicacion del presente reglamento" \
  "$base/detect")
echo "$detect" | grep -q '"language":"es"' || fail "/detect did not say es: $detect"

echo "smoke: /statsz reports v000001"
curl -fsS "$base/statsz" | grep -q '"profile_version":"v000001"' || fail "statsz not on v000001"

echo "smoke: training + activating v000002"
"$tmp/bin/langid" train -corpus "$tmp/corpus" -t 3000 -registry "$tmp/registry" -activate >/dev/null

echo "smoke: /admin/reload hot swap"
reload=$(curl -fsS -X POST "$base/admin/reload")
echo "$reload" | grep -q '"active":"v000002"' || fail "reload did not activate v000002: $reload"
echo "$reload" | grep -q '"changed":true' || fail "reload reported no change: $reload"
curl -fsS "$base/statsz" | grep -q '"profile_version":"v000002"' || fail "statsz not on v000002"

echo "smoke: detection still healthy after the swap"
detect=$(curl -fsS -X POST --data \
  "the council shall adopt the measures necessary for the application of this regulation" \
  "$base/detect")
echo "$detect" | grep -q '"language":"en"' || fail "post-swap /detect did not say en: $detect"

echo "smoke: rollback + SIGHUP reload"
"$tmp/bin/langid" profiles -registry "$tmp/registry" -rollback >/dev/null
kill -HUP "$daemon_pid"
for i in $(seq 1 50); do
  curl -fsS "$base/statsz" | grep -q '"profile_version":"v000001"' && break
  sleep 0.1
done
curl -fsS "$base/statsz" | grep -q '"profile_version":"v000001"' || fail "SIGHUP did not roll back to v000001"

echo "smoke: oversized body answers 413 JSON"
code=$(head -c 200000 /dev/zero | tr '\0' 'a' | \
  curl -s -o "$tmp/413.json" -w '%{http_code}' -X POST --data-binary @- "$base/detect" || true)
[ "$code" = "413" ] || fail "oversized body got $code, want 413"
grep -q '"status":413' "$tmp/413.json" || fail "413 body is not the JSON envelope: $(cat "$tmp/413.json")"

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "smoke: OK"
