package bloomlang

import (
	"encoding/json"
	"os"
	"testing"
)

// goldenSegments is the committed segmentation-regression gate
// (testdata/golden_segments.json): a deterministic seeded training
// corpus, a deterministic mixed-language document set with known byte
// boundaries (the same generator cmd/corpusgen -mixed drives), the
// classifier and segmentation configurations, and the per-language
// byte-level F1 floor no backend may drop below. Everything in the
// pipeline is integer-deterministic, so a floor violation is a real
// behavioural change — hot-path work on the fused kernel can never
// silently degrade boundary quality.
type goldenSegments struct {
	Corpus  CorpusConfig       `json:"corpus"`
	Mixed   MixedCorpusConfig  `json:"mixed"`
	Config  Config             `json:"config"`
	Segment SegmentConfig      `json:"segment"`
	Floors  map[string]float64 `json:"floors"`
}

func loadGoldenSegments(t testing.TB) goldenSegments {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_segments.json")
	if err != nil {
		t.Fatal(err)
	}
	var g goldenSegments
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing golden segments file: %v", err)
	}
	if len(g.Floors) == 0 {
		t.Fatal("golden segments file has no floors")
	}
	return g
}

// segmentationF1 scores predicted spans against the ground-truth
// tiling, byte by byte: for each language, precision is the fraction
// of bytes predicted as that language that truly are, recall the
// fraction of true bytes recovered, and F1 their harmonic mean. Byte
// F1 penalizes both mislabelled spans and misplaced boundaries, which
// is why it gates boundary quality.
func segmentationF1(t testing.TB, det *Detector, seg SegmentConfig, docs []MixedDocument) map[string]float64 {
	t.Helper()
	tp := map[string]int{}
	fp := map[string]int{}
	fn := map[string]int{}
	for _, d := range docs {
		spans, err := det.DetectSpans(d.Text, seg)
		if err != nil {
			t.Fatal(err)
		}
		// Walk both tilings; attribute every byte once.
		truthAt := func(pos int) string {
			for _, s := range d.Segments {
				if pos >= s.Start && pos < s.End {
					return s.Lang
				}
			}
			return ""
		}
		for _, sp := range spans {
			for pos := sp.Start; pos < sp.End; pos++ {
				truth := truthAt(pos)
				switch {
				case sp.Lang == truth:
					tp[truth]++
				default:
					fn[truth]++
					if sp.Lang != "" {
						fp[sp.Lang]++
					}
				}
			}
		}
	}
	f1 := map[string]float64{}
	for lang := range tp {
		denom := float64(2*tp[lang] + fp[lang] + fn[lang])
		if denom > 0 {
			f1[lang] = float64(2*tp[lang]) / denom
		}
	}
	for lang := range fn {
		if _, ok := f1[lang]; !ok && lang != "" {
			f1[lang] = 0
		}
	}
	return f1
}

// TestGoldenSegmentationFloors evaluates every built-in backend on the
// committed mixed-document spec and fails if any language's byte-level
// segmentation F1 falls below its golden floor.
func TestGoldenSegmentationFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("golden segmentation evaluation generates and segments a corpus")
	}
	g := loadGoldenSegments(t)
	corp, err := GenerateCorpus(g.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Train(g.Config, corp)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := GenerateMixedCorpus(g.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Backends() {
		backend, err := ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			det, err := NewDetector(ps, WithBackend(backend))
			if err != nil {
				// Backends registered by other tests in this package may
				// reject the golden config; the gate covers the built-ins.
				t.Skipf("backend %s unavailable under golden config: %v", name, err)
			}
			f1 := segmentationF1(t, det, g.Segment, docs)
			if len(f1) != len(g.Floors) {
				t.Fatalf("evaluated %d languages, golden file has %d floors", len(f1), len(g.Floors))
			}
			var sum, min float64 = 0, 1
			for lang, floor := range g.Floors {
				got, ok := f1[lang]
				if !ok {
					t.Errorf("language %q in golden file was not evaluated", lang)
					continue
				}
				if got < floor {
					t.Errorf("%s segmentation F1 %.4f dropped below golden floor %.4f", lang, got, floor)
				}
				sum += got
				if got < min {
					min = got
				}
			}
			t.Logf("mean byte-F1 %.4f (min %.4f) over %d mixed documents", sum/float64(len(g.Floors)), min, len(docs))
		})
	}
}
