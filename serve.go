package bloomlang

import (
	"bloomlang/internal/serve"
)

// ServeConfig carries the serving-layer knobs: backend, batch worker
// pool, and request/line/batch size limits.
type ServeConfig = serve.Config

// Server is the HTTP serving subsystem over a trained classifier; see
// (*Server).Handler for the endpoint surface.
type Server = serve.Server

// Detection is one classified document in a serving response.
type Detection = serve.Detection

// SpanDetection is one mixed-language span in a serving response.
type SpanDetection = serve.SpanDetection

// Segmentation is the /segment response: a document's span tiling.
type Segmentation = serve.Segmentation

// ServeStats is the /statsz counter snapshot.
type ServeStats = serve.Snapshot

// NewServer builds the serving subsystem from trained profiles.
func NewServer(ps *ProfileSet, cfg ServeConfig) (*Server, error) {
	return serve.New(ps, cfg)
}

// NewServerFromClassifier wraps an already-built classifier in the
// serving subsystem.
func NewServerFromClassifier(clf *Classifier, cfg ServeConfig) *Server {
	return serve.NewFromClassifier(clf, cfg)
}

// ReloadStatus reports one profile hot-swap outcome.
type ReloadStatus = serve.ReloadStatus

// ProfilesStatus is the /admin/profiles payload: the serving version,
// the registry's active version, and every version manifest.
type ProfilesStatus = serve.ProfilesStatus

// NewServerFromRegistry builds the serving subsystem from the
// registry's active profile version; the server reloads (hot-swaps)
// versions via (*Server).Reload and the /admin endpoints.
func NewServerFromRegistry(reg *Registry, cfg ServeConfig) (*Server, error) {
	return serve.NewFromRegistry(reg, cfg)
}
