package bloomlang

import (
	"bloomlang/internal/serve"
)

// ServeConfig carries the serving-layer knobs: backend, batch worker
// pool, and request/line/batch size limits.
type ServeConfig = serve.Config

// Server is the HTTP serving subsystem over a trained classifier; see
// (*Server).Handler for the endpoint surface.
type Server = serve.Server

// Detection is one classified document in a serving response.
type Detection = serve.Detection

// ServeStats is the /statsz counter snapshot.
type ServeStats = serve.Snapshot

// NewServer builds the serving subsystem from trained profiles.
func NewServer(ps *ProfileSet, cfg ServeConfig) (*Server, error) {
	return serve.New(ps, cfg)
}

// NewServerFromClassifier wraps an already-built classifier in the
// serving subsystem.
func NewServerFromClassifier(clf *Classifier, cfg ServeConfig) *Server {
	return serve.NewFromClassifier(clf, cfg)
}
