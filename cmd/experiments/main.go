// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5), printing measured results alongside the
// published numbers.
//
// Usage:
//
//	experiments [-scale small|default|large|paper] [-only 1|2|3|4|fig4|confusion]
//
// At the default scale the full run takes on the order of a minute;
// -scale paper generates the full 484 MB corpus shape and takes much
// longer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	scaleName := flag.String("scale", "default", "corpus scale: small, default, large or paper")
	only := flag.String("only", "", "run a single experiment: 1, 2, 3, 4, fig4, confusion or subsample")
	workers := flag.Int("workers", 0, "software parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	scale, figScale, err := scales(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	scale.Workers = *workers
	figScale.Workers = *workers

	run := func(name string) bool { return *only == "" || *only == name }

	if run("1") {
		rows, err := bloomlang.RunTable1(scale)
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		fmt.Println(bloomlang.FormatTable1(rows))
	}
	if run("2") {
		rows, err := bloomlang.RunTable2()
		if err != nil {
			log.Fatalf("table 2: %v", err)
		}
		fmt.Println(bloomlang.FormatTable2(rows))
	}
	if run("3") {
		rows, err := bloomlang.RunTable3()
		if err != nil {
			log.Fatalf("table 3: %v", err)
		}
		fmt.Println(bloomlang.FormatTable3(rows))
	}
	if run("fig4") {
		fig, err := bloomlang.RunFigure4(figScale)
		if err != nil {
			log.Fatalf("figure 4: %v", err)
		}
		fmt.Println(bloomlang.FormatFigure4(fig))
	}
	if run("4") {
		t4, err := bloomlang.RunTable4(figScale)
		if err != nil {
			log.Fatalf("table 4: %v", err)
		}
		fmt.Println(bloomlang.FormatTable4(t4))
	}
	if run("confusion") {
		conf, err := bloomlang.RunConfusion(scale)
		if err != nil {
			log.Fatalf("confusion: %v", err)
		}
		fmt.Println(bloomlang.FormatConfusion(conf))
	}
	if run("subsample") {
		rows, err := bloomlang.RunSubsampleAblation(scale)
		if err != nil {
			log.Fatalf("subsample: %v", err)
		}
		fmt.Println(bloomlang.FormatSubsampleAblation(rows))
	}
	if *only != "" && !validOnly(*only) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want 1, 2, 3, 4, fig4, confusion or subsample)\n", *only)
		os.Exit(2)
	}
}

func validOnly(s string) bool {
	switch s {
	case "1", "2", "3", "4", "fig4", "confusion", "subsample":
		return true
	}
	return false
}

func scales(name string) (accuracy, throughput bloomlang.Scale, err error) {
	switch name {
	case "small":
		s := bloomlang.Scale{DocsPerLanguage: 60, WordsPerDoc: 250, TrainFraction: 0.15, Seed: 1}
		f := bloomlang.Scale{DocsPerLanguage: 25, WordsPerDoc: 1300, TrainFraction: 0.15, Seed: 1}
		return s, f, nil
	case "default":
		return bloomlang.DefaultScale(), bloomlang.Figure4Scale(), nil
	case "large":
		s := bloomlang.Scale{DocsPerLanguage: 600, WordsPerDoc: 700, TrainFraction: 0.10, Seed: 1}
		f := bloomlang.Scale{DocsPerLanguage: 200, WordsPerDoc: 1300, TrainFraction: 0.10, Seed: 1}
		return s, f, nil
	case "paper":
		return bloomlang.PaperScale(), bloomlang.PaperScale(), nil
	}
	return accuracy, throughput, fmt.Errorf("unknown scale %q (want small, default, large or paper)", name)
}
