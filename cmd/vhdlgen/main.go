// Command vhdlgen exports a trained classifier configuration as
// synthesizable VHDL — the form the paper's implementation took (§4).
// Profiles come from cmd/langid train; the H3 matrices are fixed by the
// seed, so software classification, the cycle simulator, and the
// generated hardware all implement the same function.
//
// Usage:
//
//	vhdlgen -profiles profiles.bin [-k 4] [-m 16384] [-seed 1] [-out classifier.vhd]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bloomlang"
	"bloomlang/internal/core"
	"bloomlang/internal/ngram"
	"bloomlang/internal/vhdl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vhdlgen: ")
	profilePath := flag.String("profiles", "profiles.bin", "trained profile file (langid train)")
	k := flag.Int("k", 4, "hash functions per Bloom filter")
	m := flag.Uint("m", 16*1024, "bits per bit-vector (power of two)")
	seed := flag.Int64("seed", 1, "H3 matrix seed (must match the software deployment)")
	out := flag.String("out", "classifier.vhd", "output VHDL file ('-' for stdout)")
	flag.Parse()

	f, err := os.Open(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	cfg := bloomlang.DefaultConfig()
	cfg.K = *k
	cfg.MBits = uint32(*m)
	cfg.Seed = *seed
	ps := &core.ProfileSet{Config: cfg}
	for {
		p, err := ngram.ReadProfile(br)
		if err != nil {
			if errors.Is(err, io.EOF) && len(ps.Profiles) > 0 {
				break
			}
			log.Fatal(err)
		}
		ps.Config.N = p.N
		ps.Profiles = append(ps.Profiles, p)
	}

	clf, err := core.New(ps, core.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer of.Close()
		w = of
	}
	bw := bufio.NewWriter(w)
	if err := vhdl.Generate(bw, clf); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		fmt.Printf("wrote %s: %d languages, k=%d, m=%d bits, n=%d\n",
			*out, len(clf.Languages()), cfg.K, cfg.MBits, ps.Config.N)
	}
}
