// Command designspace explores the §5.2 design space: for every (k, m)
// Bloom filter shape it prints the expected false positive rate at full
// profile load, the on-chip storage per language, the number of
// languages the EP2S180 supports at 8 n-grams/clock (with and without
// infrastructure overhead, and with 1-in-2 subsampling), and the
// modelled clock — the data behind the paper's choice of k=6, m=4 Kbit
// for the final thirty-language build.
//
// Usage:
//
//	designspace [-load 5000] [-maxk 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"bloomlang"
	"bloomlang/internal/fpga"
	"bloomlang/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("designspace: ")
	load := flag.Int("load", 5000, "profile size N programmed per filter")
	maxK := flag.Int("maxk", 8, "largest hash-function count to explore")
	flag.Parse()

	dev := bloomlang.EP2S180()
	t := report.NewTable(
		fmt.Sprintf("Design space at N=%d n-grams per profile (EP2S180, 8 n-grams/clock)", *load),
		"m (Kbit)", "k", "FP/1000", "Kbit/lang", "langs", "langs+sub2", "ideal", "module MHz",
	)
	for _, mKbit := range []int{4, 8, 16, 32} {
		mBits := uint32(mKbit) * 1024
		for k := 2; k <= *maxK; k++ {
			fp := bloomlang.FalsePositiveRate(*load, mBits, k)
			langs := bloomlang.MaxLanguages(k, mBits, dev)
			// Subsampling every other n-gram halves the copies needed
			// (§5.2: "This doubles the number of supported languages").
			langsSub := fpga.MaxLanguages(k, mBits, 2, dev)
			ideal := fpga.MaxLanguagesIdeal(k, mBits, 4, dev)
			mod, err := bloomlang.EstimateModule(fpga.Table2Config(k, mBits), dev)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(
				fmt.Sprint(mKbit), fmt.Sprint(k),
				fmt.Sprintf("%.1f", 1000*fp),
				fmt.Sprint(k*mKbit),
				fmt.Sprint(langs),
				fmt.Sprint(langsSub),
				fmt.Sprint(ideal),
				fmt.Sprintf("%.0f", mod.FreqMHz),
			)
		}
	}
	fmt.Println(t.String())
	fmt.Println("paper's picks: k=4 m=16Kbit (conservative, 12 languages ideal)")
	fmt.Println("               k=6 m=4Kbit  (space-efficient, 30 languages, Table 3)")
}
