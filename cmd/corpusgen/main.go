// Command corpusgen generates the synthetic JRC-Acquis-like multilingual
// corpus to disk, in the layout cmd/langid consumes:
//
//	out/<lang>/train/000000.txt
//	out/<lang>/test/000057.txt
//	...
//
// Usage:
//
//	corpusgen -out corpus [-docs 570] [-words 1300] [-train 0.1] [-seed 1] [-langs es,pt,en]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")
	out := flag.String("out", "corpus", "output directory")
	docs := flag.Int("docs", 570, "documents per language")
	words := flag.Int("words", 1300, "mean words per document")
	train := flag.Float64("train", 0.10, "training split fraction")
	seed := flag.Int64("seed", 1, "generation seed")
	langs := flag.String("langs", "", "comma-separated language codes (default: all ten)")
	flag.Parse()

	cfg := bloomlang.CorpusConfig{
		DocsPerLanguage: *docs,
		WordsPerDoc:     *words,
		TrainFraction:   *train,
		Seed:            *seed,
	}
	if *langs != "" {
		cfg.Languages = strings.Split(*langs, ",")
	}
	corp, err := bloomlang.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := corp.WriteDir(*out); err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, lang := range corp.Languages {
		total += corp.TestSize(lang)
	}
	total += corp.TrainSize()
	fmt.Printf("wrote %d languages x %d documents (%.1f MB) under %s\n",
		len(corp.Languages), *docs, float64(total)/1e6, *out)
	for _, lang := range corp.Languages {
		fmt.Printf("  %-3s %s: %d train, %d test\n",
			lang, bloomlang.LanguageName(lang), len(corp.Train[lang]), len(corp.Test[lang]))
	}
}
