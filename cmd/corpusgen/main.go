// Command corpusgen generates the synthetic JRC-Acquis-like multilingual
// corpus to disk, in the layout cmd/langid consumes:
//
//	out/<lang>/train/000000.txt
//	out/<lang>/test/000057.txt
//	...
//
// Usage:
//
//	corpusgen -out corpus [-docs 570] [-words 1300] [-train 0.1] [-seed 1] [-langs es,pt,en]
//
// With -mixed N it additionally synthesizes N deterministic
// mixed-language documents — seeded concatenations of per-language
// segments with known byte boundaries — under out/mixed/, each with a
// sidecar ground-truth file, the evaluation set for langid segment and
// the segmentation golden gate:
//
//	out/mixed/000000.txt         the document
//	out/mixed/000000.spans.json  [{"lang":"es","start":0,"end":412}, ...]
//
//	corpusgen -out corpus -mixed 20 [-mixed-segments 3] [-mixed-words 60]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")
	out := flag.String("out", "corpus", "output directory")
	docs := flag.Int("docs", 570, "documents per language")
	words := flag.Int("words", 1300, "mean words per document")
	train := flag.Float64("train", 0.10, "training split fraction")
	seed := flag.Int64("seed", 1, "generation seed")
	langs := flag.String("langs", "", "comma-separated language codes (default: all ten)")
	mixed := flag.Int("mixed", 0, "also generate this many mixed-language documents under out/mixed")
	mixedSegments := flag.Int("mixed-segments", 3, "single-language segments per mixed document")
	mixedWords := flag.Int("mixed-words", 60, "mean words per mixed-document segment")
	flag.Parse()

	cfg := bloomlang.CorpusConfig{
		DocsPerLanguage: *docs,
		WordsPerDoc:     *words,
		TrainFraction:   *train,
		Seed:            *seed,
	}
	if *langs != "" {
		cfg.Languages = strings.Split(*langs, ",")
	}
	corp, err := bloomlang.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := corp.WriteDir(*out); err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, lang := range corp.Languages {
		total += corp.TestSize(lang)
	}
	total += corp.TrainSize()
	fmt.Printf("wrote %d languages x %d documents (%.1f MB) under %s\n",
		len(corp.Languages), *docs, float64(total)/1e6, *out)
	for _, lang := range corp.Languages {
		fmt.Printf("  %-3s %s: %d train, %d test\n",
			lang, bloomlang.LanguageName(lang), len(corp.Train[lang]), len(corp.Test[lang]))
	}

	if *mixed > 0 {
		if err := writeMixed(*out, bloomlang.MixedCorpusConfig{
			Languages:       cfg.Languages,
			Docs:            *mixed,
			SegmentsPerDoc:  *mixedSegments,
			WordsPerSegment: *mixedWords,
			Seed:            *seed,
		}); err != nil {
			log.Fatal(err)
		}
	}
}

// writeMixed generates the mixed-language set and writes each document
// next to its ground-truth segmentation.
func writeMixed(out string, cfg bloomlang.MixedCorpusConfig) error {
	docs, err := bloomlang.GenerateMixedCorpus(cfg)
	if err != nil {
		return err
	}
	dir := filepath.Join(out, "mixed")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var bytes int64
	for _, d := range docs {
		base := filepath.Join(dir, fmt.Sprintf("%06d", d.ID))
		if err := os.WriteFile(base+".txt", d.Text, 0o644); err != nil {
			return err
		}
		truth, err := json.MarshalIndent(d.Segments, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(base+".spans.json", append(truth, '\n'), 0o644); err != nil {
			return err
		}
		bytes += int64(len(d.Text))
	}
	fmt.Printf("wrote %d mixed documents (%d segments each, %.1f KB) under %s\n",
		len(docs), cfg.SegmentsPerDoc, float64(bytes)/1e3, dir)
	return nil
}
