// Command xd1000sim runs the simulated XtremeData XD1000 system over a
// corpus: programs the Bloom filter profiles through the command
// interface, streams the test documents via simulated DMA, and reports
// throughput and accuracy for both §5.4 host drivers.
//
// Usage:
//
//	xd1000sim [-docs 60] [-words 1300] [-seed 1] [-mode both|sync|async]
//	          [-k 4] [-m 16384] [-improved-link] [-lang es]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bloomlang"
	"bloomlang/internal/xd1000"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xd1000sim: ")
	docs := flag.Int("docs", 60, "documents per language")
	words := flag.Int("words", 1300, "mean words per document")
	seed := flag.Int64("seed", 1, "corpus/hash seed")
	mode := flag.String("mode", "both", "driver mode: sync, async or both")
	k := flag.Int("k", 4, "hash functions per Bloom filter")
	m := flag.Uint("m", 16*1024, "bits per bit-vector (power of two)")
	improved := flag.Bool("improved-link", false, "remove the 500 MB/s platform cap (§5.5 projection)")
	lang := flag.String("lang", "", "stream a single language's documents (default: all, interleaved)")
	trace := flag.Int("trace", 0, "print the first N simulated events (0 = off)")
	flag.Parse()

	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: *docs,
		WordsPerDoc:     *words,
		TrainFraction:   0.10,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := bloomlang.DefaultConfig()
	cfg.K = *k
	cfg.MBits = uint32(*m)
	cfg.Seed = *seed
	ps, err := bloomlang.Train(cfg, corp)
	if err != nil {
		log.Fatal(err)
	}

	stream := corp.TestDocuments(*lang)
	if len(stream) == 0 {
		log.Fatalf("no test documents for language %q", *lang)
	}

	modes := []bloomlang.DriverMode{bloomlang.ModeSync, bloomlang.ModeAsync}
	switch *mode {
	case "sync":
		modes = modes[:1]
	case "async":
		modes = modes[1:]
	case "both":
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	for _, md := range modes {
		opts := bloomlang.SystemOptions{}
		if *improved {
			opts.Link = bloomlang.ImprovedLink()
		}
		var tr *xd1000.Trace
		if *trace > 0 {
			tr = xd1000.NewTrace(*trace)
			opts.Trace = tr
		}
		sys, err := bloomlang.NewSystem(ps, opts)
		if err != nil {
			log.Fatal(err)
		}
		build := sys.Build()
		fmt.Printf("== %s driver ==\n", md)
		fmt.Printf("build: %d languages, %d M4Ks, %.0f MHz, %d n-grams/clock (peak %.0f MB/s)\n",
			len(ps.Languages()), build.M4Ks, build.FreqMHz,
			sys.Device().NGramsPerClock(), sys.PeakMBPerSec())
		prog := sys.Program()
		rep, err := sys.Stream(stream, md, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("programmed %d profiles in %v (simulated)\n", len(ps.Languages()), prog)
		fmt.Printf("streamed %d documents, %.1f MB in %v (simulated)\n",
			rep.Docs, float64(rep.Bytes)/1e6, rep.SimTime)
		fmt.Printf("throughput: %.1f MB/s (%.1f MB/s including programming)\n",
			rep.MBPerSec(), rep.MBPerSecWithProgramming())
		fmt.Printf("accuracy: %.2f%%, checksum failures: %d\n\n",
			100*rep.Accuracy(), rep.ChecksumFailures)
		if tr != nil {
			fmt.Println("simulated event timeline:")
			if _, err := tr.WriteTo(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}
