// Command langid trains n-gram language profiles and classifies
// documents, end to end in software — the paper's pipeline without the
// hardware simulation.
//
// Train profiles from a corpus directory (see cmd/corpusgen):
//
//	langid train -corpus corpusdir -out profiles.bin [-n 4] [-t 5000]
//
// Classify files (or stdin when no files are given):
//
//	langid classify -profiles profiles.bin [-k 4] [-m 16384] [-backend bloom] file1.txt file2.txt
//	echo "el consejo de la unión europea" | langid classify -profiles profiles.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("langid: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		train(os.Args[2:])
	case "classify":
		classify(os.Args[2:])
	case "eval":
		eval(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: langid train|classify|eval [flags] [files...]")
	os.Exit(2)
}

// eval scores trained profiles against a corpus directory's test split,
// printing per-language accuracy and the confusion structure — the
// §5.1 evaluation as a command.
func eval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "corpus directory (corpusgen layout)")
	profilePath := fs.String("profiles", "profiles.bin", "trained profile file")
	k := fs.Int("k", 4, "hash functions per Bloom filter")
	m := fs.Uint("m", 16*1024, "bits per Bloom filter vector (power of two)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *corpusDir == "" {
		log.Fatal("eval: -corpus is required")
	}
	corp, err := bloomlang.ReadCorpusDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := loadProfiles(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	applyFilterFlags(fs, ps, *k, uint32(*m))
	clf, err := bloomlang.NewClassifier(ps, bloomlang.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}
	eng := bloomlang.NewEngine(clf, *workers)
	rep := eng.Measure(corp.TestDocuments(""))
	ev := eng.Evaluate(corp)
	fmt.Printf("evaluated %d documents at %.1f MB/s with %d workers\n\n", ev.Docs, rep.MBPerSec(), eng.Workers())
	fmt.Println("per-language accuracy:")
	for _, lang := range ev.Languages {
		if acc, ok := ev.PerLanguage[lang]; ok {
			fmt.Printf("  %-3s %-12s %6.2f%%\n", lang, bloomlang.LanguageName(lang), 100*acc)
		}
	}
	fmt.Printf("\naverage %.2f%% (min %.2f%%, max %.2f%%)\n", 100*ev.Average, 100*ev.Min, 100*ev.Max)
	if truth, pred, n, ok := ev.TopConfusion(); ok {
		fmt.Printf("top confusion: %s -> %s (%d docs)\n",
			bloomlang.LanguageName(truth), bloomlang.LanguageName(pred), n)
	}
}

func train(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "corpus directory (corpusgen layout)")
	out := fs.String("out", "profiles.bin", "output profile file")
	n := fs.Int("n", 4, "n-gram length")
	t := fs.Int("t", 5000, "profile size (top-t n-grams)")
	fs.Parse(args)
	if *corpusDir == "" {
		log.Fatal("train: -corpus is required")
	}
	corp, err := bloomlang.ReadCorpusDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bloomlang.DefaultConfig()
	cfg.N = *n
	cfg.TopT = *t
	ps, err := bloomlang.Train(cfg, corp)
	if err != nil {
		log.Fatal(err)
	}
	if err := bloomlang.SaveProfiles(ps, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d profiles (n=%d, t=%d) -> %s\n", len(ps.Profiles), *n, *t, *out)
	for _, p := range ps.Profiles {
		fmt.Printf("  %-3s %-12s %5d n-grams\n", p.Language, bloomlang.LanguageName(p.Language), p.Size())
	}
}

func classify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	profilePath := fs.String("profiles", "profiles.bin", "trained profile file")
	k := fs.Int("k", 4, "hash functions per Bloom filter")
	m := fs.Uint("m", 16*1024, "bits per Bloom filter vector (power of two)")
	backend := fs.String("backend", "bloom", "membership backend: bloom, direct or classic")
	minMargin := fs.Float64("min-margin", 0, "answer unknown below this normalized winner margin")
	minNGrams := fs.Int("min-ngrams", 1, "answer unknown below this many testable n-grams")
	verbose := fs.Bool("v", false, "print the full language ranking")
	fs.Parse(args)

	ps, err := loadProfiles(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	applyFilterFlags(fs, ps, *k, uint32(*m))

	be, err := bloomlang.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	det, err := bloomlang.NewDetector(ps,
		bloomlang.WithBackend(be),
		bloomlang.WithMinMargin(*minMargin),
		bloomlang.WithMinNGrams(*minNGrams))
	if err != nil {
		log.Fatal(err)
	}

	classifyOne := func(name string, text []byte) {
		// One pipeline pass covers both outputs: the Result carries the
		// per-language counts -v prints, and MatchResult scores it under
		// the detector's thresholds.
		res := det.Classifier().Classify(text)
		match := det.MatchResult(res)
		if match.Unknown {
			fmt.Printf("%s: unknown (%d n-grams, score %.3f, margin %.3f)\n",
				name, match.NGrams, match.Score, match.Margin)
		} else {
			fmt.Printf("%s: %s (%s), score %.3f, margin %.3f over %d n-grams\n",
				name, match.Lang, bloomlang.LanguageName(match.Lang), match.Score, match.Margin, match.NGrams)
		}
		if *verbose {
			langs := det.Languages()
			order := make([]int, len(langs))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return res.Counts[order[a]] > res.Counts[order[b]] })
			for _, i := range order {
				score := 0.0
				if res.NGrams > 0 {
					score = float64(res.Counts[i]) / float64(res.NGrams)
				}
				fmt.Printf("  %-3s %6d  score %.3f\n", langs[i], res.Counts[i], score)
			}
		}
	}

	if fs.NArg() == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		classifyOne("stdin", text)
		return
	}
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		classifyOne(path, text)
	}
}

// loadProfiles reads either the current profile-set format or legacy
// bare-profile files; see bloomlang.LoadProfiles.
func loadProfiles(path string) (*bloomlang.ProfileSet, error) {
	return bloomlang.LoadProfiles(path)
}

// applyFilterFlags overrides the loaded configuration's filter geometry
// only for flags the user actually set: profile files carry their
// training configuration, and silently clobbering it with flag defaults
// would build different filters than a daemon serving the same file.
func applyFilterFlags(fs *flag.FlagSet, ps *bloomlang.ProfileSet, k int, m uint32) {
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "k":
			ps.Config.K = k
		case "m":
			ps.Config.MBits = m
		}
	})
}
