// Command langid trains n-gram language profiles and classifies
// documents, end to end in software — the paper's pipeline without the
// hardware simulation.
//
// Train profiles with the streaming sharded trainer, from a corpus
// directory (see cmd/corpusgen) or an NDJSON stream of
// {"lang": "es", "text": "..."} lines, into a flat file and/or a
// versioned registry:
//
//	langid train -corpus corpusdir -out profiles.bin [-n 4] [-t 5000] [-shards 4]
//	langid train -corpus corpusdir -out profiles.bin -blocked   # embed the blocked layout
//	langid train -ndjson docs.ndjson -registry /var/lib/langid -activate
//	cat docs.ndjson | langid train -ndjson - -registry /var/lib/langid
//
// Manage the registry's profile lifecycle (list, activate, rollback,
// garbage-collect); a running langidd picks up the active version on
// SIGHUP or POST /admin/reload:
//
//	langid profiles -registry /var/lib/langid
//	langid profiles -registry /var/lib/langid -activate v000002
//	langid profiles -registry /var/lib/langid -rollback
//	langid profiles -registry /var/lib/langid -gc 3
//
// Classify files (or stdin when no files are given):
//
//	langid classify -profiles profiles.bin [-k 4] [-m 16384] [-backend bloom|direct|classic|blocked] file1.txt file2.txt
//	echo "el consejo de la unión europea" | langid classify -profiles profiles.bin
//
// Segment mixed-language files into per-language spans (or stdin when
// no files are given); -tsv emits machine-readable rows, -color paints
// the document text span by span:
//
//	langid segment -profiles profiles.bin [-backend blocked] [-window 64] [-stride 16] file1.txt
//	langid segment -profiles profiles.bin -tsv file1.txt | cut -f4
//	langid segment -profiles profiles.bin -color mixed.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("langid: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		train(os.Args[2:])
	case "profiles":
		profiles(os.Args[2:])
	case "classify":
		classify(os.Args[2:])
	case "segment":
		segment(os.Args[2:])
	case "eval":
		eval(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: langid train|profiles|classify|segment|eval [flags] [files...]")
	os.Exit(2)
}

// eval scores trained profiles against a corpus directory's test split,
// printing per-language accuracy and the confusion structure — the
// §5.1 evaluation as a command.
func eval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "corpus directory (corpusgen layout)")
	profilePath := fs.String("profiles", "profiles.bin", "trained profile file")
	k := fs.Int("k", 4, "hash functions per Bloom filter")
	m := fs.Uint("m", 16*1024, "bits per Bloom filter vector (power of two)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *corpusDir == "" {
		log.Fatal("eval: -corpus is required")
	}
	corp, err := bloomlang.ReadCorpusDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := loadProfiles(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	applyFilterFlags(fs, ps, *k, uint32(*m))
	clf, err := bloomlang.NewClassifier(ps, bloomlang.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}
	eng := bloomlang.NewEngine(clf, *workers)
	rep := eng.Measure(corp.TestDocuments(""))
	ev := eng.Evaluate(corp)
	fmt.Printf("evaluated %d documents at %.1f MB/s with %d workers\n\n", ev.Docs, rep.MBPerSec(), eng.Workers())
	fmt.Println("per-language accuracy:")
	for _, lang := range ev.Languages {
		if acc, ok := ev.PerLanguage[lang]; ok {
			fmt.Printf("  %-3s %-12s %6.2f%%\n", lang, bloomlang.LanguageName(lang), 100*acc)
		}
	}
	fmt.Printf("\naverage %.2f%% (min %.2f%%, max %.2f%%)\n", 100*ev.Average, 100*ev.Min, 100*ev.Max)
	if truth, pred, n, ok := ev.TopConfusion(); ok {
		fmt.Printf("top confusion: %s -> %s (%d docs)\n",
			bloomlang.LanguageName(truth), bloomlang.LanguageName(pred), n)
	}
}

// train streams documents through the sharded trainer — the corpus is
// never materialized in memory — then writes the profiles to a flat
// file, a registry version, or both.
func train(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "corpus directory (corpusgen layout)")
	ndjson := fs.String("ndjson", "", `NDJSON training stream of {"lang","text"} lines ("-" for stdin)`)
	out := fs.String("out", "", "output profile file")
	registryDir := fs.String("registry", "", "write the profiles as a new version in this registry")
	activate := fs.Bool("activate", false, "activate the new registry version after writing it")
	n := fs.Int("n", 4, "n-gram length")
	t := fs.Int("t", 5000, "profile size (top-t n-grams)")
	shards := fs.Int("shards", 0, "trainer accumulator shards (0 = min(GOMAXPROCS, 4))")
	blocked := fs.Bool("blocked", false, "embed the pre-programmed blocked-backend layout in -out (NGPS v2)")
	fs.Parse(args)
	if (*corpusDir == "") == (*ndjson == "") {
		log.Fatal("train: pass exactly one of -corpus or -ndjson")
	}
	if *out == "" && *registryDir == "" {
		*out = "profiles.bin"
	}
	if *activate && *registryDir == "" {
		log.Fatal("train: -activate requires -registry")
	}
	if *blocked && *out == "" {
		log.Fatal("train: -blocked requires -out (registry versions store the standard NGPS v1 format)")
	}
	cfg := bloomlang.DefaultConfig()
	cfg.N = *n
	cfg.TopT = *t

	var (
		ps    *bloomlang.ProfileSet
		stats bloomlang.TrainStats
		err   error
	)
	switch {
	case *corpusDir != "":
		ps, stats, err = bloomlang.TrainDir(cfg, *corpusDir, bloomlang.WithShards(*shards))
	case *ndjson == "-":
		ps, stats, err = bloomlang.TrainNDJSON(cfg, os.Stdin, bloomlang.WithShards(*shards))
	default:
		f, ferr := os.Open(*ndjson)
		if ferr != nil {
			log.Fatal(ferr)
		}
		ps, stats, err = bloomlang.TrainNDJSON(cfg, f, bloomlang.WithShards(*shards))
		f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %d profiles (n=%d, t=%d) from %d documents (%.1f MB, %d n-grams)\n",
		len(ps.Profiles), *n, *t, stats.Docs, float64(stats.Bytes)/1e6, stats.Grams)
	for _, p := range ps.Profiles {
		ls := stats.Languages[p.Language]
		fmt.Printf("  %-3s %-12s %5d n-grams from %d docs\n",
			p.Language, bloomlang.LanguageName(p.Language), p.Size(), ls.Docs)
	}
	if *out != "" {
		save := bloomlang.SaveProfiles
		if *blocked {
			save = bloomlang.SaveProfilesBlocked
		}
		if err := save(ps, *out); err != nil {
			log.Fatal(err)
		}
		if *blocked {
			fmt.Printf("wrote %s (blocked layout embedded)\n", *out)
		} else {
			fmt.Printf("wrote %s\n", *out)
		}
	}
	if *registryDir != "" {
		reg, err := bloomlang.OpenRegistry(*registryDir)
		if err != nil {
			log.Fatal(err)
		}
		m, err := reg.Create(ps, stats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("created version %s in %s (checksum %.12s…)\n", m.Version, *registryDir, m.Checksum)
		if *activate {
			if err := reg.Activate(m.Version); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("activated %s\n", m.Version)
		}
	}
}

// profiles manages a registry's version lifecycle from the command
// line: list (default), activate, rollback, or garbage-collect.
func profiles(args []string) {
	fs := flag.NewFlagSet("profiles", flag.ExitOnError)
	registryDir := fs.String("registry", "", "profile registry directory")
	activate := fs.String("activate", "", "activate this version")
	rollback := fs.Bool("rollback", false, "reactivate the previously active version")
	gc := fs.Int("gc", -1, "remove old inactive versions, keeping this many")
	fs.Parse(args)
	if *registryDir == "" {
		log.Fatal("profiles: -registry is required")
	}
	reg, err := bloomlang.OpenRegistry(*registryDir)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *activate != "":
		if err := reg.Activate(*activate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("activated %s\n", *activate)
	case *rollback:
		id, err := reg.Rollback()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rolled back to %s\n", id)
	case *gc >= 0:
		removed, err := reg.GC(*gc)
		if err != nil {
			log.Fatal(err)
		}
		if len(removed) == 0 {
			fmt.Println("nothing to remove")
		}
		for _, id := range removed {
			fmt.Printf("removed %s\n", id)
		}
	default:
		ms, err := reg.List()
		if err != nil {
			log.Fatal(err)
		}
		active, err := reg.ActiveVersion()
		if err != nil && !errors.Is(err, bloomlang.ErrNoActiveProfile) {
			log.Fatal(err)
		}
		if len(ms) == 0 {
			fmt.Println("registry is empty")
			return
		}
		for _, m := range ms {
			marker := " "
			if m.Version == active {
				marker = "*"
			}
			fmt.Printf("%s %s  %s  n=%d t=%d  %d languages, %d docs, %.1f MB profiles\n",
				marker, m.Version, m.CreatedAt.Format("2006-01-02 15:04:05"),
				m.Config.N, m.Config.TopT, len(m.Languages), m.Stats.Docs,
				float64(m.ProfileBytes)/1e6)
		}
	}
}

func classify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	profilePath := fs.String("profiles", "profiles.bin", "trained profile file")
	k := fs.Int("k", 4, "hash functions per Bloom filter")
	m := fs.Uint("m", 16*1024, "bits per Bloom filter vector (power of two)")
	backend := fs.String("backend", "bloom", "membership backend: bloom, direct, classic or blocked")
	minMargin := fs.Float64("min-margin", 0, "answer unknown below this normalized winner margin")
	minNGrams := fs.Int("min-ngrams", 1, "answer unknown below this many testable n-grams")
	verbose := fs.Bool("v", false, "print the full language ranking")
	fs.Parse(args)

	ps, err := loadProfiles(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	applyFilterFlags(fs, ps, *k, uint32(*m))

	be, err := bloomlang.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	det, err := bloomlang.NewDetector(ps,
		bloomlang.WithBackend(be),
		bloomlang.WithMinMargin(*minMargin),
		bloomlang.WithMinNGrams(*minNGrams))
	if err != nil {
		log.Fatal(err)
	}

	classifyOne := func(name string, text []byte) {
		// One pipeline pass covers both outputs: the Result carries the
		// per-language counts -v prints, and MatchResult scores it under
		// the detector's thresholds.
		res := det.Classifier().Classify(text)
		match := det.MatchResult(res)
		if match.Unknown {
			fmt.Printf("%s: unknown (%d n-grams, score %.3f, margin %.3f)\n",
				name, match.NGrams, match.Score, match.Margin)
		} else {
			fmt.Printf("%s: %s (%s), score %.3f, margin %.3f over %d n-grams\n",
				name, match.Lang, bloomlang.LanguageName(match.Lang), match.Score, match.Margin, match.NGrams)
		}
		if *verbose {
			langs := det.Languages()
			order := make([]int, len(langs))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return res.Counts[order[a]] > res.Counts[order[b]] })
			for _, i := range order {
				score := 0.0
				if res.NGrams > 0 {
					score = float64(res.Counts[i]) / float64(res.NGrams)
				}
				fmt.Printf("  %-3s %6d  score %.3f\n", langs[i], res.Counts[i], score)
			}
		}
	}

	if fs.NArg() == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		classifyOne("stdin", text)
		return
	}
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		classifyOne(path, text)
	}
}

// segment splits mixed-language files into contiguous single-language
// spans — the traffic shape classify's single label gets wrong.
func segment(args []string) {
	fs := flag.NewFlagSet("segment", flag.ExitOnError)
	profilePath := fs.String("profiles", "profiles.bin", "trained profile file")
	k := fs.Int("k", 4, "hash functions per Bloom filter")
	m := fs.Uint("m", 16*1024, "bits per Bloom filter vector (power of two)")
	backend := fs.String("backend", "bloom", "membership backend: bloom, direct, classic or blocked")
	minMargin := fs.Float64("min-margin", 0, "mark spans unknown below this normalized window margin")
	minNGrams := fs.Int("min-ngrams", 1, "answer unknown below this many testable n-grams")
	window := fs.Int("window", 0, "segmentation window in n-grams (0 = default 64)")
	stride := fs.Int("stride", 0, "window hop in n-grams, must divide window (0 = window/4)")
	hysteresis := fs.Int("hysteresis", 0, "windows a new language must persist before a boundary (0 = default 2)")
	smoothing := fs.Float64("smoothing", 0, "window count smoothing in [0,1)")
	tsv := fs.Bool("tsv", false, "tab-separated output: file, start, end, lang, score, margin")
	colored := fs.Bool("color", false, "print the document text with one ANSI color per language")
	fs.Parse(args)

	ps, err := loadProfiles(*profilePath)
	if err != nil {
		log.Fatal(err)
	}
	applyFilterFlags(fs, ps, *k, uint32(*m))
	be, err := bloomlang.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	det, err := bloomlang.NewDetector(ps,
		bloomlang.WithBackend(be),
		bloomlang.WithMinMargin(*minMargin),
		bloomlang.WithMinNGrams(*minNGrams))
	if err != nil {
		log.Fatal(err)
	}
	segCfg := bloomlang.SegmentConfig{
		Window:     *window,
		Stride:     *stride,
		Hysteresis: *hysteresis,
		Smoothing:  *smoothing,
	}
	if err := segCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	segmentOne := func(name string, text []byte) {
		spans, err := det.DetectSpans(text, segCfg)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *tsv:
			for _, sp := range spans {
				lang := sp.Lang
				if sp.Unknown {
					lang = "?"
				}
				fmt.Printf("%s\t%d\t%d\t%s\t%.3f\t%.3f\n", name, sp.Start, sp.End, lang, sp.Score, sp.Margin)
			}
		case *colored:
			printColored(text, spans)
		default:
			fmt.Printf("%s: %d spans over %d bytes\n", name, len(spans), len(text))
			for _, sp := range spans {
				if sp.Unknown {
					fmt.Printf("  %6d-%-6d unknown (score %.3f, margin %.3f)\n", sp.Start, sp.End, sp.Score, sp.Margin)
					continue
				}
				fmt.Printf("  %6d-%-6d %-3s %-12s score %.3f, margin %.3f\n",
					sp.Start, sp.End, sp.Lang, bloomlang.LanguageName(sp.Lang), sp.Score, sp.Margin)
			}
		}
	}

	if fs.NArg() == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		segmentOne("stdin", text)
		return
	}
	for _, path := range fs.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		segmentOne(path, text)
	}
}

// spanPalette cycles distinguishable ANSI foreground colors; unknown
// spans render dim.
var spanPalette = []string{"31", "32", "33", "34", "35", "36", "91", "92", "93", "94", "95", "96"}

// printColored paints each span of the document in a color assigned to
// its language in order of first appearance.
func printColored(text []byte, spans []bloomlang.Span) {
	colors := map[string]string{}
	var order []string
	for _, sp := range spans {
		body := text[sp.Start:sp.End]
		if sp.Unknown {
			fmt.Printf("\x1b[2m%s\x1b[0m", body)
			continue
		}
		c, ok := colors[sp.Lang]
		if !ok {
			c = spanPalette[len(colors)%len(spanPalette)]
			colors[sp.Lang] = c
			order = append(order, sp.Lang)
		}
		fmt.Printf("\x1b[%sm%s\x1b[0m", c, body)
	}
	fmt.Println()
	for _, lang := range order {
		fmt.Printf("\x1b[%sm■\x1b[0m %s (%s)  ", colors[lang], lang, bloomlang.LanguageName(lang))
	}
	if len(order) > 0 {
		fmt.Println()
	}
}

// loadProfiles reads either the current profile-set format or legacy
// bare-profile files; see bloomlang.LoadProfiles.
func loadProfiles(path string) (*bloomlang.ProfileSet, error) {
	return bloomlang.LoadProfiles(path)
}

// applyFilterFlags overrides the loaded configuration's filter geometry
// only for flags the user actually set: profile files carry their
// training configuration, and silently clobbering it with flag defaults
// would build different filters than a daemon serving the same file.
func applyFilterFlags(fs *flag.FlagSet, ps *bloomlang.ProfileSet, k int, m uint32) {
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "k":
			ps.Config.K = k
		case "m":
			ps.Config.MBits = m
		}
	})
}
