// Command langidd is the language-detection daemon: the serving
// subsystem of internal/serve behind a real listener, with profile
// save/load so startup costs a file read instead of a training run.
//
// Serve from a trained profile file (see langid train or -save):
//
//	langidd -profiles profiles.bin -addr :8080
//
// Train from a corpus directory (cmd/corpusgen layout), save the
// profiles, then serve:
//
//	langidd -corpus corpusdir -save profiles.bin
//
// Bootstrap against a synthetic corpus when no trained profiles exist
// yet (development convenience; profiles are saved for next time when
// -save is given):
//
//	langidd -synthetic -save profiles.bin
//
// Endpoints: POST /detect, POST /batch, POST /stream (NDJSON),
// GET /healthz, GET /statsz. The daemon drains in-flight requests on
// SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("langidd: ")

	addr := flag.String("addr", ":8080", "listen address")
	profilePath := flag.String("profiles", "", "trained profile file to serve from")
	corpusDir := flag.String("corpus", "", "corpus directory to train from (corpusgen layout)")
	synthetic := flag.Bool("synthetic", false, "train from a small synthetic corpus (development)")
	savePath := flag.String("save", "", "write trained profiles to this file before serving")
	backendName := flag.String("backend", "bloom", "membership backend: bloom, direct or classic")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	minMargin := flag.Float64("min-margin", 0, "answer unknown below this normalized winner margin")
	minNGrams := flag.Int("min-ngrams", 1, "answer unknown below this many testable n-grams")
	maxBody := flag.Int64("max-body", 10<<20, "max /detect and /batch body bytes")
	maxBatch := flag.Int("max-batch", 1024, "max documents per /batch request")
	maxLine := flag.Int("max-line", 1<<20, "max NDJSON line bytes on /stream")
	counts := flag.Bool("counts", false, "include per-language match counts in batch/stream responses")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	backend, err := bloomlang.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := loadOrTrain(*profilePath, *corpusDir, *synthetic)
	if err != nil {
		log.Fatal(err)
	}
	if *savePath != "" {
		if err := bloomlang.SaveProfiles(ps, *savePath); err != nil {
			log.Fatalf("saving profiles: %v", err)
		}
		log.Printf("saved %d profiles to %s", len(ps.Profiles), *savePath)
	}

	srv, err := bloomlang.NewServer(ps, bloomlang.ServeConfig{
		Backend:       backend,
		Workers:       *workers,
		MinMargin:     *minMargin,
		MinNGrams:     *minNGrams,
		MaxBodyBytes:  *maxBody,
		MaxBatchDocs:  *maxBatch,
		MaxLineBytes:  *maxLine,
		IncludeCounts: *counts,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d languages on %s (backend %s, %d workers)",
		len(ps.Profiles), *addr, backend, srv.Stats().Workers)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// loadOrTrain resolves the profile set from, in order of preference:
// an existing profile file, a corpus directory, or (with -synthetic) a
// generated development corpus.
func loadOrTrain(profilePath, corpusDir string, synthetic bool) (*bloomlang.ProfileSet, error) {
	if profilePath != "" {
		ps, err := bloomlang.LoadProfiles(profilePath)
		if err == nil {
			log.Printf("loaded %d profiles from %s", len(ps.Profiles), profilePath)
			return ps, nil
		}
		if !errors.Is(err, os.ErrNotExist) || (corpusDir == "" && !synthetic) {
			return nil, fmt.Errorf("loading profiles: %w", err)
		}
		log.Printf("profile file %s not found, training", profilePath)
	}
	switch {
	case corpusDir != "":
		corp, err := bloomlang.ReadCorpusDir(corpusDir)
		if err != nil {
			return nil, err
		}
		log.Printf("training from corpus %s", corpusDir)
		return bloomlang.Train(bloomlang.DefaultConfig(), corp)
	case synthetic:
		corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
			DocsPerLanguage: 80,
			WordsPerDoc:     300,
			TrainFraction:   0.2,
			Seed:            8,
		})
		if err != nil {
			return nil, err
		}
		log.Print("training from synthetic corpus")
		return bloomlang.Train(bloomlang.DefaultConfig(), corp)
	}
	return nil, errors.New("no profiles: pass -profiles FILE, -corpus DIR, or -synthetic")
}
