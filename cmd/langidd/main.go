// Command langidd is the language-detection daemon: the serving
// subsystem of internal/serve behind a hardened listener, wired into
// the profile lifecycle so new profile versions go live without a
// restart.
//
// Serve the active version of a profile registry (see langid train
// -registry / langid profiles). SIGHUP or POST /admin/reload hot-swaps
// to the currently active version with zero downtime:
//
//	langidd -registry /var/lib/langid -addr :8080
//
// Serve from a flat trained profile file (see langid train -out or
// -save):
//
//	langidd -profiles profiles.bin -addr :8080
//
// Train from a corpus directory (cmd/corpusgen layout), save the
// profiles, then serve:
//
//	langidd -corpus corpusdir -save profiles.bin
//
// Bootstrap against a synthetic corpus when no trained profiles exist
// yet (development convenience; profiles are saved for next time when
// -save is given):
//
//	langidd -synthetic -save profiles.bin
//
// Endpoints: POST /detect, POST /batch, POST /stream (NDJSON; ?spans=1
// adds per-document mixed-language spans), POST /segment
// (mixed-language span tiling; geometry via -segment-window,
// -segment-stride, -segment-hysteresis, -segment-smoothing),
// GET /healthz, GET /statsz, and — when registry-backed —
// GET /admin/profiles and POST /admin/reload. Failed requests are
// answered with JSON error bodies (413 for oversized bodies, 408 for
// request read timeouts). The daemon drains in-flight requests on
// SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bloomlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("langidd: ")

	addr := flag.String("addr", ":8080", "listen address")
	registryDir := flag.String("registry", "", "profile registry directory to serve the active version of")
	profilePath := flag.String("profiles", "", "trained profile file to serve from")
	corpusDir := flag.String("corpus", "", "corpus directory to train from (corpusgen layout)")
	synthetic := flag.Bool("synthetic", false, "train from a small synthetic corpus (development)")
	savePath := flag.String("save", "", "write trained profiles to this file before serving")
	backendName := flag.String("backend", "bloom", "membership backend: bloom, direct, classic or blocked")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	minMargin := flag.Float64("min-margin", 0, "answer unknown below this normalized winner margin")
	minNGrams := flag.Int("min-ngrams", 1, "answer unknown below this many testable n-grams")
	maxBody := flag.Int64("max-body", 10<<20, "max /detect and /batch body bytes")
	maxBatch := flag.Int("max-batch", 1024, "max documents per /batch request")
	maxLine := flag.Int("max-line", 1<<20, "max NDJSON line bytes on /stream")
	// Read/write timeouts are absolute per-request limits, not idle
	// limits, so they default off: /stream exchanges legitimately run
	// for hours. Deployments without long-lived streams should set
	// both.
	readTimeout := flag.Duration("read-timeout", 0, "max time to read one request, including long /stream uploads (0 = unlimited; tripped reads answer 408)")
	writeTimeout := flag.Duration("write-timeout", 0, "max time to write one response, including long /stream downloads (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout (0 = unlimited)")
	counts := flag.Bool("counts", false, "include per-language match counts in batch/stream responses")
	segWindow := flag.Int("segment-window", 0, "/segment sliding window in n-grams (0 = default 64)")
	segStride := flag.Int("segment-stride", 0, "/segment window hop in n-grams, must divide the window (0 = window/4)")
	segHysteresis := flag.Int("segment-hysteresis", 0, "/segment windows a new language must persist before a boundary (0 = default 2)")
	segSmoothing := flag.Float64("segment-smoothing", 0, "/segment window count smoothing in [0,1)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	backend, err := bloomlang.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bloomlang.ServeConfig{
		Backend:       backend,
		Workers:       *workers,
		MinMargin:     *minMargin,
		MinNGrams:     *minNGrams,
		MaxBodyBytes:  *maxBody,
		MaxBatchDocs:  *maxBatch,
		MaxLineBytes:  *maxLine,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		IncludeCounts: *counts,
		Segment: bloomlang.SegmentConfig{
			Window:     *segWindow,
			Stride:     *segStride,
			Hysteresis: *segHysteresis,
			Smoothing:  *segSmoothing,
		},
	}
	if err := cfg.Segment.Validate(); err != nil {
		log.Fatal(err)
	}

	srv, version, err := buildServer(profileSource{
		registryDir: *registryDir,
		profilePath: *profilePath,
		corpusDir:   *corpusDir,
		synthetic:   *synthetic,
		savePath:    *savePath,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := srv.HTTPServer(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	stats := srv.Stats()
	if version == "" {
		version = "unversioned"
	}
	log.Printf("serving %d languages on %s (profiles %s, backend %s, %d workers)",
		len(stats.Languages), *addr, version, backend, stats.Workers)

	for {
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-hup:
			status, err := srv.Reload()
			switch {
			case err != nil:
				log.Printf("SIGHUP reload failed: %v", err)
			case status.Changed:
				log.Printf("SIGHUP reload: now serving %s (was %s)", status.Active, status.Previous)
			default:
				log.Printf("SIGHUP reload: %s already active", status.Active)
			}
			continue
		case <-ctx.Done():
		}
		break
	}
	log.Print("shutting down, draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// profileSource names where the daemon's profiles come from.
type profileSource struct {
	registryDir string
	profilePath string
	corpusDir   string
	synthetic   bool
	savePath    string
}

// buildServer resolves the profile source and constructs the serving
// subsystem, returning the served profile version ("" for
// non-registry sources). Every misconfiguration fails fast with a
// clear message instead of falling through to a half-configured
// server.
func buildServer(src profileSource, cfg bloomlang.ServeConfig) (*bloomlang.Server, string, error) {
	if src.registryDir != "" {
		if src.profilePath != "" || src.corpusDir != "" || src.synthetic || src.savePath != "" {
			return nil, "", errors.New("-registry cannot be combined with -profiles, -corpus, -synthetic or -save")
		}
		reg, err := bloomlang.OpenRegistry(src.registryDir)
		if err != nil {
			return nil, "", err
		}
		srv, err := bloomlang.NewServerFromRegistry(reg, cfg)
		if errors.Is(err, bloomlang.ErrNoActiveProfile) {
			return nil, "", fmt.Errorf("registry %s has no active version: create one with 'langid train -registry %s -activate'",
				src.registryDir, src.registryDir)
		}
		if err != nil {
			return nil, "", err
		}
		return srv, srv.Stats().ProfileVersion, nil
	}
	ps, err := resolveProfiles(src)
	if err != nil {
		return nil, "", err
	}
	if src.savePath != "" {
		if err := bloomlang.SaveProfiles(ps, src.savePath); err != nil {
			return nil, "", fmt.Errorf("saving profiles: %w", err)
		}
		log.Printf("saved %d profiles to %s", len(ps.Profiles), src.savePath)
	}
	srv, err := bloomlang.NewServer(ps, cfg)
	return srv, "", err
}

// resolveProfiles resolves a non-registry profile source from, in
// order of preference: an existing profile file, a corpus directory,
// or (with -synthetic) a generated development corpus.
func resolveProfiles(src profileSource) (*bloomlang.ProfileSet, error) {
	if src.profilePath != "" {
		ps, err := bloomlang.LoadProfiles(src.profilePath)
		if err == nil {
			log.Printf("loaded %d profiles from %s", len(ps.Profiles), src.profilePath)
			return ps, nil
		}
		if errors.Is(err, os.ErrNotExist) && (src.corpusDir != "" || src.synthetic) {
			log.Printf("profile file %s not found, training", src.profilePath)
		} else if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("profile file %s does not exist: train one with 'langid train -out %s', or pass -corpus/-synthetic to train at startup",
				src.profilePath, src.profilePath)
		} else {
			return nil, fmt.Errorf("loading profiles: %w", err)
		}
	}
	switch {
	case src.corpusDir != "":
		log.Printf("training from corpus %s (streaming)", src.corpusDir)
		ps, stats, err := bloomlang.TrainDir(bloomlang.DefaultConfig(), src.corpusDir)
		if err != nil {
			return nil, err
		}
		log.Printf("trained on %d documents (%.1f MB)", stats.Docs, float64(stats.Bytes)/1e6)
		return ps, nil
	case src.synthetic:
		corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
			DocsPerLanguage: 80,
			WordsPerDoc:     300,
			TrainFraction:   0.2,
			Seed:            8,
		})
		if err != nil {
			return nil, err
		}
		log.Print("training from synthetic corpus")
		return bloomlang.Train(bloomlang.DefaultConfig(), corp)
	}
	return nil, errors.New("no profiles to serve: pass -registry DIR, -profiles FILE, -corpus DIR, or -synthetic")
}
