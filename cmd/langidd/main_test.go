package main

// Unit tests for the daemon's profile-source resolution: every
// misconfiguration must fail fast with an actionable message — the
// daemon must never fall through to serving nothing.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bloomlang"
)

func TestResolveProfilesNoSource(t *testing.T) {
	_, err := resolveProfiles(profileSource{})
	if err == nil {
		t.Fatal("no profile source resolved without error")
	}
	for _, want := range []string{"-registry", "-profiles", "-corpus", "-synthetic"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestResolveProfilesMissingFileNoFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.bin")
	_, err := resolveProfiles(profileSource{profilePath: path})
	if err == nil {
		t.Fatal("missing profile file resolved without error")
	}
	if !strings.Contains(err.Error(), "does not exist") || !strings.Contains(err.Error(), "langid train") {
		t.Errorf("error %q is not actionable", err)
	}
}

func TestResolveProfilesMissingFileWithSyntheticFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.bin")
	ps, err := resolveProfiles(profileSource{profilePath: path, synthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Profiles) == 0 {
		t.Fatal("fallback training produced no profiles")
	}
}

func TestResolveProfilesCorruptFileIsNotFallthrough(t *testing.T) {
	// A present-but-unreadable profile file must error even when a
	// fallback source is available: silently retraining over it would
	// mask corruption.
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.bin")
	if err := os.WriteFile(path, []byte("not a profile file"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := resolveProfiles(profileSource{profilePath: path, synthetic: true})
	if err == nil {
		t.Fatal("corrupt profile file fell through to training")
	}
}

func TestBuildServerRegistryExclusivity(t *testing.T) {
	_, _, err := buildServer(profileSource{registryDir: t.TempDir(), synthetic: true}, bloomlang.ServeConfig{})
	if err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Fatalf("registry+synthetic err = %v", err)
	}
}

func TestBuildServerEmptyRegistry(t *testing.T) {
	_, _, err := buildServer(profileSource{registryDir: filepath.Join(t.TempDir(), "reg")}, bloomlang.ServeConfig{})
	if err == nil || !strings.Contains(err.Error(), "no active version") || !strings.Contains(err.Error(), "langid train") {
		t.Fatalf("empty registry err = %v, want actionable no-active-version message", err)
	}
}

func TestBuildServerFromRegistry(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	reg, err := bloomlang.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := bloomlang.NewTrainer(bloomlang.Config{TopT: 200}, bloomlang.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("en", []byte("the quick brown fox jumps over the lazy dog and runs away")); err != nil {
		t.Fatal(err)
	}
	ps, stats, err := tr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Create(ps, stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(m.Version); err != nil {
		t.Fatal(err)
	}
	srv, version, err := buildServer(profileSource{registryDir: dir}, bloomlang.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if version != m.Version {
		t.Errorf("serving version %q, want %q", version, m.Version)
	}
	if got := srv.Stats().ProfileVersion; got != m.Version {
		t.Errorf("stats version %q, want %q", got, m.Version)
	}
}
