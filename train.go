package bloomlang

import (
	"io"

	"bloomlang/internal/train"
)

// Trainer is the streaming, sharded profile trainer: documents are
// ingested incrementally (Add, AddReader, AddNDJSON, AddDir) and
// counted across mergeable per-shard accumulators, so training never
// materializes a corpus in memory and ingest can fan out over
// goroutines. Finalize produces a ProfileSet identical to Train on
// the same documents; every Trainer must end in Finalize or (on error
// paths) Abort, or its shard workers leak.
type Trainer = train.Trainer

// TrainerOption configures a Trainer at construction.
type TrainerOption = train.Option

// TrainStats summarizes a finalized training run (documents, bytes and
// n-grams per language); the profile registry records it in each
// version's manifest.
type TrainStats = train.Stats

// TrainLangStats is one language's slice of TrainStats.
type TrainLangStats = train.LangStats

// NewTrainer builds a streaming trainer for the given configuration.
func NewTrainer(cfg Config, opts ...TrainerOption) (*Trainer, error) {
	return train.New(cfg, opts...)
}

// WithShards sets the trainer's accumulator shard count (and worker
// goroutines); n <= 0 means min(GOMAXPROCS, 4).
func WithShards(n int) TrainerOption { return train.WithShards(n) }

// TrainNDJSON trains profiles from a newline-delimited JSON stream of
// {"lang": "es", "text": "..."} documents, one line in memory at a
// time.
func TrainNDJSON(cfg Config, r io.Reader, opts ...TrainerOption) (*ProfileSet, TrainStats, error) {
	return train.NDJSON(cfg, r, opts...)
}

// TrainDir trains profiles from a corpus directory tree's training
// split (the cmd/corpusgen layout), streaming one file at a time.
func TrainDir(cfg Config, root string, opts ...TrainerOption) (*ProfileSet, TrainStats, error) {
	return train.Dir(cfg, root, opts...)
}
