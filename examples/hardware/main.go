// Hardware: drive the simulated XtremeData XD1000 end to end — program
// the Bloom filters through the command interface, stream documents
// over simulated DMA with both §5.4 host drivers, and read the match
// counters back, exactly as the paper's system operates.
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 40,
		WordsPerDoc:     1300, // ≈10 KB files, the paper's average
		TrainFraction:   0.1,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := bloomlang.NewSystem(profiles, bloomlang.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	build := sys.Build()
	fmt.Printf("EP2S180 build: %d ALUTs (%.0f%% of device), %d M4Ks, %.0f MHz\n",
		build.Logic, 100*build.LogicUtilization, build.M4Ks, build.FreqMHz)
	fmt.Printf("datapath: %d n-grams/clock, theoretical peak %.0f MB/s (%.2f GB/s)\n\n",
		sys.Device().NGramsPerClock(), sys.PeakMBPerSec(), sys.PeakMBPerSec()/1024)

	// Preprocessing step: program every language profile through the
	// register interface (§4).
	prog := sys.Program()
	fmt.Printf("programmed %d language profiles in %v (simulated)\n\n", len(profiles.Languages()), prog)

	// Stream the combined test set with the asynchronous driver.
	docs := corp.TestDocuments("")
	rep, err := sys.Stream(docs, bloomlang.ModeAsync, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asynchronous driver: %d docs, %.1f MB in %v simulated -> %.0f MB/s\n",
		rep.Docs, float64(rep.Bytes)/1e6, rep.SimTime, rep.MBPerSec())
	fmt.Printf("accuracy %.2f%%, checksum failures %d\n\n", 100*rep.Accuracy(), rep.ChecksumFailures)

	// Inspect a few per-document results, the Query Result blocks the
	// hardware DMAs back (§4).
	langs := profiles.Languages()
	fmt.Println("first three Query Result blocks:")
	for _, dr := range rep.Results[:3] {
		fmt.Printf("  doc lang=%s  ngrams=%d  checksumOK=%v  counts=", dr.Doc.Language, dr.Result.NGrams, dr.ChecksumOK)
		for i, l := range langs {
			fmt.Printf("%s:%d ", l, dr.Result.Counts[i])
		}
		fmt.Println()
	}

	// Compare against the interrupt-synchronized driver (the paper's
	// first software version, half the throughput).
	sysSync, err := bloomlang.NewSystem(profiles, bloomlang.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sysSync.Program()
	repSync, err := sysSync.Stream(docs, bloomlang.ModeSync, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynchronous driver: %.0f MB/s (%.2fx slower — \"interrupt based synchronization\n"+
		"produces detrimental performance for a streaming architecture\", §5.4)\n",
		repSync.MBPerSec(), rep.MBPerSec()/repSync.MBPerSec())

	// §5.5 projection: remove the platform's 500 MB/s cap.
	sysFast, err := bloomlang.NewSystem(profiles, bloomlang.SystemOptions{Link: bloomlang.ImprovedLink()})
	if err != nil {
		log.Fatal(err)
	}
	sysFast.Program()
	repFast, err := sysFast.Stream(docs, bloomlang.ModeAsync, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("improved link (1.6 GB/s): %.0f MB/s — approaching the %.0f MB/s datapath peak\n",
		repFast.MBPerSec(), sysFast.PeakMBPerSec())
}
