// Unicode: the paper's §3.3 extension — classification over a 16-bit
// alphabet. "The hash functions of the Bloom Filter would simply
// operate on a larger sized input n-gram, with the rest of the Bloom
// Filter remaining the same. This is in contrast to an approach that
// uses a direct memory lookup table ... which grows exponentially in
// the size of the alphabet."
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// Training snippets in scripts the 5-bit extended-ASCII pipeline
	// cannot represent (plus English for contrast).
	training := map[string][]string{
		"el": { // Greek
			"το συμβούλιο θεσπίζει τα αναγκαία μέτρα για την εφαρμογή του παρόντος κανονισμού",
			"η επιτροπή υποβάλλει έκθεση στο ευρωπαϊκό κοινοβούλιο και στο συμβούλιο",
			"τα κράτη μέλη θέτουν σε ισχύ τις αναγκαίες νομοθετικές και κανονιστικές διατάξεις",
		},
		"ru": { // Russian
			"совет принимает необходимые меры для применения настоящего регламента",
			"комиссия представляет доклад европейскому парламенту и совету",
			"государства члены вводят в действие необходимые законодательные положения",
		},
		"uk": { // Ukrainian
			"рада вживає необхідних заходів для застосування цього регламенту",
			"комісія подає доповідь європейському парламенту та раді",
			"держави члени вводять в дію необхідні законодавчі положення",
		},
		"bg": { // Bulgarian
			"съветът приема необходимите мерки за прилагането на настоящия регламент",
			"комисията представя доклад на европейския парламент и на съвета",
			"държавите членки въвеждат в сила необходимите законови разпоредби",
		},
		"en": {
			"the council shall adopt the measures necessary for the application of this regulation",
			"the commission shall submit a report to the european parliament and to the council",
			"member states shall bring into force the necessary laws and regulations",
		},
	}

	cfg := bloomlang.DefaultConfig()
	cfg.N = 3       // 3-grams of 16-bit characters = 48-bit hash inputs
	cfg.TopT = 2000 // small training set; keep profiles proportionate
	clf, err := bloomlang.TrainWide(cfg, training)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wide classifier: %d languages, %d-bit hash inputs, k=%d, m=%d Kbit\n",
		len(clf.Languages()), 16*cfg.N, cfg.K, cfg.MBits/1024)
	fmt.Printf("(a direct lookup table over 3-grams of a 16-bit alphabet would need 2^48 entries —\n")
	fmt.Printf(" the Bloom filter still uses %d Kbit per language)\n\n", cfg.K*int(cfg.MBits)/1024)

	tests := map[string]string{
		"Greek":     "το ευρωπαϊκό κοινοβούλιο θεσπίζει μέτρα για την εφαρμογή",
		"Russian":   "европейский парламент принимает меры для применения",
		"Ukrainian": "європейський парламент вживає заходів для застосування",
		"Bulgarian": "европейският парламент приема мерки за прилагането",
		"English":   "the european parliament shall adopt measures for the application",
	}
	for name, text := range tests {
		r := clf.Classify(text)
		lang := r.BestLanguage(clf.Languages())
		fmt.Printf("%-10s -> %-3s  margin %d over %d n-grams\n", name, lang, r.Margin(), r.NGrams)
	}

	fmt.Println("\nnote how the three Cyrillic languages separate: the 16-bit alphabet")
	fmt.Println("preserves letters like і/ї/є (Ukrainian) and ъ (Bulgarian) that an")
	fmt.Println("8-bit pipeline would have to fold away")
}
