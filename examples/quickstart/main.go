// Quickstart: train language profiles on a synthetic corpus and detect
// a few snippets through the paper's pipeline (alphabet conversion,
// 4-gram extraction, Parallel Bloom Filter match counting) behind the
// unified Detector API: confidence scores, winner margins, ranked
// candidates, and explicit unknown outcomes.
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// 1. A small ten-language corpus (the paper's languages).
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train top-t 4-gram profiles (§4: n=4, t=5000).
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained profiles:")
	for _, p := range profiles.Profiles {
		fmt.Printf("  %-3s %-12s %4d n-grams\n", p.Language, bloomlang.LanguageName(p.Language), p.Size())
	}

	// 3. Build the detector: Bloom-filter membership (k=4 H3 hashes into
	// four independent 16 Kbit vectors per language), with documents
	// shorter than 8 n-grams or decided by less than a 1% margin
	// answered as unknown instead of guessed.
	det, err := bloomlang.NewDetector(profiles,
		bloomlang.WithBackend(bloomlang.BackendBloom),
		bloomlang.WithMinNGrams(8),
		bloomlang.WithMinMargin(0.01))
	if err != nil {
		log.Fatal(err)
	}
	cfg := det.Config()
	fmt.Printf("\ndetector: k=%d, m=%d Kbit, expected false positives %.1f/1000\n\n",
		cfg.K, cfg.MBits/1024, 1000*cfg.ExpectedFalsePositiveRate())

	// 4. Detect snippets. (ISO-8859-1 bytes; plain ASCII works too.)
	snippets := []struct{ label, text string }{
		{"es?", "el consejo adopta las medidas necesarias para la aplicacion del presente reglamento de la comision europea sobre el mercado interior"},
		{"fi?", "komissio antaa asetuksen soveltamista koskevat tarpeelliset säännökset jäsenvaltioiden markkinat ja tuotteet huomioon ottaen"},
		{"en?", "the council shall adopt the measures necessary for the application of this regulation concerning the internal market"},
		{"sv?", "kommissionen skall anta de bestämmelser som är nödvändiga för tillämpningen av denna förordning om den inre marknaden"},
		{"??", "zq"}, // too short to call: explicit unknown, not a guess
	}
	for _, s := range snippets {
		m := det.Detect([]byte(s.text))
		if m.Unknown {
			fmt.Printf("%-4s -> unknown (%d n-grams)\n", s.label, m.NGrams)
			continue
		}
		fmt.Printf("%-4s -> %-3s (%s)  score %.2f, margin %.2f over %d n-grams\n",
			s.label, m.Lang, bloomlang.LanguageName(m.Lang), m.Score, m.Margin, m.NGrams)
	}

	// 5. Ranked candidates for one snippet: the runner-up is usually the
	// sibling language (§5.2's es/pt, da/sv confusion structure).
	fmt.Println("\ntop-3 for the Spanish snippet:")
	for _, r := range det.Rank([]byte(snippets[0].text), 3) {
		fmt.Printf("  %-3s %-12s count %3d, score %.2f\n",
			r.Lang, bloomlang.LanguageName(r.Lang), r.Count, r.Score)
	}

	// 6. Score the whole test split with the batch path.
	docs := corp.TestDocuments("")
	matches := det.DetectBatch(docs)
	correct, unknown := 0, 0
	for i, m := range matches {
		switch {
		case m.Unknown:
			unknown++
		case m.Lang == docs[i].Language:
			correct++
		}
	}
	if decided := len(docs) - unknown; decided > 0 {
		fmt.Printf("\ntest-set: %d/%d correct, %d unknown (%.2f%% accuracy on decided docs)\n",
			correct, len(docs), unknown, 100*float64(correct)/float64(decided))
	} else {
		fmt.Printf("\ntest-set: every document answered unknown at these thresholds\n")
	}
}
