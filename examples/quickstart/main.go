// Quickstart: train language profiles on a synthetic corpus and
// classify a few snippets through the paper's pipeline (alphabet
// conversion, 4-gram extraction, Parallel Bloom Filter match counting).
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// 1. A small ten-language corpus (the paper's languages).
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train top-t 4-gram profiles (§4: n=4, t=5000).
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained profiles:")
	for _, p := range profiles.Profiles {
		fmt.Printf("  %-3s %-12s %4d n-grams\n", p.Language, bloomlang.LanguageName(p.Language), p.Size())
	}

	// 3. Build the Bloom-filter classifier (k=4 H3 hashes into four
	// independent 16 Kbit vectors per language).
	clf, err := bloomlang.NewClassifier(profiles, bloomlang.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}
	cfg := clf.Config()
	fmt.Printf("\nclassifier: k=%d, m=%d Kbit, expected false positives %.1f/1000\n\n",
		cfg.K, cfg.MBits/1024, 1000*cfg.ExpectedFalsePositiveRate())

	// 4. Classify snippets. (ISO-8859-1 bytes; plain ASCII works too.)
	snippets := map[string]string{
		"es?": "el consejo adopta las medidas necesarias para la aplicacion del presente reglamento de la comision europea sobre el mercado interior",
		"fi?": "komissio antaa asetuksen soveltamista koskevat tarpeelliset säännökset jäsenvaltioiden markkinat ja tuotteet huomioon ottaen",
		"en?": "the council shall adopt the measures necessary for the application of this regulation concerning the internal market",
		"sv?": "kommissionen skall anta de bestämmelser som är nödvändiga för tillämpningen av denna förordning om den inre marknaden",
	}
	for label, text := range snippets {
		r := clf.Classify([]byte(text))
		lang := r.BestLanguage(clf.Languages())
		fmt.Printf("%-4s -> %-3s (%s)  margin %d over %d n-grams\n",
			label, lang, bloomlang.LanguageName(lang), r.Margin(), r.NGrams)
	}

	// 5. Score the whole test split with the parallel engine.
	eng := bloomlang.NewEngine(clf, 0)
	ev := eng.Evaluate(corp)
	fmt.Printf("\ntest-set accuracy: %.2f%% over %d documents (min %.2f%%, max %.2f%%)\n",
		100*ev.Average, ev.Docs, 100*ev.Min, 100*ev.Max)
	if truth, pred, n, ok := ev.TopConfusion(); ok {
		fmt.Printf("most common confusion: %s -> %s (%d docs)\n",
			bloomlang.LanguageName(truth), bloomlang.LanguageName(pred), n)
	}
}
