// Server: the language-detection microservice — the kind of service a
// search-engine indexer or spam-filter front-end (§1) would call. The
// heavy lifting lives in the library's serving subsystem (see
// bloomlang.NewServer and cmd/langidd for the production daemon); this
// example trains a small classifier, saves and reloads its profiles
// through the serialization path a daemon restart would use, mounts the
// handler on an ephemeral port, exercises every endpoint as a client,
// and exits.
//
// API (see internal/serve):
//
//	POST /detect   one document      -> {"language":"es","name":"Spanish",...}
//	POST /batch    JSON array        -> array of detections, input order
//	POST /stream   NDJSON documents  -> NDJSON detections, incremental
//	GET  /healthz  liveness          -> 200 ok
//	GET  /statsz   serving counters  -> JSON snapshot
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// Train once, then persist and reload the profiles — the round-trip
	// a daemon restart takes instead of re-training (cf. langidd -save).
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            8,
	})
	if err != nil {
		log.Fatal(err)
	}
	trained, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bloomlang-server")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	profilePath := filepath.Join(dir, "profiles.bin")
	if err := bloomlang.SaveProfiles(trained, profilePath); err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.LoadProfiles(profilePath)
	if err != nil {
		log.Fatal(err)
	}

	// A 1% margin floor: near-ties come back unknown instead of guessed.
	srv, err := bloomlang.NewServer(profiles, bloomlang.ServeConfig{MinMargin: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("language detection service on %s\n\n", ts.URL)
	client := &http.Client{Timeout: 5 * time.Second}

	// One document through /detect.
	resp, err := client.Post(ts.URL+"/detect", "text/plain", strings.NewReader(
		"el consejo y la comision adoptan todas las medidas necesarias para la aplicacion del presente reglamento"))
	if err != nil {
		log.Fatal(err)
	}
	var det bloomlang.Detection
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		log.Fatalf("/detect: %v", err)
	}
	resp.Body.Close()
	fmt.Printf("/detect  -> %s (%s), score %.2f, margin %.2f over %d n-grams\n\n",
		det.Language, det.Name, det.Score, det.Margin, det.NGrams)

	// A document set through /batch, classified by the worker pool.
	batch, _ := json.Marshal([]string{
		"kommissionen skall anta de bestammelser som ar nodvandiga for tillampningen",
		"komissio antaa asetuksen soveltamista koskevat tarpeelliset saannokset",
		"the council shall adopt the measures necessary for this regulation",
	})
	resp, err = client.Post(ts.URL+"/batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	var dets []bloomlang.Detection
	if err := json.NewDecoder(resp.Body).Decode(&dets); err != nil {
		log.Fatalf("/batch: %v", err)
	}
	resp.Body.Close()
	for i, d := range dets {
		fmt.Printf("/batch %d -> %s (%s), score %.2f\n", i, d.Language, d.Name, d.Score)
	}
	fmt.Println()

	// An NDJSON stream: one result line per document line.
	ndjson := `{"id":"a","text":"a comissao adota as medidas necessarias para a aplicacao do presente regulamento"}
{"id":"b","text":"le conseil arrete les dispositions necessaires pour la mise en oeuvre du present reglement"}
`
	resp, err = client.Post(ts.URL+"/stream", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d bloomlang.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			log.Fatalf("/stream: %v", err)
		}
		fmt.Printf("/stream %s -> %s (%s)\n", d.ID, d.Language, d.Name)
	}
	resp.Body.Close()
	fmt.Println()

	// Health and serving counters.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("health: %s\n", resp.Status)
	resp, err = client.Get(ts.URL + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	var stats bloomlang.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatalf("/statsz: %v", err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %d detect, %d batch docs, %d stream docs across %d languages (%d unknown)\n",
		stats.Endpoints["/detect"].Docs,
		stats.Endpoints["/batch"].Docs,
		stats.Endpoints["/stream"].Docs,
		len(stats.Languages),
		stats.Endpoints["/detect"].Unknown+stats.Endpoints["/batch"].Unknown+stats.Endpoints["/stream"].Unknown)
}
