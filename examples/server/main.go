// Server: a language-detection microservice — the kind of service a
// search-engine indexer or spam-filter front-end (§1) would call. The
// classifier's read-only filters serve concurrent requests without
// locking. The example starts the service on an ephemeral port, sends
// itself a few requests, prints the responses, and exits.
//
// API:
//
//	POST /detect            body = document text
//	  -> {"language":"es","name":"Spanish","ngrams":57,"margin":21,"counts":{...}}
//	GET  /healthz           -> 200 ok
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"bloomlang"
)

type detectResponse struct {
	Language string         `json:"language"`
	Name     string         `json:"name"`
	NGrams   int            `json:"ngrams"`
	Margin   int            `json:"margin"`
	Counts   map[string]int `json:"counts"`
}

func newHandler(clf *bloomlang.Classifier) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/detect", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a document body", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 10<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res := clf.Classify(body)
		lang := res.BestLanguage(clf.Languages())
		if lang == "" {
			http.Error(w, "document too short to classify", http.StatusUnprocessableEntity)
			return
		}
		counts := make(map[string]int, len(res.Counts))
		for i, l := range clf.Languages() {
			counts[l] = res.Counts[i]
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(detectResponse{
			Language: lang,
			Name:     bloomlang.LanguageName(lang),
			NGrams:   res.NGrams,
			Margin:   res.Margin(),
			Counts:   counts,
		})
	})
	return mux
}

func main() {
	log.SetFlags(0)

	// Train once at startup.
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            8,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bloomlang.NewClassifier(profiles, bloomlang.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: newHandler(clf)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("language detection service on %s\n\n", base)

	client := &http.Client{Timeout: 5 * time.Second}
	queries := []string{
		"el consejo y la comision adoptan todas las medidas necesarias para la aplicacion del presente reglamento cuando los estados miembros lo soliciten",
		"kommissionen skall anta de bestammelser som ar nodvandiga for tillampningen",
		"komissio antaa asetuksen soveltamista koskevat tarpeelliset saannokset",
		"the council shall adopt the measures necessary for this regulation",
	}
	for _, q := range queries {
		resp, err := client.Post(base+"/detect", "text/plain", bytes.NewBufferString(q))
		if err != nil {
			log.Fatal(err)
		}
		var det detectResponse
		if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%-70.70s -> %s (%s), margin %d\n", q, det.Language, det.Name, det.Margin)
	}

	// Health check, then shut down.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nhealth: %s\n", resp.Status)
	srv.Close()
}
