// Server: the language-detection microservice — the kind of service a
// search-engine indexer or spam-filter front-end (§1) would call. The
// heavy lifting lives in the library's serving subsystem (see
// bloomlang.NewServerFromRegistry and cmd/langidd for the production
// daemon); this example walks the whole profile lifecycle: stream a
// training corpus into the sharded trainer, version the profiles in a
// registry, serve the active version, exercise every endpoint as a
// client, then train a second version and hot-swap to it through the
// admin plane with zero downtime.
//
// API (see internal/serve):
//
//	POST /detect          one document      -> {"language":"es","name":"Spanish",...}
//	POST /batch           JSON array        -> array of detections, input order
//	POST /stream          NDJSON documents  -> NDJSON detections, incremental
//	GET  /healthz         liveness          -> 200 ok
//	GET  /statsz          serving counters  -> JSON snapshot (+ profile version)
//	GET  /admin/profiles  version inventory -> serving vs active version
//	POST /admin/reload    hot swap          -> {"previous":...,"active":...}
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// Generate a small corpus to disk and stream it through the
	// sharded trainer — the corpus never materializes in trainer
	// memory (cf. langid train -corpus).
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            8,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bloomlang-server")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	corpusDir := filepath.Join(dir, "corpus")
	if err := corp.WriteDir(corpusDir); err != nil {
		log.Fatal(err)
	}
	profiles, stats, err := bloomlang.TrainDir(bloomlang.DefaultConfig(), corpusDir)
	if err != nil {
		log.Fatal(err)
	}

	// Version the profiles in a registry and activate — the lifecycle
	// a production rollout follows (cf. langid train -registry -activate).
	reg, err := bloomlang.OpenRegistry(filepath.Join(dir, "registry"))
	if err != nil {
		log.Fatal(err)
	}
	v1, err := reg.Create(profiles, stats)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Activate(v1.Version); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: created and activated %s (%d docs, %.1f MB trained)\n\n",
		v1.Version, stats.Docs, float64(stats.Bytes)/1e6)

	// A 1% margin floor: near-ties come back unknown instead of guessed.
	srv, err := bloomlang.NewServerFromRegistry(reg, bloomlang.ServeConfig{MinMargin: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("language detection service on %s\n\n", ts.URL)
	client := &http.Client{Timeout: 5 * time.Second}

	// One document through /detect.
	resp, err := client.Post(ts.URL+"/detect", "text/plain", strings.NewReader(
		"el consejo y la comision adoptan todas las medidas necesarias para la aplicacion del presente reglamento"))
	if err != nil {
		log.Fatal(err)
	}
	var det bloomlang.Detection
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		log.Fatalf("/detect: %v", err)
	}
	resp.Body.Close()
	fmt.Printf("/detect  -> %s (%s), score %.2f, margin %.2f over %d n-grams\n\n",
		det.Language, det.Name, det.Score, det.Margin, det.NGrams)

	// A document set through /batch, classified by the worker pool.
	batch, _ := json.Marshal([]string{
		"kommissionen skall anta de bestammelser som ar nodvandiga for tillampningen",
		"komissio antaa asetuksen soveltamista koskevat tarpeelliset saannokset",
		"the council shall adopt the measures necessary for this regulation",
	})
	resp, err = client.Post(ts.URL+"/batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	var dets []bloomlang.Detection
	if err := json.NewDecoder(resp.Body).Decode(&dets); err != nil {
		log.Fatalf("/batch: %v", err)
	}
	resp.Body.Close()
	for i, d := range dets {
		fmt.Printf("/batch %d -> %s (%s), score %.2f\n", i, d.Language, d.Name, d.Score)
	}
	fmt.Println()

	// An NDJSON stream: one result line per document line.
	ndjson := `{"id":"a","text":"a comissao adota as medidas necessarias para a aplicacao do presente regulamento"}
{"id":"b","text":"le conseil arrete les dispositions necessaires pour la mise en oeuvre du present reglement"}
`
	resp, err = client.Post(ts.URL+"/stream", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d bloomlang.Detection
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			log.Fatalf("/stream: %v", err)
		}
		fmt.Printf("/stream %s -> %s (%s)\n", d.ID, d.Language, d.Name)
	}
	resp.Body.Close()
	fmt.Println()

	// Health and serving counters; /statsz names the profile version.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("health: %s\n", resp.Status)
	stats1 := getStats(client, ts.URL)
	fmt.Printf("stats: serving %s; %d detect, %d batch docs, %d stream docs across %d languages (%d unknown)\n\n",
		stats1.ProfileVersion,
		stats1.Endpoints["/detect"].Docs,
		stats1.Endpoints["/batch"].Docs,
		stats1.Endpoints["/stream"].Docs,
		len(stats1.Languages),
		stats1.Endpoints["/detect"].Unknown+stats1.Endpoints["/batch"].Unknown+stats1.Endpoints["/stream"].Unknown)

	// The admin plane: retrain with a tighter profile, version it,
	// activate, and hot-swap the running server — zero downtime, no
	// restart (cf. langidd SIGHUP / POST /admin/reload).
	cfg2 := bloomlang.DefaultConfig()
	cfg2.TopT = 3000
	profiles2, stats2, err := bloomlang.TrainDir(cfg2, corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := reg.Create(profiles2, stats2)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Activate(v2.Version); err != nil {
		log.Fatal(err)
	}
	var inventory bloomlang.ProfilesStatus
	getJSON(client, ts.URL+"/admin/profiles", &inventory)
	fmt.Printf("/admin/profiles -> serving %s, active %s, %d versions\n",
		inventory.Serving, inventory.Active, len(inventory.Versions))

	resp, err = client.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var reload bloomlang.ReloadStatus
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil {
		log.Fatalf("/admin/reload: %v", err)
	}
	resp.Body.Close()
	fmt.Printf("/admin/reload   -> %s live (was %s, changed=%v)\n",
		reload.Active, reload.Previous, reload.Changed)
	if got := getStats(client, ts.URL).ProfileVersion; got != v2.Version {
		log.Fatalf("statsz reports %s after reload, want %s", got, v2.Version)
	}
	fmt.Printf("/statsz         -> profile_version %s\n", v2.Version)
}

func getStats(client *http.Client, base string) bloomlang.ServeStats {
	var stats bloomlang.ServeStats
	getJSON(client, base+"/statsz", &stats)
	return stats
}

func getJSON(client *http.Client, url string, v any) {
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
