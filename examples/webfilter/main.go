// Webfilter: the paper's motivating workload (§1) — triaging a large
// mixed-language document stream, as a search-engine indexer or spam
// filter front-end would, routing each document to a language-specific
// pipeline. Demonstrates the parallel software engine and its scaling
// with worker count.
package main

import (
	"fmt"
	"log"
	"runtime"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 300,
		WordsPerDoc:     400,
		TrainFraction:   0.1,
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bloomlang.NewClassifier(profiles, bloomlang.BackendBloom)
	if err != nil {
		log.Fatal(err)
	}

	// The incoming "web crawl": all languages interleaved.
	stream := corp.TestDocuments("")
	var total int64
	for _, d := range stream {
		total += int64(len(d.Text))
	}
	fmt.Printf("incoming stream: %d documents, %.1f MB, %d languages mixed\n\n",
		len(stream), float64(total)/1e6, len(corp.Languages))

	// Route documents into per-language buckets.
	eng := bloomlang.NewEngine(clf, 0)
	results := eng.ClassifyAll(stream)
	buckets := map[string]int{}
	misrouted := 0
	for i, r := range results {
		lang := r.BestLanguage(clf.Languages())
		buckets[lang]++
		if lang != stream[i].Language {
			misrouted++
		}
	}
	fmt.Println("routing buckets:")
	for _, lang := range clf.Languages() {
		fmt.Printf("  %-3s %-12s %5d docs\n", lang, bloomlang.LanguageName(lang), buckets[lang])
	}
	fmt.Printf("misrouted: %d of %d (%.2f%%)\n\n", misrouted, len(stream),
		100*float64(misrouted)/float64(len(stream)))

	// Worker scaling: the software counterpart of the hardware's
	// document-level parallelism.
	fmt.Println("software engine scaling (same stream):")
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		rep := bloomlang.NewEngine(clf, w).Measure(stream)
		fmt.Printf("  %2d workers: %7.1f MB/s\n", w, rep.MBPerSec())
	}
	fmt.Printf("\n(the paper's FPGA runs this at 470 MB/s on a single XD1000 socket;\n" +
		"run examples/hardware for the simulated system)\n")
}
