// Segment: mixed-language span detection over the fused blocked
// kernel. Trains profiles on a synthetic corpus, builds a
// mixed-language document with known boundaries, and recovers the
// per-language spans three ways: one-shot DetectSpans, the streaming
// SpanStream, and against the generator's ground truth.
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	// 1. Train profiles (the paper's ten languages).
	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 80,
		WordsPerDoc:     300,
		TrainFraction:   0.2,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := bloomlang.Train(bloomlang.DefaultConfig(), corp)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The blocked backend segments fastest: its fused kernel scores
	// every language per n-gram in one pass, and segmentation hashes
	// each n-gram exactly once no matter how many windows overlap it.
	det, err := bloomlang.NewDetector(profiles, bloomlang.WithBackend(bloomlang.BackendBlocked))
	if err != nil {
		log.Fatal(err)
	}

	// 3. A deterministic mixed document with known byte boundaries —
	// the same generator cmd/corpusgen -mixed and the golden
	// segmentation gate use.
	docs, err := bloomlang.GenerateMixedCorpus(bloomlang.MixedCorpusConfig{
		Languages:       []string{"en", "fi", "fr", "cs"},
		Docs:            1,
		SegmentsPerDoc:  4,
		WordsPerSegment: 70,
		Seed:            9,
	})
	if err != nil {
		log.Fatal(err)
	}
	doc := docs[0]
	fmt.Printf("ground truth (%d bytes):\n", len(doc.Text))
	for _, seg := range doc.Segments {
		fmt.Printf("  %6d-%-6d %s\n", seg.Start, seg.End, bloomlang.LanguageName(seg.Lang))
	}

	// 4. One-shot segmentation: a 96-gram window hopping a quarter
	// window, two-window hysteresis against noise.
	segCfg := bloomlang.SegmentConfig{Window: 96, Stride: 24, Hysteresis: 2}
	spans, err := det.DetectSpans(doc.Text, segCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndetected spans:")
	for _, sp := range spans {
		fmt.Printf("  %6d-%-6d %-12s score %.2f, margin %.2f\n",
			sp.Start, sp.End, bloomlang.LanguageName(sp.Lang), sp.Score, sp.Margin)
	}

	// 5. The same answer incrementally: feed the document in small
	// chunks and watch boundaries finalize as evidence accumulates.
	st, err := det.NewSpanStream(segCfg)
	if err != nil {
		log.Fatal(err)
	}
	finalized := 0
	for off := 0; off < len(doc.Text); off += 200 {
		end := off + 200
		if end > len(doc.Text) {
			end = len(doc.Text)
		}
		st.Write(doc.Text[off:end])
		for _, sp := range st.Spans()[finalized:] {
			fmt.Printf("stream: after %d bytes, span [%d,%d) %s is final\n",
				end, sp.Start, sp.End, sp.Lang)
			finalized++
		}
	}
	all := st.Finish()
	fmt.Printf("stream: finished with %d spans (identical to one-shot: %v)\n",
		len(all), equalSpans(all, spans))
}

func equalSpans(a, b []bloomlang.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
