// Tradeoff: reproduce §5.2's design-space exploration — sweep the Bloom
// filter parameters (k hash functions, m-bit vectors) and print, for
// each point, the expected false positive rate, measured accuracy,
// embedded RAM budget per language, and how many languages the EP2S180
// then supports at full throughput. This is the accuracy/parallelism
// tradeoff that motivates the paper's final 30-language configuration.
package main

import (
	"fmt"
	"log"

	"bloomlang"
)

func main() {
	log.SetFlags(0)

	corp, err := bloomlang.GenerateCorpus(bloomlang.CorpusConfig{
		DocsPerLanguage: 120,
		WordsPerDoc:     300,
		TrainFraction:   0.15,
		Seed:            5,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := bloomlang.DefaultConfig()
	profiles, err := bloomlang.Train(base, corp)
	if err != nil {
		log.Fatal(err)
	}
	dev := bloomlang.EP2S180()

	fmt.Println("m (Kbit)  k  exp FP/1000  accuracy   Kbit/lang  languages@8ngrams/clk")
	fmt.Println("-----------------------------------------------------------------------")
	for _, point := range []struct {
		mKbit int
		k     int
	}{
		{16, 4}, {16, 3}, {16, 2},
		{8, 4}, {8, 3}, {8, 2},
		{4, 6}, {4, 5}, {4, 4},
	} {
		cfg := base
		cfg.K = point.k
		cfg.MBits = uint32(point.mKbit) * 1024
		ps := &bloomlang.ProfileSet{Config: cfg, Profiles: profiles.Profiles}
		clf, err := bloomlang.NewClassifier(ps, bloomlang.BackendBloom)
		if err != nil {
			log.Fatal(err)
		}
		ev := bloomlang.NewEngine(clf, 0).Evaluate(corp)
		maxLangs := bloomlang.MaxLanguages(point.k, cfg.MBits, dev)
		fmt.Printf("%8d  %d  %11.1f  %7.2f%%  %9d  %d\n",
			point.mKbit, point.k,
			1000*cfg.ExpectedFalsePositiveRate(),
			100*ev.Average,
			point.k*point.mKbit,
			maxLangs,
		)
	}

	fmt.Println()
	fmt.Println("the paper picks k=6, m=4 Kbit: 24 Kbit per language, >99% accuracy,")
	fmt.Println("thirty languages on the EP2S180 (§5.2, Table 3)")
}
