package bloomlang

import (
	"sync"
	"testing"
)

// Shared fixtures, built once per test binary.
var (
	fixtureOnce sync.Once
	fixCorpus   *Corpus
	fixProfiles *ProfileSet
)

func fixtures(t testing.TB) (*Corpus, *ProfileSet) {
	t.Helper()
	fixtureOnce.Do(func() {
		corp, err := GenerateCorpus(CorpusConfig{
			DocsPerLanguage: 60,
			WordsPerDoc:     300,
			TrainFraction:   0.2,
			Seed:            17,
		})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := Train(DefaultConfig(), corp)
		if err != nil {
			t.Fatal(err)
		}
		fixCorpus, fixProfiles = corp, ps
	})
	return fixCorpus, fixProfiles
}

func TestPublicAPIEndToEnd(t *testing.T) {
	corp, ps := fixtures(t)
	if len(ps.Languages()) != 10 {
		t.Fatalf("trained %d languages, want 10", len(ps.Languages()))
	}
	for _, backend := range []Backend{BackendBloom, BackendDirect, BackendClassic} {
		clf, err := NewClassifier(ps, backend)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		ev := NewEngine(clf, 0).Evaluate(corp)
		if ev.Average < 0.9 {
			t.Errorf("%v: accuracy %.3f below 0.9", backend, ev.Average)
		}
	}
}

// TestDetectorFacade exercises the re-exported Detector surface: the
// functional options, backend parsing, and agreement with the legacy
// classifier path on confidently-decided documents.
func TestDetectorFacade(t *testing.T) {
	corp, ps := fixtures(t)
	be, err := ParseBackend("bloom")
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(ps,
		WithBackend(be),
		WithWorkers(4),
		WithMinMargin(0.001),
		WithMinNGrams(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Backend().String(); got != "parallel-bloom" {
		t.Errorf("backend = %q", got)
	}
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	docs := corp.TestDocuments("")[:40]
	matches := det.DetectBatch(docs)
	decided := 0
	for i, d := range docs {
		legacy := clf.Classify(d.Text)
		if legacy.Margin() == 0 {
			continue
		}
		if matches[i].Unknown {
			continue
		}
		decided++
		if want := legacy.BestLanguage(clf.Languages()); matches[i].Lang != want {
			t.Errorf("doc %d: detector %q, legacy %q", i, matches[i].Lang, want)
		}
	}
	if decided == 0 {
		t.Error("no confidently decided documents in the sample")
	}
}

func TestSpaceEfficientConfig(t *testing.T) {
	cfg := SpaceEfficientConfig()
	if cfg.K != 6 || cfg.MBits != 4*1024 {
		t.Errorf("SpaceEfficientConfig = %+v, want k=6 m=4Kbit", cfg)
	}
	// 24 Kbit per language (§5.2).
	if cfg.K*int(cfg.MBits) != 24*1024 {
		t.Error("space-efficient config is not 24 Kbit per language")
	}
	// Thirty languages on the EP2S180.
	if got := MaxLanguages(cfg.K, cfg.MBits, EP2S180()); got != 30 {
		t.Errorf("MaxLanguages = %d, want 30", got)
	}
}

func TestFalsePositiveRateExported(t *testing.T) {
	// The paper's headline configuration: five per thousand.
	f := FalsePositiveRate(5000, 16*1024, 4)
	if f < 0.004 || f > 0.006 {
		t.Errorf("FalsePositiveRate = %v, want about 0.005", f)
	}
}

func TestSystemSimulationMatchesSoftware(t *testing.T) {
	corp, ps := fixtures(t)
	sys, err := NewSystem(ps, SystemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Program()
	docs := corp.TestDocuments("")[:10]
	rep, err := sys.Stream(docs, ModeAsync, true)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(ps, BackendBloom)
	if err != nil {
		t.Fatal(err)
	}
	for i, dr := range rep.Results {
		sw := clf.Classify(docs[i].Text)
		for l := range sw.Counts {
			if dr.Result.Counts[l] != sw.Counts[l] {
				t.Fatalf("doc %d: hardware and software counts differ", i)
			}
		}
	}
}

func TestHAILPublicAPI(t *testing.T) {
	corp, ps := fixtures(t)
	h, err := NewHAIL(DefaultHAILConfig(), ps)
	if err != nil {
		t.Fatal(err)
	}
	rep := h.Stream(corp.TestDocuments("")[:50])
	if rep.Accuracy() < 0.85 {
		t.Errorf("HAIL accuracy %.3f below 0.85", rep.Accuracy())
	}
	mbps := float64(rep.Bytes) / rep.SimTime.Seconds() / 1e6
	if mbps < 280 || mbps > 330 {
		t.Errorf("HAIL modelled throughput %.0f MB/s, want near 324", mbps)
	}
}

func TestCavnarTrenklePublicAPI(t *testing.T) {
	corp, _ := fixtures(t)
	ct, err := NewCavnarTrenkle(CavnarTrenkleConfig{}, corp)
	if err != nil {
		t.Fatal(err)
	}
	rep := ct.Measure(corp.TestDocuments("")[:30])
	if rep.Accuracy() < 0.85 {
		t.Errorf("Cavnar-Trenkle accuracy %.3f below 0.85", rep.Accuracy())
	}
}

func TestRunTable2MatchesPaperExactly(t *testing.T) {
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.Report.Calibrated {
			t.Errorf("m=%d k=%d not calibrated", r.MKbits, r.K)
		}
	}
	// Spot-check the first row against the paper.
	if rows[0].Report.Logic != 5480 || rows[0].Report.M4Ks != 128 {
		t.Errorf("row 0 = %+v, want logic 5480, M4K 128", rows[0].Report)
	}
	if FormatTable2(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestRunTable3MatchesPaperExactly(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table 3 has %d rows, want 2", len(rows))
	}
	if rows[0].Report.M4Ks != 680 || rows[1].Report.M4Ks != 768 {
		t.Errorf("M4K columns = %d, %d; want 680, 768", rows[0].Report.M4Ks, rows[1].Report.M4Ks)
	}
	if !rows[0].Report.Fits || !rows[1].Report.Fits {
		t.Error("published builds must fit the device")
	}
	if FormatTable3(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 sweep is slow")
	}
	scale := Scale{DocsPerLanguage: 50, WordsPerDoc: 250, TrainFraction: 0.2, Seed: 1}
	rows, err := RunTable1(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.85 {
			t.Errorf("m=%d k=%d: accuracy %.3f below 0.85", r.MKbits, r.K, r.Accuracy)
		}
		// The measured false positive rate must track the model within
		// a factor of two (sampling noise on 200k probes).
		if r.ModelFPPerMille > 2 {
			lo, hi := float64(r.ModelFPPerMille)/2, float64(r.ModelFPPerMille)*2
			if r.MeasuredFPPerMille < lo || r.MeasuredFPPerMille > hi {
				t.Errorf("m=%d k=%d: measured fp %.1f/1000 vs model %d/1000",
					r.MKbits, r.K, r.MeasuredFPPerMille, r.ModelFPPerMille)
			}
		}
	}
	// The weakest configuration (m=8, k=2) must not beat the strongest
	// (m=16, k=4): the Table 1 degradation direction.
	var strong, weak Table1Row
	for _, r := range rows {
		if r.MKbits == 16 && r.K == 4 {
			strong = r
		}
		if r.MKbits == 8 && r.K == 2 {
			weak = r
		}
	}
	if weak.Accuracy > strong.Accuracy {
		t.Errorf("m=8,k=2 accuracy %.4f exceeds m=16,k=4 accuracy %.4f", weak.Accuracy, strong.Accuracy)
	}
	if FormatTable1(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestRunFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 4 streaming is slow")
	}
	scale := Scale{DocsPerLanguage: 25, WordsPerDoc: 1300, TrainFraction: 0.15, Seed: 1}
	fig, err := RunFigure4(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 11 { // All + 10 languages
		t.Fatalf("%d points, want 11", len(fig.Points))
	}
	for _, p := range fig.Points {
		if p.AsyncMBps < 430 || p.AsyncMBps > 510 {
			t.Errorf("%s: async %.0f MB/s outside [430,510] (paper: 470)", p.Label, p.AsyncMBps)
		}
		if p.SyncMBps < 190 || p.SyncMBps > 270 {
			t.Errorf("%s: sync %.0f MB/s outside [190,270] (paper: 228)", p.Label, p.SyncMBps)
		}
		if p.AsyncMBps <= p.SyncMBps {
			t.Errorf("%s: async not faster than sync", p.Label)
		}
	}
	if fig.PaperVolumeWithProgrammingMBps < 350 || fig.PaperVolumeWithProgrammingMBps > 400 {
		t.Errorf("programming-amortized projection %.0f MB/s outside [350,400] (paper: 378)",
			fig.PaperVolumeWithProgrammingMBps)
	}
	if FormatFigure4(fig) == "" {
		t.Error("empty rendering")
	}
}

func TestRunTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 comparison is slow")
	}
	scale := Scale{DocsPerLanguage: 20, WordsPerDoc: 1300, TrainFraction: 0.15, Seed: 1}
	t4, err := RunTable4(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Who wins, and by roughly what factor (§5.5 / Table 4).
	if !(t4.BloomMBps > t4.HAILMBps && t4.HAILMBps > t4.MguesserMBps) {
		t.Errorf("ordering wrong: bloom %.0f, hail %.0f, software %.1f",
			t4.BloomMBps, t4.HAILMBps, t4.MguesserMBps)
	}
	if t4.SpeedupVsHAIL < 1.3 || t4.SpeedupVsHAIL > 1.7 {
		t.Errorf("speedup vs HAIL %.2f outside [1.3,1.7] (paper: 1.45)", t4.SpeedupVsHAIL)
	}
	if t4.SpeedupVsSoftware < 20 {
		t.Errorf("speedup vs software %.0f below 20x (paper: 85x)", t4.SpeedupVsSoftware)
	}
	if t4.PeakSpeedupVsHAIL < 4 || t4.PeakSpeedupVsHAIL > 6 {
		t.Errorf("peak speedup vs HAIL %.1f outside [4,6] (paper: 4.4)", t4.PeakSpeedupVsHAIL)
	}
	if FormatTable4(t4) == "" {
		t.Error("empty rendering")
	}
}

func TestRunConfusionSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("confusion evaluation is slow")
	}
	scale := Scale{DocsPerLanguage: 60, WordsPerDoc: 300, TrainFraction: 0.2, Seed: 2}
	conf, err := RunConfusion(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(conf.TopPairs) == 0 {
		t.Skip("no confusions at this scale")
	}
	// The top confusion must be a sibling pair, the paper's §5.2
	// observation (es->pt, et->fi, and the cs/sk, da/sv analogues).
	siblings := map[string]string{
		"es": "pt", "pt": "es",
		"cs": "sk", "sk": "cs",
		"da": "sv", "sv": "da",
		"fi": "et", "et": "fi",
	}
	top := conf.TopPairs[0]
	if siblings[top.Truth] != top.Predicted {
		t.Errorf("top confusion %s->%s is not a sibling pair", top.Truth, top.Predicted)
	}
	if FormatConfusion(conf) == "" {
		t.Error("empty rendering")
	}
}

func TestLanguageHelpers(t *testing.T) {
	if len(Languages()) != 10 {
		t.Errorf("Languages() = %v", Languages())
	}
	if LanguageName("cs") != "Czech" {
		t.Errorf("LanguageName(cs) = %q", LanguageName("cs"))
	}
}

func TestReadCorpusDirRoundTrip(t *testing.T) {
	corp, _ := fixtures(t)
	dir := t.TempDir()
	if err := corp.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Languages) != len(corp.Languages) {
		t.Errorf("reloaded %d languages, want %d", len(back.Languages), len(corp.Languages))
	}
}
