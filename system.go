package bloomlang

import (
	"bloomlang/internal/ht"
	"bloomlang/internal/xd1000"
)

// System is the simulated XD1000 machine: Opteron host, HyperTransport
// link and FPGA classifier (§4, Figure 2b).
type System = xd1000.System

// SystemOptions configures a simulated system.
type SystemOptions = xd1000.Options

// RunReport summarizes a streaming classification run (Figure 4 units).
type RunReport = xd1000.RunReport

// QueryResult is the per-document result block the hardware returns.
type QueryResult = xd1000.QueryResult

// DriverMode selects the §5.4 host driver.
type DriverMode = xd1000.Mode

// Host driver modes: the interrupt-synchronized first version and the
// streaming asynchronous second version of §5.4.
const (
	ModeSync  = xd1000.ModeSync
	ModeAsync = xd1000.ModeAsync
)

// LinkConfig parameterizes the HyperTransport fabric model.
type LinkConfig = ht.LinkConfig

// XD1000Link returns the paper's measured platform: 1.6 GB/s peak,
// 500 MB/s practical (§5.4).
func XD1000Link() LinkConfig { return ht.XD1000Config() }

// ImprovedLink returns the §5.5 projection with the practical bandwidth
// cap removed.
func ImprovedLink() LinkConfig { return ht.ImprovedConfig() }

// NewSystem builds a simulated XD1000 for a trained profile set. Call
// (*System).Program before streaming documents.
func NewSystem(ps *ProfileSet, opts SystemOptions) (*System, error) {
	return xd1000.New(ps, opts)
}

// SystemTrace records a timeline of simulated events (PIO writes, DMA
// transfers, folds, interrupts, watchdog recoveries); attach one via
// SystemOptions.Trace.
type SystemTrace = xd1000.Trace

// NewSystemTrace returns a trace retaining at most max events (0 =
// unbounded).
func NewSystemTrace(max int) *SystemTrace { return xd1000.NewTrace(max) }

// FaultConfig injects deterministic transfer faults into a simulated
// system (SystemOptions.Faults).
type FaultConfig = xd1000.FaultConfig
